//! Cross-crate integration test: the analytic (ASPEN-walk) predictions and
//! the executable path agree on the paper's qualitative conclusions —
//! stage-1 dominance, stage ordering and growth trends.

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use split_exec::prelude::*;

#[test]
fn predicted_and_measured_agree_on_stage_ordering() {
    let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(3));
    let maxcut = MaxCut::unweighted(generators::cycle(12));
    let qubo = maxcut.to_qubo();

    let predicted = pipeline.predict(qubo.num_variables()).unwrap();
    let measured = pipeline.execute(&qubo).unwrap();

    // Both paths rank the stages identically: stage 1 >> stage 2 > stage 3.
    assert!(predicted.stage1.total_seconds > predicted.stage2.total_seconds);
    assert!(predicted.stage2.total_seconds > predicted.stage3.total_seconds);
    assert!(measured.stage1.total_seconds > measured.stage2.total_seconds);
    assert!(measured.stage1.total_seconds > measured.stage3.measured_seconds);
}

#[test]
fn predicted_stage1_share_grows_with_problem_size() {
    let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::default());
    let shares: Vec<f64> = [10, 20, 40, 80]
        .iter()
        .map(|&n| pipeline.predict(n).unwrap().stage1_fraction())
        .collect();
    assert!(shares.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    assert!(shares[0] > 0.99);
}

#[test]
fn predicted_embedding_cost_grows_steeply_with_size() {
    // The model charges the worst-case CMR complexity; its step-to-step
    // growth factor between K6, K10 and K14 exceeds 2 everywhere, which is
    // the steep solid line of Fig. 9(a).
    let machine = SplitMachine::paper_default();
    let mut previous_model: Option<f64> = None;
    for n in [6usize, 10, 14] {
        let prediction = predict_stage1(&machine, n).unwrap();
        if let Some(pm) = previous_model {
            assert!(
                prediction.embed_seconds / pm > 2.0,
                "model growth too shallow at n={n}"
            );
        }
        previous_model = Some(prediction.embed_seconds);
    }
    // The executable path stays feasible (and much cheaper than the model's
    // worst case) for a dense input the heuristic handles reliably.
    let config = SplitExecConfig::with_seed(5);
    let qubo = MaxCut::unweighted(generators::complete(6)).to_qubo();
    let execution = execute_stage1(&machine, &config, &qubo).unwrap();
    assert!(execution.embedding_seconds < 30.0);
}

#[test]
fn stage2_prediction_matches_timing_model_arithmetic() {
    use quantum_anneal::{required_reads, QpuTimings};
    let machine = SplitMachine::paper_default();
    let timings = QpuTimings::dw2x();
    for (pa, ps) in [(0.9, 0.7), (0.99, 0.7), (0.999, 0.6), (0.99, 0.95)] {
        let predicted = predict_stage2(&machine, pa, ps).unwrap();
        let reads = required_reads(pa, ps);
        let expected = timings.anneal_seconds(reads) + timings.readout_seconds();
        assert!(
            (predicted.total_seconds - expected).abs() < 1e-9,
            "pa={pa} ps={ps}: {} vs {expected}",
            predicted.total_seconds
        );
    }
}

#[test]
fn stage3_prediction_is_negligible_at_every_size() {
    let machine = SplitMachine::paper_default();
    for lps in [1usize, 10, 50, 100] {
        let s3 = predict_stage3(&machine, lps, 0.99, 0.75).unwrap();
        assert!(s3.total_seconds < 1e-3, "lps {lps}: {}", s3.total_seconds);
    }
}

#[test]
fn executed_stage1_work_counters_track_problem_size() {
    let machine = SplitMachine::paper_default();
    let config = SplitExecConfig::with_seed(8);
    let small = execute_stage1(
        &machine,
        &config,
        &MaxCut::unweighted(generators::complete(4)).to_qubo(),
    )
    .unwrap();
    let large = execute_stage1(
        &machine,
        &config,
        &MaxCut::unweighted(generators::complete(6)).to_qubo(),
    )
    .unwrap();
    assert!(large.conversion_operations > small.conversion_operations);
    assert!(large.embedding_stats.dijkstra_calls > small.embedding_stats.dijkstra_calls);
    assert!(large.parameter_operations > small.parameter_operations);
}
