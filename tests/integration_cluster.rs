//! Workspace-level integration tests for the `sx_cluster` datacenter
//! simulator: the acceptance criteria of the subsystem, exercised through
//! the public APIs of `sx_cluster`, `split_exec` and `quantum_anneal`
//! together.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet(qpus: usize, seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

fn run(policy: PolicyKind, workload: &Workload, qpus: usize, seed: u64) -> SimReport {
    let mut scheduler = policy.build();
    simulate(
        fleet(qpus, seed),
        workload,
        scheduler.as_mut(),
        SimConfig::default(),
    )
}

/// The headline acceptance demo: on a seeded repeated-topology mix,
/// embedding-cache-affinity scheduling beats FIFO on mean latency, because
/// it pays roughly one cold embedding per topology instead of one per
/// (topology, device) pair.
#[test]
fn affinity_beats_fifo_on_the_seeded_repeated_mix() {
    let workload = WorkloadSpec::repeated_topologies(60, 1.0, 7).generate();
    let fifo = run(PolicyKind::Fifo, &workload, 4, 7);
    let affinity = run(PolicyKind::CacheAffinity, &workload, 4, 7);

    assert_eq!(fifo.completed, 60);
    assert_eq!(affinity.completed, 60);
    assert!(
        affinity.latency.mean < fifo.latency.mean,
        "affinity mean {:.3}s !< fifo mean {:.3}s",
        affinity.latency.mean,
        fifo.latency.mean
    );
    assert!(affinity.cold_misses() < fifo.cold_misses());
    // Affinity never needs more cold embeds than there are topologies —
    // FIFO re-embeds the same topology on several devices.
    assert!(affinity.cold_misses() <= workload.distinct_topologies() + 1);
}

/// The paper's single-machine headline — stage 1 dominates — survives the
/// move to fleet scale under every policy.
#[test]
fn fleet_scale_breakdown_reproduces_stage1_dominance() {
    let workload = WorkloadSpec::mixed(40, 0.8, 3).generate();
    for policy in PolicyKind::all() {
        let report = run(policy, &workload, 3, 3);
        assert!(report.completed > 0);
        assert!(
            report.stage1_fraction() > 0.9,
            "{}: stage-1 fraction {:.3}",
            report.policy,
            report.stage1_fraction()
        );
        assert!(report.stage1_seconds > 100.0 * report.stage2_seconds);
        assert!(report.stage1_seconds > 100.0 * report.stage3_seconds);
    }
}

/// Same seed + workload ⇒ bit-identical trace and metrics, across the
/// workspace boundary (fleet fault maps, analytic cost oracle and workload
/// generation all resolve from the seed).
#[test]
fn simulation_is_deterministic_end_to_end() {
    let spec = WorkloadSpec::bursty(50, 1.2, 5, 19);
    for policy in PolicyKind::all() {
        let a = run(policy, &spec.generate(), 4, 19);
        let b = run(policy, &spec.generate(), 4, 19);
        assert_eq!(a, b, "policy {policy} is not deterministic");
    }
}

/// The simulator's report exports to the same `BatchSummary` shape the
/// batch pipeline produces, so downstream consumers need one format.
#[test]
fn cluster_and_batch_reports_share_one_summary_format() {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{BatchSummary, Pipeline, SplitMachine};

    // A real batch run through the pipeline...
    let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(5));
    let jobs = vec![
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
    ];
    let batch: BatchSummary = pipeline.execute_batch_report(&jobs).summary();

    // ...and a simulated cluster run produce the same struct.
    let workload = WorkloadSpec::repeated_topologies(10, 1.0, 5).generate();
    let cluster: BatchSummary = run(PolicyKind::CacheAffinity, &workload, 2, 5).batch_summary();

    for summary in [batch, cluster] {
        assert_eq!(summary.succeeded + summary.failed, summary.jobs);
        assert!(summary.stage1_fraction > 0.5);
        // The shared Display renders both.
        assert!(format!("{summary}").contains("jobs:"));
    }
}

/// Jobs too large for every device in the fleet are rejected, not lost.
#[test]
fn oversized_jobs_are_rejected_cleanly() {
    let workload = Workload {
        jobs: vec![
            Job {
                id: 0,
                family: "too-big".into(),
                lps: 500,
                topology_key: 1,
                arrival: 0.0,
            },
            Job {
                id: 1,
                family: "fits".into(),
                lps: 20,
                topology_key: 2,
                arrival: 1.0,
            },
        ],
    };
    let report = run(PolicyKind::Fifo, &workload, 2, 1);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.records[0].job, 1);
}

/// The cache-cliff acceptance claim, exercised through the public API: as
/// per-device capacity falls below the workload's topology diversity, the
/// hit rate drops monotonically — and cost-aware eviction matches or beats
/// LRU on mean latency at the cliff.
#[test]
fn bounded_caches_exhibit_the_hit_rate_cliff() {
    let spec = WorkloadSpec {
        jobs: 90,
        seed: 11,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![(
            1.0,
            FamilySpec::MaxCutCycle {
                sizes: vec![8, 17, 26, 36],
            },
        )],
    };
    let workload = spec.try_generate().expect("valid spec");
    let diversity = workload.distinct_topologies();
    assert_eq!(diversity, 4);

    let mut series = CacheCliffSeries {
        distinct_topologies: diversity,
        ..CacheCliffSeries::default()
    };
    for eviction in EvictionPolicyKind::all() {
        for capacity in [1usize, 2, 4] {
            let fleet = Fleet::new(
                FleetConfig {
                    qpus: 3,
                    seed: 11,
                    ..FleetConfig::default()
                }
                .with_cache(capacity, eviction),
                SplitExecConfig::with_seed(11),
            );
            let mut scheduler = PolicyKind::Fifo.build();
            let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
            series
                .points
                .push(CachePoint::from_report(capacity, eviction.name(), &report));
        }
    }

    for eviction in EvictionPolicyKind::all() {
        let name = eviction.name();
        assert!(
            series.hit_rate_monotone(name, 0.02),
            "{name} hit rate not monotone in capacity: {series}"
        );
        let points = series.policy_points(name);
        assert!(
            points.last().unwrap().hit_rate > points.first().unwrap().hit_rate + 0.1,
            "{name} shows no cliff: {series}"
        );
        // Below diversity, the bound binds: evictions happen.
        assert!(points.first().unwrap().evictions > 0);
        // At full diversity nothing needs evicting.
        assert_eq!(points.last().unwrap().evictions, 0);
    }

    let mean_at = |name: &str, cap: usize| {
        series
            .policy_points(name)
            .iter()
            .find(|p| p.capacity == cap)
            .unwrap()
            .mean_latency_seconds
    };
    // Cost-aware must not lose to LRU at the cliff.
    assert!(
        mean_at("cost-aware", 2) <= mean_at("lru", 2) * 1.001,
        "cost-aware lost to LRU at the cliff: {series}"
    );
}

/// A heterogeneous fleet (DW2X + Vesuvius) serves the stream: the policies
/// weigh device speed against warmth, every job is accounted for, and runs
/// stay deterministic.
#[test]
fn heterogeneous_fleet_completes_and_replays_deterministically() {
    let workload = WorkloadSpec::repeated_topologies(40, 1.0, 13).generate();
    for policy in PolicyKind::all() {
        let run = || {
            let fleet = Fleet::new(
                FleetConfig::heterogeneous(4, 13),
                SplitExecConfig::with_seed(13),
            );
            let mut scheduler = policy.build();
            simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
        };
        let report = run();
        assert_eq!(report.completed + report.rejected, 40);
        assert!(report.completed > 0);
        // Work spreads beyond a single device (affinity may legitimately
        // concentrate a few topologies on a few devices, but not on one).
        let active = report.per_qpu.iter().filter(|q| q.jobs > 0).count();
        assert!(active >= 2, "{policy}: only {active} device(s) served work");
        assert_eq!(report, run(), "policy {policy} diverged on a hetero fleet");
    }
}

/// Invalid workload specs surface as typed errors through the public API
/// instead of panicking mid-generation.
#[test]
fn invalid_workload_specs_are_rejected_with_errors() {
    let bad_burst = WorkloadSpec {
        jobs: 5,
        seed: 0,
        arrivals: ArrivalProcess::Bursty {
            rate_hz: 1.0,
            burst: 0,
        },
        mix: vec![(1.0, FamilySpec::Partition { n: 8 })],
    };
    assert_eq!(
        bad_burst.try_generate().unwrap_err(),
        WorkloadError::ZeroBurst
    );

    let bad_family = WorkloadSpec {
        jobs: 5,
        seed: 0,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes: vec![] })],
    };
    assert!(matches!(
        bad_family.try_generate().unwrap_err(),
        WorkloadError::DegenerateFamily { .. }
    ));
}

/// Closed-loop mode sustains a fixed population and completes the stream.
#[test]
fn closed_loop_completes_the_stream() {
    let workload = WorkloadSpec::repeated_topologies(30, 1.0, 9).generate();
    let mut scheduler = PolicyKind::ShortestPredictedFirst.build();
    let report = simulate(
        fleet(2, 9),
        &workload,
        scheduler.as_mut(),
        SimConfig {
            mode: WorkloadMode::Closed { clients: 3 },
        },
    );
    assert_eq!(report.completed + report.rejected, 30);
    assert!(report.max_queue_depth() <= 3);
    // A closed system with demand always waiting keeps devices busier than
    // an idle open one would be.
    assert!(report.mean_utilization() > 0.3);
}
