//! Workspace-level integration tests for the `sx_cluster` datacenter
//! simulator: the acceptance criteria of the subsystem, exercised through
//! the public APIs of `sx_cluster`, `split_exec` and `quantum_anneal`
//! together.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet(qpus: usize, seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

fn run(policy: PolicyKind, workload: &Workload, qpus: usize, seed: u64) -> SimReport {
    let mut scheduler = policy.build();
    simulate(
        fleet(qpus, seed),
        workload,
        scheduler.as_mut(),
        SimConfig::default(),
    )
}

/// The headline acceptance demo: on a seeded repeated-topology mix,
/// embedding-cache-affinity scheduling beats FIFO on mean latency, because
/// it pays roughly one cold embedding per topology instead of one per
/// (topology, device) pair.
#[test]
fn affinity_beats_fifo_on_the_seeded_repeated_mix() {
    let workload = WorkloadSpec::repeated_topologies(60, 1.0, 7).generate();
    let fifo = run(PolicyKind::Fifo, &workload, 4, 7);
    let affinity = run(PolicyKind::CacheAffinity, &workload, 4, 7);

    assert_eq!(fifo.completed, 60);
    assert_eq!(affinity.completed, 60);
    assert!(
        affinity.latency.mean < fifo.latency.mean,
        "affinity mean {:.3}s !< fifo mean {:.3}s",
        affinity.latency.mean,
        fifo.latency.mean
    );
    assert!(affinity.cold_misses() < fifo.cold_misses());
    // Affinity never needs more cold embeds than there are topologies —
    // FIFO re-embeds the same topology on several devices.
    assert!(affinity.cold_misses() <= workload.distinct_topologies() + 1);
}

/// The paper's single-machine headline — stage 1 dominates — survives the
/// move to fleet scale under every policy.
#[test]
fn fleet_scale_breakdown_reproduces_stage1_dominance() {
    let workload = WorkloadSpec::mixed(40, 0.8, 3).generate();
    for policy in PolicyKind::all() {
        let report = run(policy, &workload, 3, 3);
        assert!(report.completed > 0);
        assert!(
            report.stage1_fraction() > 0.9,
            "{}: stage-1 fraction {:.3}",
            report.policy,
            report.stage1_fraction()
        );
        assert!(report.stage1_seconds > 100.0 * report.stage2_seconds);
        assert!(report.stage1_seconds > 100.0 * report.stage3_seconds);
    }
}

/// Same seed + workload ⇒ bit-identical trace and metrics, across the
/// workspace boundary (fleet fault maps, analytic cost oracle and workload
/// generation all resolve from the seed).
#[test]
fn simulation_is_deterministic_end_to_end() {
    let spec = WorkloadSpec::bursty(50, 1.2, 5, 19);
    for policy in PolicyKind::all() {
        let a = run(policy, &spec.generate(), 4, 19);
        let b = run(policy, &spec.generate(), 4, 19);
        assert_eq!(a, b, "policy {policy} is not deterministic");
    }
}

/// The simulator's report exports to the same `BatchSummary` shape the
/// batch pipeline produces, so downstream consumers need one format.
#[test]
fn cluster_and_batch_reports_share_one_summary_format() {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{BatchSummary, Pipeline, SplitMachine};

    // A real batch run through the pipeline...
    let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(5));
    let jobs = vec![
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
    ];
    let batch: BatchSummary = pipeline.execute_batch_report(&jobs).summary();

    // ...and a simulated cluster run produce the same struct.
    let workload = WorkloadSpec::repeated_topologies(10, 1.0, 5).generate();
    let cluster: BatchSummary = run(PolicyKind::CacheAffinity, &workload, 2, 5).batch_summary();

    for summary in [batch, cluster] {
        assert_eq!(summary.succeeded + summary.failed, summary.jobs);
        assert!(summary.stage1_fraction > 0.5);
        // The shared Display renders both.
        assert!(format!("{summary}").contains("jobs:"));
    }
}

/// Jobs too large for every device in the fleet are rejected, not lost.
#[test]
fn oversized_jobs_are_rejected_cleanly() {
    let workload = Workload {
        jobs: vec![
            Job {
                id: 0,
                family: "too-big".into(),
                lps: 500,
                topology_key: 1,
                arrival: 0.0,
            },
            Job {
                id: 1,
                family: "fits".into(),
                lps: 20,
                topology_key: 2,
                arrival: 1.0,
            },
        ],
    };
    let report = run(PolicyKind::Fifo, &workload, 2, 1);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.records[0].job, 1);
}

/// Closed-loop mode sustains a fixed population and completes the stream.
#[test]
fn closed_loop_completes_the_stream() {
    let workload = WorkloadSpec::repeated_topologies(30, 1.0, 9).generate();
    let mut scheduler = PolicyKind::ShortestPredictedFirst.build();
    let report = simulate(
        fleet(2, 9),
        &workload,
        scheduler.as_mut(),
        SimConfig {
            mode: WorkloadMode::Closed { clients: 3 },
        },
    );
    assert_eq!(report.completed + report.rejected, 30);
    assert!(report.max_queue_depth() <= 3);
    // A closed system with demand always waiting keeps devices busier than
    // an idle open one would be.
    assert!(report.mean_utilization() > 0.3);
}
