//! Workspace-level integration tests for the `sx_cluster` datacenter
//! simulator: the acceptance criteria of the subsystem, exercised through
//! the public APIs of `sx_cluster`, `split_exec` and `quantum_anneal`
//! together.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet(qpus: usize, seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

fn run(policy: PolicyKind, workload: &Workload, qpus: usize, seed: u64) -> SimReport {
    let mut scheduler = policy.build();
    simulate(
        fleet(qpus, seed),
        workload,
        scheduler.as_mut(),
        SimConfig::default(),
    )
}

/// The headline acceptance demo: on a seeded repeated-topology mix,
/// embedding-cache-affinity scheduling beats FIFO on mean latency, because
/// it pays roughly one cold embedding per topology instead of one per
/// (topology, device) pair.
#[test]
fn affinity_beats_fifo_on_the_seeded_repeated_mix() {
    let workload = WorkloadSpec::repeated_topologies(60, 1.0, 7).generate();
    let fifo = run(PolicyKind::Fifo, &workload, 4, 7);
    let affinity = run(PolicyKind::CacheAffinity, &workload, 4, 7);

    assert_eq!(fifo.completed, 60);
    assert_eq!(affinity.completed, 60);
    assert!(
        affinity.latency.mean < fifo.latency.mean,
        "affinity mean {:.3}s !< fifo mean {:.3}s",
        affinity.latency.mean,
        fifo.latency.mean
    );
    assert!(affinity.cold_misses() < fifo.cold_misses());
    // Affinity never needs more cold embeds than there are topologies —
    // FIFO re-embeds the same topology on several devices.
    assert!(affinity.cold_misses() <= workload.distinct_topologies() + 1);
}

/// The paper's single-machine headline — stage 1 dominates — survives the
/// move to fleet scale under every policy.
#[test]
fn fleet_scale_breakdown_reproduces_stage1_dominance() {
    let workload = WorkloadSpec::mixed(40, 0.8, 3).generate();
    for policy in PolicyKind::all() {
        let report = run(policy, &workload, 3, 3);
        assert!(report.completed > 0);
        assert!(
            report.stage1_fraction() > 0.9,
            "{}: stage-1 fraction {:.3}",
            report.policy,
            report.stage1_fraction()
        );
        assert!(report.stage1_seconds > 100.0 * report.stage2_seconds);
        assert!(report.stage1_seconds > 100.0 * report.stage3_seconds);
    }
}

/// Same seed + workload ⇒ bit-identical trace and metrics, across the
/// workspace boundary (fleet fault maps, analytic cost oracle and workload
/// generation all resolve from the seed).
#[test]
fn simulation_is_deterministic_end_to_end() {
    let spec = WorkloadSpec::bursty(50, 1.2, 5, 19);
    for policy in PolicyKind::all() {
        let a = run(policy, &spec.generate(), 4, 19);
        let b = run(policy, &spec.generate(), 4, 19);
        assert_eq!(a, b, "policy {policy} is not deterministic");
    }
}

/// The simulator's report exports to the same `BatchSummary` shape the
/// batch pipeline produces, so downstream consumers need one format.
#[test]
fn cluster_and_batch_reports_share_one_summary_format() {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{BatchSummary, Pipeline, SplitMachine};

    // A real batch run through the pipeline...
    let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(5));
    let jobs = vec![
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
    ];
    let batch: BatchSummary = pipeline.execute_batch_report(&jobs).summary();

    // ...and a simulated cluster run produce the same struct.
    let workload = WorkloadSpec::repeated_topologies(10, 1.0, 5).generate();
    let cluster: BatchSummary = run(PolicyKind::CacheAffinity, &workload, 2, 5).batch_summary();

    for summary in [batch, cluster] {
        assert_eq!(summary.succeeded + summary.failed, summary.jobs);
        assert!(summary.stage1_fraction > 0.5);
        // The shared Display renders both.
        assert!(format!("{summary}").contains("jobs:"));
    }
}

/// Jobs too large for every device in the fleet are rejected, not lost.
#[test]
fn oversized_jobs_are_rejected_cleanly() {
    let workload = Workload::single_tenant(vec![
        Job {
            id: 0,
            tenant: TenantId::DEFAULT,
            family: "too-big".into(),
            lps: 500,
            topology_key: 1,
            arrival: 0.0,
        },
        Job {
            id: 1,
            tenant: TenantId::DEFAULT,
            family: "fits".into(),
            lps: 20,
            topology_key: 2,
            arrival: 1.0,
        },
    ]);
    let report = run(PolicyKind::Fifo, &workload, 2, 1);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.records[0].job, 1);
}

/// The cache-cliff acceptance claim, exercised through the public API: as
/// per-device capacity falls below the workload's topology diversity, the
/// hit rate drops monotonically — and cost-aware eviction matches or beats
/// LRU on mean latency at the cliff.
#[test]
fn bounded_caches_exhibit_the_hit_rate_cliff() {
    let spec = WorkloadSpec {
        jobs: 90,
        seed: 11,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![(
            1.0,
            FamilySpec::MaxCutCycle {
                sizes: vec![8, 17, 26, 36],
            },
        )],
    };
    let workload = spec.try_generate().expect("valid spec");
    let diversity = workload.distinct_topologies();
    assert_eq!(diversity, 4);

    let mut series = CacheCliffSeries {
        distinct_topologies: diversity,
        ..CacheCliffSeries::default()
    };
    for eviction in EvictionPolicyKind::all() {
        for capacity in [1usize, 2, 4] {
            let fleet = Fleet::new(
                FleetConfig {
                    qpus: 3,
                    seed: 11,
                    ..FleetConfig::default()
                }
                .with_cache(capacity, eviction),
                SplitExecConfig::with_seed(11),
            );
            let mut scheduler = PolicyKind::Fifo.build();
            let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
            series
                .points
                .push(CachePoint::from_report(capacity, eviction.name(), &report));
        }
    }

    for eviction in EvictionPolicyKind::all() {
        let name = eviction.name();
        assert!(
            series.hit_rate_monotone(name, 0.02),
            "{name} hit rate not monotone in capacity: {series}"
        );
        let points = series.policy_points(name);
        assert!(
            points.last().unwrap().hit_rate > points.first().unwrap().hit_rate + 0.1,
            "{name} shows no cliff: {series}"
        );
        // Below diversity, the bound binds: evictions happen.
        assert!(points.first().unwrap().evictions > 0);
        // At full diversity nothing needs evicting.
        assert_eq!(points.last().unwrap().evictions, 0);
    }

    let mean_at = |name: &str, cap: usize| {
        series
            .policy_points(name)
            .iter()
            .find(|p| p.capacity == cap)
            .unwrap()
            .mean_latency_seconds
    };
    // Cost-aware must not lose to LRU at the cliff.
    assert!(
        mean_at("cost-aware", 2) <= mean_at("lru", 2) * 1.001,
        "cost-aware lost to LRU at the cliff: {series}"
    );
}

/// A heterogeneous fleet (DW2X + Vesuvius) serves the stream: the policies
/// weigh device speed against warmth, every job is accounted for, and runs
/// stay deterministic.
#[test]
fn heterogeneous_fleet_completes_and_replays_deterministically() {
    let workload = WorkloadSpec::repeated_topologies(40, 1.0, 13).generate();
    for policy in PolicyKind::all() {
        let run = || {
            let fleet = Fleet::new(
                FleetConfig::heterogeneous(4, 13),
                SplitExecConfig::with_seed(13),
            );
            let mut scheduler = policy.build();
            simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
        };
        let report = run();
        assert_eq!(report.completed + report.rejected, 40);
        assert!(report.completed > 0);
        // Work spreads beyond a single device (affinity may legitimately
        // concentrate a few topologies on a few devices, but not on one).
        let active = report.per_qpu.iter().filter(|q| q.jobs > 0).count();
        assert!(active >= 2, "{policy}: only {active} device(s) served work");
        assert_eq!(report, run(), "policy {policy} diverged on a hetero fleet");
    }
}

/// Invalid workload specs surface as typed errors through the public API
/// instead of panicking mid-generation.
#[test]
fn invalid_workload_specs_are_rejected_with_errors() {
    let bad_burst = WorkloadSpec {
        jobs: 5,
        seed: 0,
        arrivals: ArrivalProcess::Bursty {
            rate_hz: 1.0,
            burst: 0,
        },
        mix: vec![(1.0, FamilySpec::Partition { n: 8 })],
    };
    assert_eq!(
        bad_burst.try_generate().unwrap_err(),
        WorkloadError::ZeroBurst
    );

    let bad_family = WorkloadSpec {
        jobs: 5,
        seed: 0,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes: vec![] })],
    };
    assert!(matches!(
        bad_family.try_generate().unwrap_err(),
        WorkloadError::DegenerateFamily { .. }
    ));
}

/// The multi-tenant fairness acceptance claim in miniature: under a 10:1
/// aggressor/victim arrival skew, weighted fair queueing keeps the victim's
/// p99 within a constant factor of its isolated-run p99, while FIFO lets
/// the aggressor's backlog inflate it far further.
#[test]
fn wfq_bounds_the_victim_p99_under_an_aggressor() {
    let seed = 7;
    let spec = MultiTenantSpec::aggressor_victim(15, 0.4, 10.0, 1.0, seed);
    let workload = spec.generate();

    // The victim alone on the same fleet: its no-contention baseline.
    let isolated_spec = MultiTenantSpec {
        tenants: vec![spec.tenants[0].clone()],
        ..spec.clone()
    };
    let isolated_workload = isolated_spec.generate();
    let isolated = run(PolicyKind::Fifo, &isolated_workload, 3, seed);
    let isolated_p99 = isolated.latency.p99;
    assert!(isolated_p99 > 0.0);

    let fifo = run(PolicyKind::Fifo, &workload, 3, seed);
    let mut wfq_policy = WeightedFairQueue::for_workload(&workload);
    let wfq = simulate(
        fleet(3, seed),
        &workload,
        &mut wfq_policy,
        SimConfig::default(),
    );

    let fifo_victim = fifo.tenant_named("victim").unwrap().latency.p99;
    let wfq_victim = wfq.tenant_named("victim").unwrap().latency.p99;
    assert!(
        wfq_victim <= 8.0 * isolated_p99,
        "WFQ victim p99 {wfq_victim:.2}s blew past the isolated baseline {isolated_p99:.2}s"
    );
    assert!(
        fifo_victim > 2.0 * wfq_victim,
        "FIFO victim p99 {fifo_victim:.2}s should be far above WFQ's {wfq_victim:.2}s"
    );
}

/// Token-bucket admission bounds the queue depth an aggressor can build,
/// sheds only the aggressor's excess, and leaves the victim untouched.
#[test]
fn token_bucket_sheds_the_aggressor_not_the_victim() {
    let seed = 3;
    let workload = MultiTenantSpec::aggressor_victim(12, 0.4, 10.0, 1.0, seed).generate();

    let open = {
        let mut policy = WeightedFairQueue::for_workload(&workload);
        simulate(fleet(3, seed), &workload, &mut policy, SimConfig::default())
    };

    let depth_limit = 5;
    let mut gate = TokenBucket::new(TokenBucketConfig {
        rate_hz: 100.0,
        burst: 100.0,
        max_queue_depth: usize::MAX,
        max_defer_seconds: 1e6,
    })
    .with_tenant_budget(
        TenantId(1),
        TokenBucketConfig {
            rate_hz: 100.0,
            burst: 100.0,
            max_queue_depth: depth_limit,
            max_defer_seconds: 1e6,
        },
    );
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let gated = simulate_with_admission(
        fleet(3, seed),
        &workload,
        &mut policy,
        &mut gate,
        SimConfig::default(),
    );

    let aggressor = gated.tenant_named("aggressor").unwrap();
    let victim = gated.tenant_named("victim").unwrap();
    assert!(open.max_queue_depth() > depth_limit + victim.max_queue_depth);
    assert!(aggressor.max_queue_depth <= depth_limit);
    assert!(aggressor.shed > 0, "the flood must shed");
    assert_eq!(victim.shed, 0, "the victim must not shed");
    assert_eq!(
        gated.completed + gated.rejected + gated.shed,
        gated.jobs,
        "every job is accounted for under admission control"
    );
}

/// Multi-tenant runs with WFQ and token-bucket admission replay
/// bit-identically per seed, across the workspace boundary.
#[test]
fn multi_tenant_simulation_is_deterministic_end_to_end() {
    let run = |seed: u64| {
        let workload = MultiTenantSpec::aggressor_victim(10, 0.5, 6.0, 2.0, seed).generate();
        let mut policy = WeightedFairQueue::for_workload(&workload);
        let mut gate = TokenBucket::new(TokenBucketConfig {
            rate_hz: 1.5,
            burst: 4.0,
            max_queue_depth: 10,
            max_defer_seconds: 100.0,
        });
        simulate_with_admission(
            fleet(3, seed),
            &workload,
            &mut policy,
            &mut gate,
            SimConfig::default(),
        )
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21).trace, run(22).trace);
}

/// The machine-readable export: a multi-tenant report renders to JSON with
/// the per-tenant and fairness fields sweeps consume.
#[test]
fn sim_reports_export_to_json() {
    let workload = MultiTenantSpec::aggressor_victim(6, 0.5, 3.0, 1.0, 5).generate();
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let report = simulate(fleet(2, 5), &workload, &mut policy, SimConfig::default());
    let json = report.to_json();
    assert_eq!(json.get("policy"), Some(&JsonValue::from("wfq")));
    assert!(json.get("jains_fairness_index").is_some());
    let text = json.to_string();
    assert!(text.starts_with('{') && text.ends_with('}'));
    assert!(text.contains("\"per_tenant\""));
    assert!(text.contains("\"victim\""));
    assert_eq!(text.matches('{').count(), text.matches('}').count());
}

/// The cache-admission satellite: on a low-repetition mix (a stream
/// dominated by one-shot topologies plus a recurring hot set), the
/// second-chance doorkeeper keeps one-shot embeds from churning the bounded
/// cache, and must not lose to always-admit on mean latency.
#[test]
fn second_chance_cache_admission_helps_on_low_repetition_mixes() {
    let spec = WorkloadSpec {
        jobs: 90,
        seed: 13,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![
            // The hot set: two recurring cycle topologies.
            (
                1.0,
                FamilySpec::MaxCutCycle {
                    sizes: vec![24, 30],
                },
            ),
            // The one-shot flood: many Gnp variants, rarely repeated.
            (
                2.0,
                FamilySpec::MaxCutGnp {
                    n: 18,
                    p: 0.3,
                    variants: 40,
                },
            ),
        ],
    };
    let workload = spec.try_generate().expect("valid spec");
    assert!(
        workload.distinct_topologies() > 20,
        "mix must be low-repetition"
    );

    let run = |admission: sx_cluster::AdmissionPolicy| {
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 2,
                seed: 13,
                ..FleetConfig::default()
            }
            .with_cache(3, EvictionPolicyKind::Lru)
            .with_cache_admission(admission),
            SplitExecConfig::with_seed(13),
        );
        let mut scheduler = PolicyKind::Fifo.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    };
    let always = run(sx_cluster::AdmissionPolicy::Always);
    let second = run(sx_cluster::AdmissionPolicy::SecondChance);
    assert_eq!(always.cache_bypassed(), 0);
    assert!(second.cache_bypassed() > 0, "the doorkeeper must gate");
    assert!(
        second.evictions() < always.evictions(),
        "gating one-shot topologies must reduce churn ({} !< {})",
        second.evictions(),
        always.evictions()
    );
    assert!(
        second.latency.mean <= always.latency.mean * 1.02,
        "second-chance lost on mean latency: {:.3}s vs {:.3}s",
        second.latency.mean,
        always.latency.mean
    );
}

/// Closed-loop mode sustains a fixed population and completes the stream.
#[test]
fn closed_loop_completes_the_stream() {
    let workload = WorkloadSpec::repeated_topologies(30, 1.0, 9).generate();
    let mut scheduler = PolicyKind::ShortestPredictedFirst.build();
    let report = simulate(
        fleet(2, 9),
        &workload,
        scheduler.as_mut(),
        SimConfig {
            mode: WorkloadMode::Closed { clients: 3 },
        },
    );
    assert_eq!(report.completed + report.rejected, 30);
    assert!(report.max_queue_depth() <= 3);
    // A closed system with demand always waiting keeps devices busier than
    // an idle open one would be.
    assert!(report.mean_utilization() > 0.3);
}
