//! Workspace-level integration tests for the `sx_cluster` datacenter
//! simulator: the acceptance criteria of the subsystem, exercised through
//! the public APIs of `sx_cluster`, `split_exec` and `quantum_anneal`
//! together.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet(qpus: usize, seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

fn run(policy: PolicyKind, workload: &Workload, qpus: usize, seed: u64) -> SimReport {
    let mut scheduler = policy.build();
    simulate(
        fleet(qpus, seed),
        workload,
        scheduler.as_mut(),
        SimConfig::default(),
    )
}

/// The headline acceptance demo: on a seeded repeated-topology mix,
/// embedding-cache-affinity scheduling beats FIFO on mean latency, because
/// it pays roughly one cold embedding per topology instead of one per
/// (topology, device) pair.
#[test]
fn affinity_beats_fifo_on_the_seeded_repeated_mix() {
    let workload = WorkloadSpec::repeated_topologies(60, 1.0, 7).generate();
    let fifo = run(PolicyKind::Fifo, &workload, 4, 7);
    let affinity = run(PolicyKind::CacheAffinity, &workload, 4, 7);

    assert_eq!(fifo.completed, 60);
    assert_eq!(affinity.completed, 60);
    assert!(
        affinity.latency.mean < fifo.latency.mean,
        "affinity mean {:.3}s !< fifo mean {:.3}s",
        affinity.latency.mean,
        fifo.latency.mean
    );
    assert!(affinity.cold_misses() < fifo.cold_misses());
    // Affinity never needs more cold embeds than there are topologies —
    // FIFO re-embeds the same topology on several devices.
    assert!(affinity.cold_misses() <= workload.distinct_topologies() + 1);
}

/// The paper's single-machine headline — stage 1 dominates — survives the
/// move to fleet scale under every policy.
#[test]
fn fleet_scale_breakdown_reproduces_stage1_dominance() {
    let workload = WorkloadSpec::mixed(40, 0.8, 3).generate();
    for policy in PolicyKind::all() {
        let report = run(policy, &workload, 3, 3);
        assert!(report.completed > 0);
        assert!(
            report.stage1_fraction() > 0.9,
            "{}: stage-1 fraction {:.3}",
            report.policy,
            report.stage1_fraction()
        );
        assert!(report.stage1_seconds > 100.0 * report.stage2_seconds);
        assert!(report.stage1_seconds > 100.0 * report.stage3_seconds);
    }
}

/// Same seed + workload ⇒ bit-identical trace and metrics, across the
/// workspace boundary (fleet fault maps, analytic cost oracle and workload
/// generation all resolve from the seed).
#[test]
fn simulation_is_deterministic_end_to_end() {
    let spec = WorkloadSpec::bursty(50, 1.2, 5, 19);
    for policy in PolicyKind::all() {
        let a = run(policy, &spec.generate(), 4, 19);
        let b = run(policy, &spec.generate(), 4, 19);
        assert_eq!(a, b, "policy {policy} is not deterministic");
    }
}

/// The simulator's report exports to the same `BatchSummary` shape the
/// batch pipeline produces, so downstream consumers need one format.
#[test]
fn cluster_and_batch_reports_share_one_summary_format() {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{BatchSummary, Pipeline, SplitMachine};

    // A real batch run through the pipeline...
    let pipeline = Pipeline::new(SplitMachine::paper_default(), SplitExecConfig::with_seed(5));
    let jobs = vec![
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
    ];
    let batch: BatchSummary = pipeline.execute_batch_report(&jobs).summary();

    // ...and a simulated cluster run produce the same struct.
    let workload = WorkloadSpec::repeated_topologies(10, 1.0, 5).generate();
    let cluster: BatchSummary = run(PolicyKind::CacheAffinity, &workload, 2, 5).batch_summary();

    for summary in [batch, cluster] {
        assert_eq!(summary.succeeded + summary.failed, summary.jobs);
        assert!(summary.stage1_fraction > 0.5);
        // The shared Display renders both.
        assert!(format!("{summary}").contains("jobs:"));
    }
}

/// Jobs too large for every device in the fleet are rejected, not lost.
#[test]
fn oversized_jobs_are_rejected_cleanly() {
    let workload = Workload::single_tenant(vec![
        Job {
            id: 0,
            tenant: TenantId::DEFAULT,
            family: "too-big".into(),
            lps: 500,
            topology_key: 1,
            arrival: 0.0,
            deadline: None,
        },
        Job {
            id: 1,
            tenant: TenantId::DEFAULT,
            family: "fits".into(),
            lps: 20,
            topology_key: 2,
            arrival: 1.0,
            deadline: None,
        },
    ]);
    let report = run(PolicyKind::Fifo, &workload, 2, 1);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.records[0].job, 1);
}

/// The cache-cliff acceptance claim, exercised through the public API: as
/// per-device capacity falls below the workload's topology diversity, the
/// hit rate drops monotonically — and cost-aware eviction matches or beats
/// LRU on mean latency at the cliff.
#[test]
fn bounded_caches_exhibit_the_hit_rate_cliff() {
    let spec = WorkloadSpec {
        jobs: 90,
        seed: 11,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![(
            1.0,
            FamilySpec::MaxCutCycle {
                sizes: vec![8, 17, 26, 36],
            },
        )],
        deadlines: DeadlinePolicy::None,
    };
    let workload = spec.try_generate().expect("valid spec");
    let diversity = workload.distinct_topologies();
    assert_eq!(diversity, 4);

    let mut series = CacheCliffSeries {
        distinct_topologies: diversity,
        ..CacheCliffSeries::default()
    };
    for eviction in EvictionPolicyKind::all() {
        for capacity in [1usize, 2, 4] {
            let fleet = Fleet::new(
                FleetConfig {
                    qpus: 3,
                    seed: 11,
                    ..FleetConfig::default()
                }
                .with_cache(capacity, eviction),
                SplitExecConfig::with_seed(11),
            );
            let mut scheduler = PolicyKind::Fifo.build();
            let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
            series
                .points
                .push(CachePoint::from_report(capacity, eviction.name(), &report));
        }
    }

    for eviction in EvictionPolicyKind::all() {
        let name = eviction.name();
        assert!(
            series.hit_rate_monotone(name, 0.02),
            "{name} hit rate not monotone in capacity: {series}"
        );
        let points = series.policy_points(name);
        assert!(
            points.last().unwrap().hit_rate > points.first().unwrap().hit_rate + 0.1,
            "{name} shows no cliff: {series}"
        );
        // Below diversity, the bound binds: evictions happen.
        assert!(points.first().unwrap().evictions > 0);
        // At full diversity nothing needs evicting.
        assert_eq!(points.last().unwrap().evictions, 0);
    }

    let mean_at = |name: &str, cap: usize| {
        series
            .policy_points(name)
            .iter()
            .find(|p| p.capacity == cap)
            .unwrap()
            .mean_latency_seconds
    };
    // Cost-aware must not lose to LRU at the cliff.
    assert!(
        mean_at("cost-aware", 2) <= mean_at("lru", 2) * 1.001,
        "cost-aware lost to LRU at the cliff: {series}"
    );
}

/// A heterogeneous fleet (DW2X + Vesuvius) serves the stream: the policies
/// weigh device speed against warmth, every job is accounted for, and runs
/// stay deterministic.
#[test]
fn heterogeneous_fleet_completes_and_replays_deterministically() {
    let workload = WorkloadSpec::repeated_topologies(40, 1.0, 13).generate();
    for policy in PolicyKind::all() {
        let run = || {
            let fleet = Fleet::new(
                FleetConfig::heterogeneous(4, 13),
                SplitExecConfig::with_seed(13),
            );
            let mut scheduler = policy.build();
            simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
        };
        let report = run();
        assert_eq!(report.completed + report.rejected, 40);
        assert!(report.completed > 0);
        // Work spreads beyond a single device (affinity may legitimately
        // concentrate a few topologies on a few devices, but not on one).
        let active = report.per_qpu.iter().filter(|q| q.jobs > 0).count();
        assert!(active >= 2, "{policy}: only {active} device(s) served work");
        assert_eq!(report, run(), "policy {policy} diverged on a hetero fleet");
    }
}

/// Invalid workload specs surface as typed errors through the public API
/// instead of panicking mid-generation.
#[test]
fn invalid_workload_specs_are_rejected_with_errors() {
    let bad_burst = WorkloadSpec {
        jobs: 5,
        seed: 0,
        arrivals: ArrivalProcess::Bursty {
            rate_hz: 1.0,
            burst: 0,
        },
        mix: vec![(1.0, FamilySpec::Partition { n: 8 })],
        deadlines: DeadlinePolicy::None,
    };
    assert_eq!(
        bad_burst.try_generate().unwrap_err(),
        WorkloadError::ZeroBurst
    );

    let bad_family = WorkloadSpec {
        jobs: 5,
        seed: 0,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes: vec![] })],
        deadlines: DeadlinePolicy::None,
    };
    assert!(matches!(
        bad_family.try_generate().unwrap_err(),
        WorkloadError::DegenerateFamily { .. }
    ));
}

/// The multi-tenant fairness acceptance claim in miniature: under a 10:1
/// aggressor/victim arrival skew, weighted fair queueing keeps the victim's
/// p99 within a constant factor of its isolated-run p99, while FIFO lets
/// the aggressor's backlog inflate it far further.
#[test]
fn wfq_bounds_the_victim_p99_under_an_aggressor() {
    let seed = 7;
    let spec = MultiTenantSpec::aggressor_victim(15, 0.4, 10.0, 1.0, seed);
    let workload = spec.generate();

    // The victim alone on the same fleet: its no-contention baseline.
    let isolated_spec = MultiTenantSpec {
        tenants: vec![spec.tenants[0].clone()],
        ..spec.clone()
    };
    let isolated_workload = isolated_spec.generate();
    let isolated = run(PolicyKind::Fifo, &isolated_workload, 3, seed);
    let isolated_p99 = isolated.latency.p99;
    assert!(isolated_p99 > 0.0);

    let fifo = run(PolicyKind::Fifo, &workload, 3, seed);
    let mut wfq_policy = WeightedFairQueue::for_workload(&workload);
    let wfq = simulate(
        fleet(3, seed),
        &workload,
        &mut wfq_policy,
        SimConfig::default(),
    );

    let fifo_victim = fifo.tenant_named("victim").unwrap().latency.p99;
    let wfq_victim = wfq.tenant_named("victim").unwrap().latency.p99;
    assert!(
        wfq_victim <= 8.0 * isolated_p99,
        "WFQ victim p99 {wfq_victim:.2}s blew past the isolated baseline {isolated_p99:.2}s"
    );
    assert!(
        fifo_victim > 2.0 * wfq_victim,
        "FIFO victim p99 {fifo_victim:.2}s should be far above WFQ's {wfq_victim:.2}s"
    );
}

/// Token-bucket admission bounds the queue depth an aggressor can build,
/// sheds only the aggressor's excess, and leaves the victim untouched.
#[test]
fn token_bucket_sheds_the_aggressor_not_the_victim() {
    let seed = 3;
    let workload = MultiTenantSpec::aggressor_victim(12, 0.4, 10.0, 1.0, seed).generate();

    let open = {
        let mut policy = WeightedFairQueue::for_workload(&workload);
        simulate(fleet(3, seed), &workload, &mut policy, SimConfig::default())
    };

    let depth_limit = 5;
    let mut gate = TokenBucket::new(TokenBucketConfig {
        rate_hz: 100.0,
        burst: 100.0,
        max_queue_depth: usize::MAX,
        max_defer_seconds: 1e6,
        ..TokenBucketConfig::default()
    })
    .with_tenant_budget(
        TenantId(1),
        TokenBucketConfig {
            rate_hz: 100.0,
            burst: 100.0,
            max_queue_depth: depth_limit,
            max_defer_seconds: 1e6,
            ..TokenBucketConfig::default()
        },
    );
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let gated = simulate_with_admission(
        fleet(3, seed),
        &workload,
        &mut policy,
        &mut gate,
        SimConfig::default(),
    );

    let aggressor = gated.tenant_named("aggressor").unwrap();
    let victim = gated.tenant_named("victim").unwrap();
    assert!(open.max_queue_depth() > depth_limit + victim.max_queue_depth);
    assert!(aggressor.max_queue_depth <= depth_limit);
    assert!(aggressor.shed > 0, "the flood must shed");
    assert_eq!(victim.shed, 0, "the victim must not shed");
    assert_eq!(
        gated.completed + gated.rejected + gated.shed,
        gated.jobs,
        "every job is accounted for under admission control"
    );
}

/// Multi-tenant runs with WFQ and token-bucket admission replay
/// bit-identically per seed, across the workspace boundary.
#[test]
fn multi_tenant_simulation_is_deterministic_end_to_end() {
    let run = |seed: u64| {
        let workload = MultiTenantSpec::aggressor_victim(10, 0.5, 6.0, 2.0, seed).generate();
        let mut policy = WeightedFairQueue::for_workload(&workload);
        let mut gate = TokenBucket::new(TokenBucketConfig {
            rate_hz: 1.5,
            burst: 4.0,
            max_queue_depth: 10,
            max_defer_seconds: 100.0,
            ..TokenBucketConfig::default()
        });
        simulate_with_admission(
            fleet(3, seed),
            &workload,
            &mut policy,
            &mut gate,
            SimConfig::default(),
        )
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21).trace, run(22).trace);
}

/// The machine-readable export: a multi-tenant report renders to JSON with
/// the per-tenant and fairness fields sweeps consume.
#[test]
fn sim_reports_export_to_json() {
    let workload = MultiTenantSpec::aggressor_victim(6, 0.5, 3.0, 1.0, 5).generate();
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let report = simulate(fleet(2, 5), &workload, &mut policy, SimConfig::default());
    let json = report.to_json();
    assert_eq!(json.get("policy"), Some(&JsonValue::from("wfq")));
    assert!(json.get("jains_fairness_index").is_some());
    let text = json.to_string();
    assert!(text.starts_with('{') && text.ends_with('}'));
    assert!(text.contains("\"per_tenant\""));
    assert!(text.contains("\"victim\""));
    assert_eq!(text.matches('{').count(), text.matches('}').count());
}

/// The cache-admission satellite: on a low-repetition mix (a stream
/// dominated by one-shot topologies plus a recurring hot set), the
/// second-chance doorkeeper keeps one-shot embeds from churning the bounded
/// cache, and must not lose to always-admit on mean latency.
#[test]
fn second_chance_cache_admission_helps_on_low_repetition_mixes() {
    let spec = WorkloadSpec {
        jobs: 90,
        seed: 13,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
        mix: vec![
            // The hot set: two recurring cycle topologies.
            (
                1.0,
                FamilySpec::MaxCutCycle {
                    sizes: vec![24, 30],
                },
            ),
            // The one-shot flood: many Gnp variants, rarely repeated.
            (
                2.0,
                FamilySpec::MaxCutGnp {
                    n: 18,
                    p: 0.3,
                    variants: 40,
                },
            ),
        ],
        deadlines: DeadlinePolicy::None,
    };
    let workload = spec.try_generate().expect("valid spec");
    assert!(
        workload.distinct_topologies() > 20,
        "mix must be low-repetition"
    );

    let run = |admission: sx_cluster::AdmissionPolicy| {
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 2,
                seed: 13,
                ..FleetConfig::default()
            }
            .with_cache(3, EvictionPolicyKind::Lru)
            .with_cache_admission(admission),
            SplitExecConfig::with_seed(13),
        );
        let mut scheduler = PolicyKind::Fifo.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    };
    let always = run(sx_cluster::AdmissionPolicy::Always);
    let second = run(sx_cluster::AdmissionPolicy::SecondChance);
    assert_eq!(always.cache_bypassed(), 0);
    assert!(second.cache_bypassed() > 0, "the doorkeeper must gate");
    assert!(
        second.evictions() < always.evictions(),
        "gating one-shot topologies must reduce churn ({} !< {})",
        second.evictions(),
        always.evictions()
    );
    assert!(
        second.latency.mean <= always.latency.mean * 1.02,
        "second-chance lost on mean latency: {:.3}s vs {:.3}s",
        second.latency.mean,
        always.latency.mean
    );
}

/// The deadline tentpole, end to end: a deadline-stamped two-tenant stream
/// under EDF-in-lane WFQ misses fewer deadlines than the same stream under
/// FIFO-lane WFQ and FIFO at saturating load, and the SLO metrics add up.
#[test]
fn edf_lanes_cut_the_slo_miss_rate_under_load() {
    let seed = 7;
    // Two symmetric tenants with mixed sizes and tight proportional slack,
    // arriving faster than the fleet can serve: a meaningful fraction of
    // deadlines must be missed, and the in-lane order decides which.
    let tenant = |name: &str, sizes: Vec<usize>| TenantSpec {
        name: name.to_string(),
        weight: 1.0,
        jobs: 45,
        arrivals: ArrivalProcess::Poisson { rate_hz: 1.3 },
        mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes })],
        deadlines: DeadlinePolicy::ProportionalSlack { factor: 4.0 },
    };
    let workload = MultiTenantSpec {
        seed,
        tenants: vec![
            tenant("alpha", vec![12, 20, 28, 36]),
            tenant("beta", vec![14, 22, 30, 34]),
        ],
    }
    .generate();
    assert_eq!(workload.deadline_jobs(), 90);

    let run = |scheduler: &mut dyn Scheduler| {
        simulate(fleet(3, seed), &workload, scheduler, SimConfig::default())
    };
    let fifo = run(&mut Fifo);
    let mut plain = WeightedFairQueue::for_workload(&workload).with_lane_order(LaneOrder::Fifo);
    let plain = run(&mut plain);
    let mut edf_lane = WeightedFairQueue::for_workload(&workload);
    let edf_lane = run(&mut edf_lane);

    // Everything completes (no admission gate), so miss-rates compare the
    // same population.
    for report in [&fifo, &plain, &edf_lane] {
        assert_eq!(report.completed, 90);
        assert_eq!(report.slo_jobs(), 90);
        assert_eq!(
            report.slo_misses(),
            report
                .records
                .iter()
                .filter(|r| r.slo_miss() == Some(true))
                .count()
        );
        assert!(report.lateness.percentiles_ordered());
    }
    assert!(
        fifo.slo_misses() > 0,
        "the load must actually produce misses"
    );
    assert!(
        edf_lane.slo_miss_rate() < fifo.slo_miss_rate(),
        "EDF lanes {:.3} !< fifo {:.3}",
        edf_lane.slo_miss_rate(),
        fifo.slo_miss_rate()
    );
    assert!(
        edf_lane.slo_miss_rate() < plain.slo_miss_rate(),
        "EDF lanes {:.3} !< plain WFQ lanes {:.3}",
        edf_lane.slo_miss_rate(),
        plain.slo_miss_rate()
    );
    // Per-tenant SLO accounting sums to the report totals.
    let tenant_misses: usize = edf_lane.per_tenant.iter().map(|t| t.slo_misses).sum();
    let tenant_jobs: usize = edf_lane.per_tenant.iter().map(|t| t.slo_jobs).sum();
    assert_eq!(tenant_misses, edf_lane.slo_misses());
    assert_eq!(tenant_jobs, edf_lane.slo_jobs());
}

/// Deadline-infeasibility shedding, end to end: doomed tight-slack jobs
/// shed at admission, a loose-slack (always feasible) tenant is never
/// touched, and every shed is accounted.
#[test]
fn infeasible_shedding_never_claims_a_feasible_job() {
    let seed = 5;
    // The worst single-job pin on this fleet: the costliest cold service.
    let worst_pin = fleet(2, seed).worst_cold_service_seconds(36);
    let workload = MultiTenantSpec {
        seed,
        tenants: vec![
            TenantSpec {
                name: "feasible".to_string(),
                weight: 1.0,
                jobs: 12,
                arrivals: ArrivalProcess::Poisson { rate_hz: 0.4 },
                mix: vec![(
                    1.0,
                    FamilySpec::MaxCutCycle {
                        sizes: vec![20, 28],
                    },
                )],
                // Slack clears the worst possible wait + service with 4x
                // headroom: always feasible at admission time.
                deadlines: DeadlinePolicy::FixedSlack {
                    slack_seconds: 4.0 * worst_pin,
                },
            },
            TenantSpec {
                name: "doomed".to_string(),
                weight: 1.0,
                jobs: 36,
                arrivals: ArrivalProcess::Poisson { rate_hz: 1.2 },
                // Cache-busting cold embeds pin the devices...
                mix: vec![(
                    1.0,
                    FamilySpec::MaxCutGnp {
                        n: 30,
                        p: 0.3,
                        variants: 40,
                    },
                )],
                // ...so a few seconds of slack are provably unreachable
                // whenever both devices are mid-embed.
                deadlines: DeadlinePolicy::FixedSlack {
                    slack_seconds: 0.05 * worst_pin,
                },
            },
        ],
    }
    .generate();

    let mut gate = TokenBucket::new(TokenBucketConfig {
        rate_hz: 1e3,
        burst: 1e3,
        max_queue_depth: usize::MAX,
        max_defer_seconds: 1e9,
        shed_infeasible: true,
    });
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let report = simulate_with_admission(
        fleet(2, seed),
        &workload,
        &mut policy,
        &mut gate,
        SimConfig::default(),
    );

    let feasible = report.tenant_named("feasible").unwrap();
    let doomed = report.tenant_named("doomed").unwrap();
    assert_eq!(
        feasible.shed_infeasible, 0,
        "a feasible job must never shed on deadline grounds"
    );
    assert_eq!(feasible.completed, feasible.submitted);
    assert!(
        doomed.shed_infeasible > 0,
        "the doomed flood must trip the gate"
    );
    assert_eq!(doomed.shed, doomed.shed_infeasible);
    assert_eq!(report.shed_infeasible, doomed.shed_infeasible);
    assert_eq!(
        report.completed + report.rejected + report.shed,
        report.jobs,
        "every job is accounted for under infeasibility shedding"
    );
    // The trace labels the infeasibility sheds, and each shed job's
    // deadline really was tighter than its best-case completion: no
    // completed sibling of the same size finished within that slack while
    // the fleet was loaded.
    let infeasible_sheds = report
        .trace
        .iter()
        .filter(|t| {
            matches!(
                t,
                TraceRecord::Shed {
                    infeasible: true,
                    ..
                }
            )
        })
        .count();
    assert_eq!(infeasible_sheds, report.shed_infeasible);
}

/// Deadline-stamped multi-tenant streams replay bit-identically per seed
/// across the workspace boundary — the PR 5 determinism acceptance.
#[test]
fn deadline_streams_are_deterministic_end_to_end() {
    let run = |seed: u64| {
        let workload = MultiTenantSpec::aggressor_victim(10, 0.5, 5.0, 2.0, seed)
            .with_uniform_deadlines(DeadlinePolicy::ProportionalSlack { factor: 3.0 })
            .generate();
        let mut policy = WeightedFairQueue::for_workload(&workload);
        let mut gate = TokenBucket::new(TokenBucketConfig {
            rate_hz: 2.0,
            burst: 4.0,
            max_queue_depth: 32,
            max_defer_seconds: 200.0,
            shed_infeasible: true,
        });
        simulate_with_admission(
            fleet(3, seed),
            &workload,
            &mut policy,
            &mut gate,
            SimConfig::default(),
        )
    };
    let a = run(33);
    assert_eq!(a, run(33));
    assert_ne!(a.trace, run(34).trace);
    // Deadlines made it through generation, dispatch and records.
    assert!(a.slo_jobs() > 0);
    assert!(a.records.iter().all(|r| r.deadline.is_some()));
}

/// The JSON export carries the SLO fields sweeps consume.
#[test]
fn slo_fields_export_to_json() {
    let workload = MultiTenantSpec::aggressor_victim(6, 0.5, 3.0, 1.0, 5)
        .with_uniform_deadlines(DeadlinePolicy::FixedSlack {
            slack_seconds: 30.0,
        })
        .generate();
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let report = simulate(fleet(2, 5), &workload, &mut policy, SimConfig::default());
    let json = report.to_json();
    for field in ["slo_jobs", "slo_misses", "slo_miss_rate", "shed_infeasible"] {
        assert!(json.get(field).is_some(), "missing report field {field}");
    }
    let text = json.to_string();
    assert!(text.contains("\"lateness_seconds\""));
    assert!(text.contains("\"slo_miss_rate\""));
    // Per-tenant objects carry the same fields.
    match json.get("per_tenant") {
        Some(JsonValue::Array(tenants)) => {
            for t in tenants {
                assert!(t.get("slo_jobs").is_some());
                assert!(t.get("lateness_seconds").is_some());
            }
        }
        other => panic!("per_tenant should be an array, got {other:?}"),
    }
}

/// Closed-loop mode sustains a fixed population and completes the stream.
#[test]
fn closed_loop_completes_the_stream() {
    let workload = WorkloadSpec::repeated_topologies(30, 1.0, 9).generate();
    let mut scheduler = PolicyKind::ShortestPredictedFirst.build();
    let report = simulate(
        fleet(2, 9),
        &workload,
        scheduler.as_mut(),
        SimConfig {
            mode: WorkloadMode::Closed { clients: 3 },
            percentiles: PercentileMode::Exact,
        },
    );
    assert_eq!(report.completed + report.rejected, 30);
    assert!(report.max_queue_depth() <= 3);
    // A closed system with demand always waiting keeps devices busier than
    // an idle open one would be.
    assert!(report.mean_utilization() > 0.3);
}

/// Telemetry is a pure observer across the workspace boundary: a
/// multi-tenant run with WFQ and token-bucket admission yields the same
/// report bit-for-bit whether it runs bare, with a retaining sink, or with
/// a Perfetto exporter plus a sampling metrics registry attached.
#[test]
fn telemetry_never_perturbs_a_multi_tenant_run() {
    for seed in [5, 29] {
        let workload = MultiTenantSpec::aggressor_victim(10, 0.5, 6.0, 2.0, seed).generate();
        let gate_config = TokenBucketConfig {
            rate_hz: 1.5,
            burst: 4.0,
            max_queue_depth: 10,
            max_defer_seconds: 100.0,
            ..TokenBucketConfig::default()
        };
        let run = |sink: &mut dyn TraceSink, registry: Option<&mut MetricsRegistry>| {
            let mut policy = WeightedFairQueue::for_workload(&workload);
            let mut gate = TokenBucket::new(gate_config);
            simulate_with_telemetry(
                fleet(3, seed),
                &workload,
                &mut policy,
                &mut gate,
                SimConfig::default(),
                sink,
                registry,
            )
        };

        let bare = run(&mut NullSink, None);
        let mut vec_sink = VecSink::new();
        let retained = run(&mut vec_sink, None);
        let mut perfetto = PerfettoSink::new();
        let mut registry = MetricsRegistry::new(2.0);
        let observed = run(&mut perfetto, Some(&mut registry));

        assert_eq!(bare, retained, "VecSink changed the run (seed {seed})");
        assert_eq!(
            bare, observed,
            "PerfettoSink + registry changed the run (seed {seed})"
        );

        // The retaining sink matches what the legacy wrapper reports.
        let legacy = {
            let mut policy = WeightedFairQueue::for_workload(&workload);
            let mut gate = TokenBucket::new(gate_config);
            simulate_with_admission(
                fleet(3, seed),
                &workload,
                &mut policy,
                &mut gate,
                SimConfig::default(),
            )
        };
        assert_eq!(legacy.trace, vec_sink.records());

        // And the registry saw the run it observed: counters and sketches
        // agree with the report's own accounting.
        assert_eq!(
            registry.counter_value("completions"),
            Some(bare.completed as u64)
        );
        let latency = registry.histogram("latency_seconds").unwrap();
        assert_eq!(latency.count(), bare.completed as u64);
    }
}

/// The Perfetto export of a workspace-level run is a valid trace-event
/// document under the strict JSON parser: one object with a `traceEvents`
/// array whose entries all carry a phase, and with complete (`ph: "X"`)
/// spans for every dispatched job.
#[test]
fn perfetto_export_parses_as_trace_event_json() {
    let seed = 11;
    let workload = MultiTenantSpec::aggressor_victim(8, 0.5, 4.0, 1.0, seed).generate();
    let mut policy = WeightedFairQueue::for_workload(&workload);
    let mut sink = PerfettoSink::new();
    let report = simulate_with_telemetry(
        fleet(2, seed),
        &workload,
        &mut policy,
        &mut AdmitAll,
        SimConfig::default(),
        &mut sink,
        None,
    );
    let rendered = sink.finish().to_string();

    let doc = sx_cluster::json::parse(&rendered).expect("Perfetto export must parse");
    let events = match doc.get("traceEvents") {
        Some(JsonValue::Array(events)) => events,
        other => panic!("traceEvents should be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    let mut spans = 0usize;
    for event in events {
        match event.get("ph") {
            Some(JsonValue::Str(ph)) => {
                assert!(
                    ["X", "i", "M"].contains(&ph.as_str()),
                    "unexpected phase {ph}"
                );
                if ph == "X" {
                    spans += 1;
                    // Complete spans carry finite, non-negative timing.
                    for key in ["ts", "dur"] {
                        match event.get(key) {
                            Some(&JsonValue::Num(n)) => assert!(n.is_finite() && n >= 0.0),
                            other => panic!("span {key} should be a number, got {other:?}"),
                        }
                    }
                }
            }
            other => panic!("every trace event needs a ph, got {other:?}"),
        }
    }
    // Each completed job contributes at least its queued span, three stage
    // spans and a device-occupancy span.
    assert!(spans >= 5 * report.completed);
}
