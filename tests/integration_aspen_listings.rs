//! Cross-crate integration test: the paper's published ASPEN listings
//! (Figs. 5–8) parse, resolve against the built-in hardware library and
//! reproduce the hand-computable values from the text.

use aspen_model::prelude::*;
use aspen_model::{listings, machine::MachineModel};

#[test]
fn fig5_machine_listing_resolves_against_builtin_library() {
    let doc = parse_document(listings::MACHINE_LISTING).unwrap();
    assert_eq!(doc.machines.len(), 1);
    let machine = MachineModel::from_document(&doc, "SimpleNode", &BuiltinLibrary).unwrap();
    // The QuOps rate defined in the listing (20 µs per anneal).
    let t = machine.seconds_for("QuOps", 3.0, &[]).unwrap();
    assert!((t - 60e-6).abs() < 1e-12);
    // The host CPU provides the flops/loads/stores rates.
    assert_eq!(
        machine.rate("flops").unwrap().provider,
        "intel_xeon_e5_2680"
    );
    assert!(machine.supports("intracomm"));
}

#[test]
fn fig6_stage1_listing_reproduces_parameter_arithmetic() {
    let app = ApplicationModel::from_source(listings::STAGE1_LISTING).unwrap();
    let env = app
        .resolve_params(&ParamEnv::new().with("LPS", 100.0))
        .unwrap();
    // NG = 8 * 12 * 12 = 1152 qubits; EG matches the Chimera coupler count.
    assert_eq!(env.get("NG").unwrap(), 1152.0);
    assert_eq!(env.get("EG").unwrap(), 3360.0);
    assert_eq!(env.get("EH").unwrap(), 4950.0);
    // ProcessorInitialize sums the published microsecond constants.
    assert_eq!(env.get("ProcessorInitialize").unwrap(), 319_573.0);
    // The hardware-graph crate agrees with the model's NG/EG formulas.
    let chimera = chimera_graph::Chimera::dw2x();
    assert_eq!(chimera.qubit_count() as f64, env.get("NG").unwrap());
    assert_eq!(chimera.coupler_count() as f64, env.get("EG").unwrap());
}

#[test]
fn fig6_stage1_prediction_is_dominated_by_the_embedding_kernel() {
    let app = ApplicationModel::from_source(listings::STAGE1_LISTING).unwrap();
    let machine = simple_node(QpuGeneration::Dw2x);
    let prediction = Predictor::new(&machine)
        .predict(&app, &ParamEnv::new().with("LPS", 50.0))
        .unwrap();
    let embed = prediction.kernel_seconds("EmbedData").unwrap();
    let init = prediction.kernel_seconds("InitializeProcessor").unwrap();
    let data = prediction.kernel_seconds("InitializeData").unwrap();
    assert!(embed > 10.0 * init, "embed {embed} vs init {init}");
    assert!(embed > 100.0 * data, "embed {embed} vs data {data}");
    // The dominant resource is the floating-point work of the embedding.
    let (resource, _) = prediction.dominant_resource().unwrap();
    assert_eq!(resource, "flops");
}

#[test]
fn fig7_stage2_listing_reproduces_eq6_read_counts() {
    let app = ApplicationModel::from_source(listings::STAGE2_LISTING).unwrap();
    let machine = simple_node(QpuGeneration::Dw2x);
    // Success defaults to 0.9999 in the listing; sweep the accuracy input.
    // With p_s = 0.9999 the ratio of Eq. (6) is log(1-p_a)/log(1e-4): 0.25
    // for 90%, 0.5 for 99% and 1.5 for 99.9999% — i.e. 1, 1 and 2 reads.
    for (accuracy_percent, expected_reads) in [(90.0, 1.0), (99.0, 1.0), (99.9999, 2.0)] {
        let prediction = Predictor::new(&machine)
            .predict(&app, &ParamEnv::new().with("Accuracy", accuracy_percent))
            .unwrap();
        assert_eq!(
            prediction.resource_totals["QuOps"].quantity, expected_reads,
            "accuracy {accuracy_percent}%"
        );
    }
}

#[test]
fn fig8_stage3_listing_costs_are_negligible() {
    let app = ApplicationModel::from_source(listings::STAGE3_LISTING).unwrap();
    let machine = simple_node(QpuGeneration::Dw2x);
    for lps in [10.0, 100.0] {
        let prediction = Predictor::new(&machine)
            .predict(&app, &ParamEnv::new().with("LPS", lps))
            .unwrap();
        assert!(
            prediction.seconds() < 1e-3,
            "LPS {lps}: {}",
            prediction.seconds()
        );
    }
}

#[test]
fn listing_predictions_match_splitexec_stage_wrappers() {
    // The split-exec stage wrappers are just parameterized walks of the same
    // listings; their numbers must match a direct walk exactly.
    use split_exec::prelude::*;
    let machine = SplitMachine::paper_default();
    let app = ApplicationModel::from_source(listings::STAGE1_LISTING).unwrap();
    let direct = Predictor::new(&machine.aspen)
        .predict(
            &app,
            &ParamEnv::new()
                .with("LPS", 40.0)
                .with("M", 12.0)
                .with("N", 12.0),
        )
        .unwrap();
    let wrapped = predict_stage1(&machine, 40).unwrap();
    assert!((direct.seconds() - wrapped.total_seconds).abs() < 1e-12);
}
