//! Cross-crate integration test: the embedding and annealing substrates
//! compose correctly — logical problems survive the round trip through
//! hardware embedding, sampling and un-embedding.

use chimera_graph::{generators, Chimera, FaultModel};
use minor_embed::prelude::*;
use quantum_anneal::prelude::*;
use qubo_ising::prelude::*;
use qubo_ising::solve_ising_exact;

/// Embed a logical model, sample the physical program, decode, and compare
/// with the exact logical optimum.
fn round_trip(logical: &Ising, hardware: &chimera_graph::Graph, seed: u64) -> (f64, f64, usize) {
    // Dense inputs on small lattices benefit from a few extra randomized
    // restarts; the figure-scale sweeps use the same budget.
    let config = CmrConfig {
        seed,
        tries: 8,
        max_passes: 16,
        ..CmrConfig::default()
    };
    let outcome = find_embedding(&logical.interaction_graph(), hardware, &config)
        .expect("embedding must exist");
    verify_embedding(&logical.interaction_graph(), hardware, &outcome.embedding).unwrap();
    let embedded = embed_ising(
        logical,
        &outcome.embedding,
        hardware,
        ParameterSetting::auto(logical, 2.0),
    );
    let qpu = SimulatedQpu::with_schedule(AnnealSchedule::default());
    let samples = qpu.sample(&embedded.physical, 16, seed);
    let mut best_logical_energy = f64::INFINITY;
    let mut chain_breaks = 0;
    for record in &samples.records {
        let decoded = unembed_sample(&outcome.embedding, &record.spins);
        chain_breaks += decoded.chain_breaks * record.occurrences;
        best_logical_energy = best_logical_energy.min(logical.energy(&decoded.spins));
    }
    let (exact, _, _) = solve_ising_exact(logical);
    (best_logical_energy, exact, chain_breaks)
}

#[test]
fn cycle_problem_round_trips_to_the_exact_optimum() {
    let logical = Ising::random_on_graph(&generators::cycle(10), 3);
    let hardware = Chimera::new(4, 4, 4).into_graph();
    let (sampled, exact, _) = round_trip(&logical, &hardware, 1);
    assert!(
        sampled <= exact + 1e-9,
        "sampled {sampled} worse than exact {exact}"
    );
}

#[test]
fn dense_problem_round_trips_close_to_optimum() {
    let logical = Ising::random_on_graph(&generators::complete(6), 5);
    let hardware = Chimera::new(4, 4, 4).into_graph();
    let (sampled, exact, _) = round_trip(&logical, &hardware, 2);
    // Dense problems with long chains may break occasionally; require the
    // sampled optimum to be within 5% of the exact ground energy range.
    let spread = exact.abs().max(1.0);
    assert!(
        sampled <= exact + 0.05 * spread,
        "sampled {sampled} vs exact {exact}"
    );
}

#[test]
fn faulted_hardware_still_supports_the_round_trip() {
    let chimera = Chimera::new(4, 4, 4);
    let faults = FaultModel::exact_dead_qubits(chimera.graph(), 10, 13);
    let hardware = faults.apply(chimera.graph());
    let logical = Ising::random_on_graph(&generators::grid(3, 3), 7);
    let (sampled, exact, _) = round_trip(&logical, &hardware, 3);
    assert!(sampled <= exact + 1e-9);
}

#[test]
fn stronger_chains_reduce_chain_breaks() {
    let logical = Ising::random_on_graph(&generators::complete(6), 11);
    let hardware = Chimera::new(4, 4, 4).into_graph();
    let outcome = find_embedding(
        &logical.interaction_graph(),
        &hardware,
        &CmrConfig {
            seed: 4,
            tries: 8,
            max_passes: 16,
            ..CmrConfig::default()
        },
    )
    .unwrap();
    let qpu = SimulatedQpu::with_schedule(AnnealSchedule::fast());
    let mut breaks_by_strength = Vec::new();
    for strength in [0.1, 4.0] {
        let embedded = embed_ising(
            &logical,
            &outcome.embedding,
            &hardware,
            ParameterSetting {
                chain_strength: strength,
                spread_couplings: true,
            },
        );
        let samples = qpu.sample(&embedded.physical, 24, 9);
        let breaks: usize = samples
            .records
            .iter()
            .map(|r| unembed_sample(&outcome.embedding, &r.spins).chain_breaks * r.occurrences)
            .sum();
        breaks_by_strength.push(breaks);
    }
    assert!(
        breaks_by_strength[1] <= breaks_by_strength[0],
        "strong chains should not break more often: {breaks_by_strength:?}"
    );
}

#[test]
fn quantization_preserves_ground_state_at_moderate_precision() {
    // Quantizing the embedded program at the control electronics' precision
    // (Sec. 2.2) should not change the recovered optimum for a small problem.
    let logical = Ising::random_on_graph(&generators::cycle(8), 17);
    let hardware = Chimera::new(3, 3, 4).into_graph();
    let outcome = find_embedding(
        &logical.interaction_graph(),
        &hardware,
        &CmrConfig::with_seed(6),
    )
    .unwrap();
    let embedded = embed_ising(
        &logical,
        &outcome.embedding,
        &hardware,
        ParameterSetting::auto(&logical, 2.0),
    );
    let quantized = quantize_ising(&embedded.physical, PrecisionSpec::with_bits(8));
    let qpu = SimulatedQpu::with_schedule(AnnealSchedule::default());
    let exact = solve_ising_exact(&logical).0;
    for physical in [&embedded.physical, &quantized.programmed] {
        let samples = qpu.sample(physical, 16, 21);
        let best = samples
            .records
            .iter()
            .map(|r| logical.energy(&unembed_sample(&outcome.embedding, &r.spins).spins))
            .fold(f64::INFINITY, f64::min);
        assert!(best <= exact + 1e-6, "best {best} vs exact {exact}");
    }
}
