//! Cross-crate integration tests for the pluggable stage-2 backends and the
//! batch-submission surface:
//!
//! * backend parity — simulated annealing, parallel tempering and exact
//!   enumeration agree on the optimum of small MAX-CUT and
//!   number-partitioning instances pushed through the full pipeline,
//! * batch semantics — `execute_batch` returns exactly what per-job
//!   `execute` returns under the same seeds,
//! * stage-1 amortization — a batch of jobs sharing one interaction
//!   topology runs the embedding heuristic once.

use chimera_graph::generators;
use qubo_ising::prelude::*;
use qubo_ising::Qubo;
use split_exec::prelude::*;

fn pipeline_with(seed: u64, kind: BackendKind) -> Pipeline {
    let config = SplitExecConfig::with_seed(seed)
        .with_accuracy(0.999_999) // generous Eq. (6) read budget
        .with_backend(kind);
    Pipeline::new(SplitMachine::paper_default(), config)
}

#[test]
fn all_backends_reach_the_maxcut_optimum() {
    let maxcut = MaxCut::unweighted(generators::cycle(8));
    let qubo = maxcut.to_qubo();
    let exact = solve_qubo_exact(&qubo);
    for kind in BackendKind::all() {
        let report = pipeline_with(7, kind).execute(&qubo).unwrap();
        assert_eq!(report.stage2.backend, kind.to_string());
        assert!(
            (report.solution.qubo_energy - exact.energy).abs() < 1e-9,
            "{kind}: sampled {} vs exact {}",
            report.solution.qubo_energy,
            exact.energy
        );
        // The optimum cut of C8 is 8.
        assert_eq!(maxcut.cut_value(&report.solution.assignment), 8.0, "{kind}");
    }
}

#[test]
fn all_backends_reach_the_partition_optimum() {
    let instance = NumberPartition::new(vec![5.0, 4.0, 3.0, 2.0, 2.0]);
    let qubo = instance.to_qubo();
    let exact = solve_qubo_exact(&qubo);
    for kind in BackendKind::all() {
        let report = pipeline_with(11, kind).execute(&qubo).unwrap();
        assert!(
            (report.solution.qubo_energy - exact.energy).abs() < 1e-6,
            "{kind}: sampled {} vs exact {}",
            report.solution.qubo_energy,
            exact.energy
        );
        // A perfect split exists: {5, 3} vs {4, 2, 2}.
        assert_eq!(
            instance.imbalance(&report.solution.assignment),
            0.0,
            "{kind}"
        );
    }
}

#[test]
fn backends_agree_with_each_other_on_the_ground_state() {
    let qubo = MaxCut::unweighted(generators::path(7)).to_qubo();
    let energies: Vec<f64> = BackendKind::all()
        .into_iter()
        .map(|kind| {
            pipeline_with(3, kind)
                .execute(&qubo)
                .unwrap()
                .solution
                .qubo_energy
        })
        .collect();
    for pair in energies.windows(2) {
        assert!((pair[0] - pair[1]).abs() < 1e-9, "energies {energies:?}");
    }
}

#[test]
fn execute_batch_equals_per_job_execute_for_every_backend() {
    let jobs: Vec<Qubo> = vec![
        MaxCut::unweighted(generators::cycle(6)).to_qubo(),
        MaxCut::unweighted(generators::path(5)).to_qubo(),
        NumberPartition::new(vec![4.0, 3.0, 2.0, 1.0]).to_qubo(),
    ];
    for kind in BackendKind::all() {
        let pipeline = pipeline_with(13, kind);
        let batch = pipeline.execute_batch(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for (job, batched) in jobs.iter().zip(&batch) {
            let solo = pipeline.execute(job).unwrap();
            let batched = batched.as_ref().unwrap();
            assert_eq!(solo.solution, batched.solution, "{kind}");
            assert_eq!(solo.stage2.samples, batched.stage2.samples, "{kind}");
            assert_eq!(solo.stage3.ranked, batched.stage3.ranked, "{kind}");
        }
    }
}

#[test]
fn identical_topology_batch_embeds_exactly_once() {
    // Ten MAX-CUT jobs over the same 8-cycle with different weights: the
    // interaction graph is identical, so stage-1 embedding must run once
    // and be served from the cache for every job.
    let jobs: Vec<Qubo> = (0..10)
        .map(|w| {
            let graph = generators::cycle(8);
            let weights: Vec<((usize, usize), f64)> = graph
                .edges()
                .map(|(u, v)| ((u, v), 1.0 + w as f64))
                .collect();
            MaxCut::weighted(graph.clone(), &weights).to_qubo()
        })
        .collect();
    let pipeline = pipeline_with(5, BackendKind::SimulatedAnnealing);
    let report = pipeline.execute_batch_report(&jobs);
    assert_eq!(report.succeeded, 10);
    assert_eq!(
        report.embedding_cache.misses, 1,
        "embedding should be computed exactly once for 10 identical-topology jobs"
    );
    assert_eq!(report.embedding_cache.hits, 10);
    for result in &report.results {
        assert!(result.as_ref().unwrap().stage1.embedding_cache_hit);
    }
}

#[test]
fn backend_kind_parses_the_cli_names() {
    for (name, expected) in [
        ("sa", BackendKind::SimulatedAnnealing),
        ("simulated-annealing", BackendKind::SimulatedAnnealing),
        ("pt", BackendKind::ParallelTempering),
        ("parallel-tempering", BackendKind::ParallelTempering),
        ("exact", BackendKind::Exact),
        ("brute-force", BackendKind::Exact),
    ] {
        assert_eq!(name.parse::<BackendKind>().unwrap(), expected);
    }
    assert!("dwave".parse::<BackendKind>().is_err());
    // Round trip through Display.
    for kind in BackendKind::all() {
        assert_eq!(kind.to_string().parse::<BackendKind>().unwrap(), kind);
    }
}

#[test]
fn batch_wall_clock_amortization_is_observable() {
    // The batch path must spend strictly fewer embedding computations than
    // jobs; with one topology and N jobs the modeled stage-1 time still
    // charges per job (programming is per job), but the measured embedding
    // seconds collapse for cache hits.
    let jobs: Vec<Qubo> = (0..6)
        .map(|_| MaxCut::unweighted(generators::cycle(10)).to_qubo())
        .collect();
    let pipeline = pipeline_with(9, BackendKind::SimulatedAnnealing);
    let report = pipeline.execute_batch_report(&jobs);
    assert_eq!(report.succeeded, 6);
    let embed_seconds: Vec<f64> = report
        .results
        .iter()
        .map(|r| r.as_ref().unwrap().stage1.embedding_seconds)
        .collect();
    // Cache hits record (near-)zero embedding time.
    assert!(
        embed_seconds.iter().all(|&s| s == 0.0),
        "all jobs were warm-cache hits: {embed_seconds:?}"
    );
}
