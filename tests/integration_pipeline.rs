//! Cross-crate integration test: the full split-execution pipeline over
//! several problem families, checking solution quality against exact optima
//! and the paper's qualitative timing conclusions.

use chimera_graph::generators;
use qubo_ising::prelude::*;
use split_exec::prelude::*;

fn pipeline(seed: u64) -> Pipeline {
    Pipeline::new(
        SplitMachine::paper_default(),
        SplitExecConfig::with_seed(seed),
    )
}

#[test]
fn maxcut_on_even_cycle_reaches_the_optimum() {
    let maxcut = MaxCut::unweighted(generators::cycle(10));
    let qubo = maxcut.to_qubo();
    let report = pipeline(1).execute(&qubo).unwrap();
    let cut = maxcut.cut_value(&report.solution.assignment);
    assert!(
        cut >= 8.0,
        "cut {cut} too far from the optimum of 10 for C10"
    );
    // Solution consistency: the reported QUBO energy matches re-evaluating
    // the assignment, and equals the Ising energy plus the conversion offset.
    assert!((report.solution.qubo_energy - qubo.energy(&report.solution.assignment)).abs() < 1e-9);
    assert!(
        (report.solution.qubo_energy - (report.solution.ising_energy + report.stage1.offset)).abs()
            < 1e-9
    );
}

#[test]
fn vertex_cover_solution_is_a_valid_cover() {
    let vc = VertexCover::new(generators::star(9));
    let qubo = vc.to_qubo();
    let report = pipeline(2).execute(&qubo).unwrap();
    assert!(vc.is_cover(&report.solution.assignment));
    // The hub-only cover is optimal for a star; allow one extra vertex of
    // slack for the sampler.
    assert!(vc.cover_size(&report.solution.assignment) <= 2);
}

#[test]
fn number_partition_balances_a_balanceable_instance() {
    let instance = NumberPartition::new(vec![8.0, 7.0, 6.0, 5.0, 4.0, 2.0]);
    let qubo = instance.to_qubo();
    // Request enough nines of accuracy that Eq. (6) sizes the read count
    // generously; finding the perfect split from 4 reads is seed luck.
    let mut p = pipeline(3);
    p.config = p.config.with_accuracy(0.999_999);
    let report = p.execute(&qubo).unwrap();
    // Total 32, perfect split exists (16/16).
    assert_eq!(instance.imbalance(&report.solution.assignment), 0.0);
}

#[test]
fn graph_coloring_produces_a_proper_coloring() {
    // The one-hot coloring QUBO has a rougher landscape than the other
    // workloads, so request more reads (a pessimistic per-read success
    // probability) just as a real application would.
    let coloring = GraphColoring::new(generators::cycle(6), 2);
    let qubo = coloring.to_qubo();
    let config = SplitExecConfig::with_seed(4)
        .with_accuracy(0.999)
        .with_success_probability(0.2);
    let pipeline = Pipeline::new(SplitMachine::paper_default(), config);
    let report = pipeline.execute(&qubo).unwrap();
    assert!(coloring.is_proper(&report.solution.assignment));
}

#[test]
fn measured_breakdown_is_stage1_dominated_for_all_workloads() {
    let workloads: Vec<Qubo> = vec![
        MaxCut::unweighted(generators::cycle(8)).to_qubo(),
        VertexCover::new(generators::path(8)).to_qubo(),
        Qubo::random_on_graph(&generators::grid(3, 3), 5),
    ];
    for (i, qubo) in workloads.iter().enumerate() {
        let report = pipeline(10 + i as u64).execute(qubo).unwrap();
        assert!(
            report.stage1_fraction() > 0.5,
            "workload {i}: stage-1 share {}",
            report.stage1_fraction()
        );
        assert!(report.stage1.total_seconds > report.stage2.total_seconds);
        assert!(report.stage1.total_seconds > report.stage3.measured_seconds);
    }
}

#[test]
fn pipeline_handles_faulted_hardware() {
    use chimera_graph::{Chimera, FaultModel};
    let chimera = Chimera::dw2x();
    let faults = FaultModel::exact_dead_qubits(chimera.graph(), 32, 77);
    let machine = SplitMachine::with_faults(QpuModel::Dw2x, faults);
    assert_eq!(machine.usable_qubits(), 1152 - 32);
    let pipeline = Pipeline::new(machine, SplitExecConfig::with_seed(6));
    let maxcut = MaxCut::unweighted(generators::cycle(10));
    let report = pipeline.execute(&maxcut.to_qubo()).unwrap();
    assert!(maxcut.cut_value(&report.solution.assignment) >= 8.0);
}

#[test]
fn offline_cache_accelerates_repeat_solves() {
    let machine = SplitMachine::paper_default();
    let config = SplitExecConfig::with_seed(9);
    let cache = EmbeddingCache::new();
    let graph = generators::cycle(12);
    let cold = cache.get_or_compute(&graph, &machine, &config).unwrap();
    let warm = cache.get_or_compute(&graph, &machine, &config).unwrap();
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit);
    assert!(warm.seconds <= cold.seconds);
    assert_eq!(cold.embedding, warm.embedding);
}
