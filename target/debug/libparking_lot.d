/root/repo/target/debug/libparking_lot.rlib: /root/repo/crates/compat/parking_lot/src/lib.rs
