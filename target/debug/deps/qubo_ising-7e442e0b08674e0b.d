/root/repo/target/debug/deps/qubo_ising-7e442e0b08674e0b.d: crates/qubo/src/lib.rs crates/qubo/src/convert.rs crates/qubo/src/energy.rs crates/qubo/src/ising.rs crates/qubo/src/precision.rs crates/qubo/src/problems/mod.rs crates/qubo/src/problems/coloring.rs crates/qubo/src/problems/maxcut.rs crates/qubo/src/problems/partition.rs crates/qubo/src/problems/vertex_cover.rs crates/qubo/src/qubo.rs Cargo.toml

/root/repo/target/debug/deps/libqubo_ising-7e442e0b08674e0b.rmeta: crates/qubo/src/lib.rs crates/qubo/src/convert.rs crates/qubo/src/energy.rs crates/qubo/src/ising.rs crates/qubo/src/precision.rs crates/qubo/src/problems/mod.rs crates/qubo/src/problems/coloring.rs crates/qubo/src/problems/maxcut.rs crates/qubo/src/problems/partition.rs crates/qubo/src/problems/vertex_cover.rs crates/qubo/src/qubo.rs Cargo.toml

crates/qubo/src/lib.rs:
crates/qubo/src/convert.rs:
crates/qubo/src/energy.rs:
crates/qubo/src/ising.rs:
crates/qubo/src/precision.rs:
crates/qubo/src/problems/mod.rs:
crates/qubo/src/problems/coloring.rs:
crates/qubo/src/problems/maxcut.rs:
crates/qubo/src/problems/partition.rs:
crates/qubo/src/problems/vertex_cover.rs:
crates/qubo/src/qubo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
