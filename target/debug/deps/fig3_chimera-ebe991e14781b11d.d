/root/repo/target/debug/deps/fig3_chimera-ebe991e14781b11d.d: crates/bench/src/bin/fig3_chimera.rs

/root/repo/target/debug/deps/fig3_chimera-ebe991e14781b11d: crates/bench/src/bin/fig3_chimera.rs

crates/bench/src/bin/fig3_chimera.rs:
