/root/repo/target/debug/deps/integration_pipeline-580adfa5b9a85571.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-580adfa5b9a85571: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
