/root/repo/target/debug/deps/fig9a_stage1-4ed118b9718798f4.d: crates/bench/benches/fig9a_stage1.rs

/root/repo/target/debug/deps/fig9a_stage1-4ed118b9718798f4: crates/bench/benches/fig9a_stage1.rs

crates/bench/benches/fig9a_stage1.rs:
