/root/repo/target/debug/deps/integration_backends-c2f1fd2305f45d8e.d: tests/integration_backends.rs

/root/repo/target/debug/deps/integration_backends-c2f1fd2305f45d8e: tests/integration_backends.rs

tests/integration_backends.rs:
