/root/repo/target/debug/deps/fig9b_stage2-7dafcde26240b7c2.d: crates/bench/benches/fig9b_stage2.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b_stage2-7dafcde26240b7c2.rmeta: crates/bench/benches/fig9b_stage2.rs Cargo.toml

crates/bench/benches/fig9b_stage2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
