/root/repo/target/debug/deps/rayon-438a3a872660566b.d: crates/compat/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-438a3a872660566b.rlib: crates/compat/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-438a3a872660566b.rmeta: crates/compat/rayon/src/lib.rs

crates/compat/rayon/src/lib.rs:
