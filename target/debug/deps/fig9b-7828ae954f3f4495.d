/root/repo/target/debug/deps/fig9b-7828ae954f3f4495.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/debug/deps/fig9b-7828ae954f3f4495: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
