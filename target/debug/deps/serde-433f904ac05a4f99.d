/root/repo/target/debug/deps/serde-433f904ac05a4f99.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-433f904ac05a4f99: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
