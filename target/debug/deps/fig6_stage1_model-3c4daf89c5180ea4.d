/root/repo/target/debug/deps/fig6_stage1_model-3c4daf89c5180ea4.d: crates/bench/src/bin/fig6_stage1_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_stage1_model-3c4daf89c5180ea4.rmeta: crates/bench/src/bin/fig6_stage1_model.rs Cargo.toml

crates/bench/src/bin/fig6_stage1_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
