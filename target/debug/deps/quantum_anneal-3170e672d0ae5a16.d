/root/repo/target/debug/deps/quantum_anneal-3170e672d0ae5a16.d: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

/root/repo/target/debug/deps/quantum_anneal-3170e672d0ae5a16: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

crates/annealer/src/lib.rs:
crates/annealer/src/backend.rs:
crates/annealer/src/pt.rs:
crates/annealer/src/sa.rs:
crates/annealer/src/sampler.rs:
crates/annealer/src/schedule.rs:
crates/annealer/src/stats.rs:
crates/annealer/src/timing.rs:
