/root/repo/target/debug/deps/integration_embedding_anneal-0aee173acfcdd01e.d: tests/integration_embedding_anneal.rs

/root/repo/target/debug/deps/integration_embedding_anneal-0aee173acfcdd01e: tests/integration_embedding_anneal.rs

tests/integration_embedding_anneal.rs:
