/root/repo/target/debug/deps/serde-3f5519951c9c8e22.d: crates/compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-3f5519951c9c8e22.rmeta: crates/compat/serde/src/lib.rs Cargo.toml

crates/compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
