/root/repo/target/debug/deps/split_exec-e0e0d0588cb87714.d: crates/splitexec/src/lib.rs crates/splitexec/src/batch.rs crates/splitexec/src/config.rs crates/splitexec/src/error.rs crates/splitexec/src/machine.rs crates/splitexec/src/offline_cache.rs crates/splitexec/src/pipeline.rs crates/splitexec/src/report.rs crates/splitexec/src/sequence.rs crates/splitexec/src/stage1.rs crates/splitexec/src/stage2.rs crates/splitexec/src/stage3.rs crates/splitexec/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libsplit_exec-e0e0d0588cb87714.rmeta: crates/splitexec/src/lib.rs crates/splitexec/src/batch.rs crates/splitexec/src/config.rs crates/splitexec/src/error.rs crates/splitexec/src/machine.rs crates/splitexec/src/offline_cache.rs crates/splitexec/src/pipeline.rs crates/splitexec/src/report.rs crates/splitexec/src/sequence.rs crates/splitexec/src/stage1.rs crates/splitexec/src/stage2.rs crates/splitexec/src/stage3.rs crates/splitexec/src/timing.rs Cargo.toml

crates/splitexec/src/lib.rs:
crates/splitexec/src/batch.rs:
crates/splitexec/src/config.rs:
crates/splitexec/src/error.rs:
crates/splitexec/src/machine.rs:
crates/splitexec/src/offline_cache.rs:
crates/splitexec/src/pipeline.rs:
crates/splitexec/src/report.rs:
crates/splitexec/src/sequence.rs:
crates/splitexec/src/stage1.rs:
crates/splitexec/src/stage2.rs:
crates/splitexec/src/stage3.rs:
crates/splitexec/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
