/root/repo/target/debug/deps/batch_throughput-7ca700cabbd65cb2.d: crates/bench/src/bin/batch_throughput.rs

/root/repo/target/debug/deps/batch_throughput-7ca700cabbd65cb2: crates/bench/src/bin/batch_throughput.rs

crates/bench/src/bin/batch_throughput.rs:
