/root/repo/target/debug/deps/rayon-18306bc5fef70a9d.d: crates/compat/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-18306bc5fef70a9d.rmeta: crates/compat/rayon/src/lib.rs Cargo.toml

crates/compat/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
