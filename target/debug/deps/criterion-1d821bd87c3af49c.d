/root/repo/target/debug/deps/criterion-1d821bd87c3af49c.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-1d821bd87c3af49c: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
