/root/repo/target/debug/deps/fig9b-3f0faa55b772d979.d: crates/bench/src/bin/fig9b.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b-3f0faa55b772d979.rmeta: crates/bench/src/bin/fig9b.rs Cargo.toml

crates/bench/src/bin/fig9b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
