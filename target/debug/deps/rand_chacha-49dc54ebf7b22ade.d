/root/repo/target/debug/deps/rand_chacha-49dc54ebf7b22ade.d: crates/compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-49dc54ebf7b22ade.rmeta: crates/compat/rand_chacha/src/lib.rs Cargo.toml

crates/compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
