/root/repo/target/debug/deps/rand_chacha-e5a4c3b4be189b2b.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-e5a4c3b4be189b2b: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
