/root/repo/target/debug/deps/sx_bench-8d575e943ffe9ee4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsx_bench-8d575e943ffe9ee4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
