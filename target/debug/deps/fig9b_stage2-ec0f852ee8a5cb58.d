/root/repo/target/debug/deps/fig9b_stage2-ec0f852ee8a5cb58.d: crates/bench/benches/fig9b_stage2.rs

/root/repo/target/debug/deps/fig9b_stage2-ec0f852ee8a5cb58: crates/bench/benches/fig9b_stage2.rs

crates/bench/benches/fig9b_stage2.rs:
