/root/repo/target/debug/deps/annealer_sampling-6f1352812c4d63eb.d: crates/bench/benches/annealer_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libannealer_sampling-6f1352812c4d63eb.rmeta: crates/bench/benches/annealer_sampling.rs Cargo.toml

crates/bench/benches/annealer_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
