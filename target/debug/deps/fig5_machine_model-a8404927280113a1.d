/root/repo/target/debug/deps/fig5_machine_model-a8404927280113a1.d: crates/bench/src/bin/fig5_machine_model.rs

/root/repo/target/debug/deps/fig5_machine_model-a8404927280113a1: crates/bench/src/bin/fig5_machine_model.rs

crates/bench/src/bin/fig5_machine_model.rs:
