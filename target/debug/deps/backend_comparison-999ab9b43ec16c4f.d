/root/repo/target/debug/deps/backend_comparison-999ab9b43ec16c4f.d: crates/bench/benches/backend_comparison.rs

/root/repo/target/debug/deps/backend_comparison-999ab9b43ec16c4f: crates/bench/benches/backend_comparison.rs

crates/bench/benches/backend_comparison.rs:
