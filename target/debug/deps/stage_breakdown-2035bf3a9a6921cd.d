/root/repo/target/debug/deps/stage_breakdown-2035bf3a9a6921cd.d: crates/bench/src/bin/stage_breakdown.rs

/root/repo/target/debug/deps/stage_breakdown-2035bf3a9a6921cd: crates/bench/src/bin/stage_breakdown.rs

crates/bench/src/bin/stage_breakdown.rs:
