/root/repo/target/debug/deps/chimera_graph-99de76ad0e73763e.d: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/debug/deps/chimera_graph-99de76ad0e73763e: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

crates/chimera/src/lib.rs:
crates/chimera/src/chimera.rs:
crates/chimera/src/csr.rs:
crates/chimera/src/faults.rs:
crates/chimera/src/generators.rs:
crates/chimera/src/graph.rs:
crates/chimera/src/metrics.rs:
