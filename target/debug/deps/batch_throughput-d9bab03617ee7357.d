/root/repo/target/debug/deps/batch_throughput-d9bab03617ee7357.d: crates/bench/src/bin/batch_throughput.rs

/root/repo/target/debug/deps/batch_throughput-d9bab03617ee7357: crates/bench/src/bin/batch_throughput.rs

crates/bench/src/bin/batch_throughput.rs:
