/root/repo/target/debug/deps/split_exec_repro-bcfb067a6a59c396.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsplit_exec_repro-bcfb067a6a59c396.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
