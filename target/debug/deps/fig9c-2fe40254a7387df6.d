/root/repo/target/debug/deps/fig9c-2fe40254a7387df6.d: crates/bench/src/bin/fig9c.rs Cargo.toml

/root/repo/target/debug/deps/libfig9c-2fe40254a7387df6.rmeta: crates/bench/src/bin/fig9c.rs Cargo.toml

crates/bench/src/bin/fig9c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
