/root/repo/target/debug/deps/ablation_offline_embedding-6c66aee901ca13e6.d: crates/bench/benches/ablation_offline_embedding.rs

/root/repo/target/debug/deps/ablation_offline_embedding-6c66aee901ca13e6: crates/bench/benches/ablation_offline_embedding.rs

crates/bench/benches/ablation_offline_embedding.rs:
