/root/repo/target/debug/deps/ablation_embedding_algorithms-c562be433d5abff2.d: crates/bench/benches/ablation_embedding_algorithms.rs

/root/repo/target/debug/deps/ablation_embedding_algorithms-c562be433d5abff2: crates/bench/benches/ablation_embedding_algorithms.rs

crates/bench/benches/ablation_embedding_algorithms.rs:
