/root/repo/target/debug/deps/fig5_machine_model-31ff2dbc9f87eece.d: crates/bench/src/bin/fig5_machine_model.rs

/root/repo/target/debug/deps/fig5_machine_model-31ff2dbc9f87eece: crates/bench/src/bin/fig5_machine_model.rs

crates/bench/src/bin/fig5_machine_model.rs:
