/root/repo/target/debug/deps/fig5_machine_model-173f5b883a530f50.d: crates/bench/src/bin/fig5_machine_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_machine_model-173f5b883a530f50.rmeta: crates/bench/src/bin/fig5_machine_model.rs Cargo.toml

crates/bench/src/bin/fig5_machine_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
