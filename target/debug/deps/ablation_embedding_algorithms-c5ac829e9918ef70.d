/root/repo/target/debug/deps/ablation_embedding_algorithms-c5ac829e9918ef70.d: crates/bench/benches/ablation_embedding_algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libablation_embedding_algorithms-c5ac829e9918ef70.rmeta: crates/bench/benches/ablation_embedding_algorithms.rs Cargo.toml

crates/bench/benches/ablation_embedding_algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
