/root/repo/target/debug/deps/serde-e1283c7825ced4a8.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-e1283c7825ced4a8: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
