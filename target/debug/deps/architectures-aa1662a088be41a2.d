/root/repo/target/debug/deps/architectures-aa1662a088be41a2.d: crates/bench/src/bin/architectures.rs Cargo.toml

/root/repo/target/debug/deps/libarchitectures-aa1662a088be41a2.rmeta: crates/bench/src/bin/architectures.rs Cargo.toml

crates/bench/src/bin/architectures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
