/root/repo/target/debug/deps/integration_pipeline-484f9a35722b9c60.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-484f9a35722b9c60: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
