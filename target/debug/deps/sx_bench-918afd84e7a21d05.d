/root/repo/target/debug/deps/sx_bench-918afd84e7a21d05.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsx_bench-918afd84e7a21d05.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsx_bench-918afd84e7a21d05.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
