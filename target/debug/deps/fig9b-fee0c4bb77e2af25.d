/root/repo/target/debug/deps/fig9b-fee0c4bb77e2af25.d: crates/bench/src/bin/fig9b.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b-fee0c4bb77e2af25.rmeta: crates/bench/src/bin/fig9b.rs Cargo.toml

crates/bench/src/bin/fig9b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
