/root/repo/target/debug/deps/split_exec-4739dc29058c3a33.d: crates/splitexec/src/lib.rs crates/splitexec/src/batch.rs crates/splitexec/src/config.rs crates/splitexec/src/error.rs crates/splitexec/src/machine.rs crates/splitexec/src/offline_cache.rs crates/splitexec/src/pipeline.rs crates/splitexec/src/report.rs crates/splitexec/src/sequence.rs crates/splitexec/src/stage1.rs crates/splitexec/src/stage2.rs crates/splitexec/src/stage3.rs crates/splitexec/src/timing.rs

/root/repo/target/debug/deps/split_exec-4739dc29058c3a33: crates/splitexec/src/lib.rs crates/splitexec/src/batch.rs crates/splitexec/src/config.rs crates/splitexec/src/error.rs crates/splitexec/src/machine.rs crates/splitexec/src/offline_cache.rs crates/splitexec/src/pipeline.rs crates/splitexec/src/report.rs crates/splitexec/src/sequence.rs crates/splitexec/src/stage1.rs crates/splitexec/src/stage2.rs crates/splitexec/src/stage3.rs crates/splitexec/src/timing.rs

crates/splitexec/src/lib.rs:
crates/splitexec/src/batch.rs:
crates/splitexec/src/config.rs:
crates/splitexec/src/error.rs:
crates/splitexec/src/machine.rs:
crates/splitexec/src/offline_cache.rs:
crates/splitexec/src/pipeline.rs:
crates/splitexec/src/report.rs:
crates/splitexec/src/sequence.rs:
crates/splitexec/src/stage1.rs:
crates/splitexec/src/stage2.rs:
crates/splitexec/src/stage3.rs:
crates/splitexec/src/timing.rs:
