/root/repo/target/debug/deps/architectures-5acc6ce1239d7812.d: crates/bench/src/bin/architectures.rs

/root/repo/target/debug/deps/architectures-5acc6ce1239d7812: crates/bench/src/bin/architectures.rs

crates/bench/src/bin/architectures.rs:
