/root/repo/target/debug/deps/rayon-8f7b47420cf0ef9e.d: crates/compat/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-8f7b47420cf0ef9e: crates/compat/rayon/src/lib.rs

crates/compat/rayon/src/lib.rs:
