/root/repo/target/debug/deps/architectures-a893443f60c92a53.d: crates/bench/src/bin/architectures.rs

/root/repo/target/debug/deps/architectures-a893443f60c92a53: crates/bench/src/bin/architectures.rs

crates/bench/src/bin/architectures.rs:
