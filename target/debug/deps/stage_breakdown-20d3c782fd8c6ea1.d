/root/repo/target/debug/deps/stage_breakdown-20d3c782fd8c6ea1.d: crates/bench/src/bin/stage_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libstage_breakdown-20d3c782fd8c6ea1.rmeta: crates/bench/src/bin/stage_breakdown.rs Cargo.toml

crates/bench/src/bin/stage_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
