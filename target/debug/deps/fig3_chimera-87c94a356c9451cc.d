/root/repo/target/debug/deps/fig3_chimera-87c94a356c9451cc.d: crates/bench/src/bin/fig3_chimera.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_chimera-87c94a356c9451cc.rmeta: crates/bench/src/bin/fig3_chimera.rs Cargo.toml

crates/bench/src/bin/fig3_chimera.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
