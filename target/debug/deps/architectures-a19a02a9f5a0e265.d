/root/repo/target/debug/deps/architectures-a19a02a9f5a0e265.d: crates/bench/src/bin/architectures.rs Cargo.toml

/root/repo/target/debug/deps/libarchitectures-a19a02a9f5a0e265.rmeta: crates/bench/src/bin/architectures.rs Cargo.toml

crates/bench/src/bin/architectures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
