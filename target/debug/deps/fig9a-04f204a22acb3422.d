/root/repo/target/debug/deps/fig9a-04f204a22acb3422.d: crates/bench/src/bin/fig9a.rs Cargo.toml

/root/repo/target/debug/deps/libfig9a-04f204a22acb3422.rmeta: crates/bench/src/bin/fig9a.rs Cargo.toml

crates/bench/src/bin/fig9a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
