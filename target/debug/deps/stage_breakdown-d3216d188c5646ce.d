/root/repo/target/debug/deps/stage_breakdown-d3216d188c5646ce.d: crates/bench/src/bin/stage_breakdown.rs

/root/repo/target/debug/deps/stage_breakdown-d3216d188c5646ce: crates/bench/src/bin/stage_breakdown.rs

crates/bench/src/bin/stage_breakdown.rs:
