/root/repo/target/debug/deps/fig8_stage3_model-49e88d34b2f03478.d: crates/bench/src/bin/fig8_stage3_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_stage3_model-49e88d34b2f03478.rmeta: crates/bench/src/bin/fig8_stage3_model.rs Cargo.toml

crates/bench/src/bin/fig8_stage3_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
