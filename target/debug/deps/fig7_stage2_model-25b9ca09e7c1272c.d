/root/repo/target/debug/deps/fig7_stage2_model-25b9ca09e7c1272c.d: crates/bench/src/bin/fig7_stage2_model.rs

/root/repo/target/debug/deps/fig7_stage2_model-25b9ca09e7c1272c: crates/bench/src/bin/fig7_stage2_model.rs

crates/bench/src/bin/fig7_stage2_model.rs:
