/root/repo/target/debug/deps/split_exec_repro-694a21e8b14d4c18.d: src/lib.rs

/root/repo/target/debug/deps/split_exec_repro-694a21e8b14d4c18: src/lib.rs

src/lib.rs:
