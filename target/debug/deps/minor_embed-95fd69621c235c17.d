/root/repo/target/debug/deps/minor_embed-95fd69621c235c17.d: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

/root/repo/target/debug/deps/minor_embed-95fd69621c235c17: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

crates/embedding/src/lib.rs:
crates/embedding/src/clique.rs:
crates/embedding/src/cmr.rs:
crates/embedding/src/dijkstra.rs:
crates/embedding/src/parameter.rs:
crates/embedding/src/types.rs:
crates/embedding/src/verify.rs:
