/root/repo/target/debug/deps/fig9a-87ba286589edfddf.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/debug/deps/fig9a-87ba286589edfddf: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
