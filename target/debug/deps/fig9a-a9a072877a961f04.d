/root/repo/target/debug/deps/fig9a-a9a072877a961f04.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/debug/deps/fig9a-a9a072877a961f04: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
