/root/repo/target/debug/deps/fig6_stage1_model-095f5b4a8d0bbfdd.d: crates/bench/src/bin/fig6_stage1_model.rs

/root/repo/target/debug/deps/fig6_stage1_model-095f5b4a8d0bbfdd: crates/bench/src/bin/fig6_stage1_model.rs

crates/bench/src/bin/fig6_stage1_model.rs:
