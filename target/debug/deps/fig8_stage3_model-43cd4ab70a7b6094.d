/root/repo/target/debug/deps/fig8_stage3_model-43cd4ab70a7b6094.d: crates/bench/src/bin/fig8_stage3_model.rs

/root/repo/target/debug/deps/fig8_stage3_model-43cd4ab70a7b6094: crates/bench/src/bin/fig8_stage3_model.rs

crates/bench/src/bin/fig8_stage3_model.rs:
