/root/repo/target/debug/deps/sx_bench-4731e4f4f6fb0156.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsx_bench-4731e4f4f6fb0156.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsx_bench-4731e4f4f6fb0156.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
