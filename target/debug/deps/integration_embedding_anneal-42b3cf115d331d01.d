/root/repo/target/debug/deps/integration_embedding_anneal-42b3cf115d331d01.d: tests/integration_embedding_anneal.rs

/root/repo/target/debug/deps/integration_embedding_anneal-42b3cf115d331d01: tests/integration_embedding_anneal.rs

tests/integration_embedding_anneal.rs:
