/root/repo/target/debug/deps/sx_bench-5838c52854c06ab8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sx_bench-5838c52854c06ab8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
