/root/repo/target/debug/deps/serde-58a3241120e53681.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-58a3241120e53681.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-58a3241120e53681.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
