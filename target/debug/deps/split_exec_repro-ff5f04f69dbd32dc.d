/root/repo/target/debug/deps/split_exec_repro-ff5f04f69dbd32dc.d: src/lib.rs

/root/repo/target/debug/deps/libsplit_exec_repro-ff5f04f69dbd32dc.rlib: src/lib.rs

/root/repo/target/debug/deps/libsplit_exec_repro-ff5f04f69dbd32dc.rmeta: src/lib.rs

src/lib.rs:
