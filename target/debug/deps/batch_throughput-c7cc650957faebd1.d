/root/repo/target/debug/deps/batch_throughput-c7cc650957faebd1.d: crates/bench/src/bin/batch_throughput.rs

/root/repo/target/debug/deps/batch_throughput-c7cc650957faebd1: crates/bench/src/bin/batch_throughput.rs

crates/bench/src/bin/batch_throughput.rs:
