/root/repo/target/debug/deps/fig6_stage1_model-3adba820f85f224c.d: crates/bench/src/bin/fig6_stage1_model.rs

/root/repo/target/debug/deps/fig6_stage1_model-3adba820f85f224c: crates/bench/src/bin/fig6_stage1_model.rs

crates/bench/src/bin/fig6_stage1_model.rs:
