/root/repo/target/debug/deps/sx_bench-6c4349fea266947e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsx_bench-6c4349fea266947e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
