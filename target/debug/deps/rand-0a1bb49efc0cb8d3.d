/root/repo/target/debug/deps/rand-0a1bb49efc0cb8d3.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-0a1bb49efc0cb8d3: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
