/root/repo/target/debug/deps/split_exec_repro-48b85cd4e8bf5ff9.d: src/lib.rs

/root/repo/target/debug/deps/split_exec_repro-48b85cd4e8bf5ff9: src/lib.rs

src/lib.rs:
