/root/repo/target/debug/deps/rand_chacha-ee68421c8cdea917.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-ee68421c8cdea917.rlib: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-ee68421c8cdea917.rmeta: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
