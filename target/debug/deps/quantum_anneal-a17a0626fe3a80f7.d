/root/repo/target/debug/deps/quantum_anneal-a17a0626fe3a80f7.d: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

/root/repo/target/debug/deps/quantum_anneal-a17a0626fe3a80f7: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

crates/annealer/src/lib.rs:
crates/annealer/src/backend.rs:
crates/annealer/src/pt.rs:
crates/annealer/src/sa.rs:
crates/annealer/src/sampler.rs:
crates/annealer/src/schedule.rs:
crates/annealer/src/stats.rs:
crates/annealer/src/timing.rs:
