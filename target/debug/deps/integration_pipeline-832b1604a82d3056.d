/root/repo/target/debug/deps/integration_pipeline-832b1604a82d3056.d: tests/integration_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pipeline-832b1604a82d3056.rmeta: tests/integration_pipeline.rs Cargo.toml

tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
