/root/repo/target/debug/deps/quantum_anneal-3fb48a069d204dea.d: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libquantum_anneal-3fb48a069d204dea.rmeta: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs Cargo.toml

crates/annealer/src/lib.rs:
crates/annealer/src/backend.rs:
crates/annealer/src/pt.rs:
crates/annealer/src/sa.rs:
crates/annealer/src/sampler.rs:
crates/annealer/src/schedule.rs:
crates/annealer/src/stats.rs:
crates/annealer/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
