/root/repo/target/debug/deps/integration_embedding_anneal-59d268fb66cb7028.d: tests/integration_embedding_anneal.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_embedding_anneal-59d268fb66cb7028.rmeta: tests/integration_embedding_anneal.rs Cargo.toml

tests/integration_embedding_anneal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
