/root/repo/target/debug/deps/integration_aspen_listings-ebdf3076b7a202ca.d: tests/integration_aspen_listings.rs

/root/repo/target/debug/deps/integration_aspen_listings-ebdf3076b7a202ca: tests/integration_aspen_listings.rs

tests/integration_aspen_listings.rs:
