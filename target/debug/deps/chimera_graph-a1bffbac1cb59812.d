/root/repo/target/debug/deps/chimera_graph-a1bffbac1cb59812.d: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libchimera_graph-a1bffbac1cb59812.rmeta: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs Cargo.toml

crates/chimera/src/lib.rs:
crates/chimera/src/chimera.rs:
crates/chimera/src/csr.rs:
crates/chimera/src/faults.rs:
crates/chimera/src/generators.rs:
crates/chimera/src/graph.rs:
crates/chimera/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
