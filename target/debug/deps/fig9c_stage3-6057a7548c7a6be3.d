/root/repo/target/debug/deps/fig9c_stage3-6057a7548c7a6be3.d: crates/bench/benches/fig9c_stage3.rs

/root/repo/target/debug/deps/fig9c_stage3-6057a7548c7a6be3: crates/bench/benches/fig9c_stage3.rs

crates/bench/benches/fig9c_stage3.rs:
