/root/repo/target/debug/deps/fig9c_stage3-24504f4c908523af.d: crates/bench/benches/fig9c_stage3.rs

/root/repo/target/debug/deps/fig9c_stage3-24504f4c908523af: crates/bench/benches/fig9c_stage3.rs

crates/bench/benches/fig9c_stage3.rs:
