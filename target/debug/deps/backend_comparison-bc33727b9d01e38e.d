/root/repo/target/debug/deps/backend_comparison-bc33727b9d01e38e.d: crates/bench/benches/backend_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbackend_comparison-bc33727b9d01e38e.rmeta: crates/bench/benches/backend_comparison.rs Cargo.toml

crates/bench/benches/backend_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
