/root/repo/target/debug/deps/integration_aspen_listings-020e34d2eb1de3a6.d: tests/integration_aspen_listings.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_aspen_listings-020e34d2eb1de3a6.rmeta: tests/integration_aspen_listings.rs Cargo.toml

tests/integration_aspen_listings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
