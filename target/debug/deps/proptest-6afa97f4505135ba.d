/root/repo/target/debug/deps/proptest-6afa97f4505135ba.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-6afa97f4505135ba: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
