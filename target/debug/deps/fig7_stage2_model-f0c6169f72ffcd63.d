/root/repo/target/debug/deps/fig7_stage2_model-f0c6169f72ffcd63.d: crates/bench/src/bin/fig7_stage2_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_stage2_model-f0c6169f72ffcd63.rmeta: crates/bench/src/bin/fig7_stage2_model.rs Cargo.toml

crates/bench/src/bin/fig7_stage2_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
