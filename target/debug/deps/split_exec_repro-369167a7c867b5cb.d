/root/repo/target/debug/deps/split_exec_repro-369167a7c867b5cb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsplit_exec_repro-369167a7c867b5cb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
