/root/repo/target/debug/deps/chimera_graph-8c4dd2ee32871ced.d: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/debug/deps/chimera_graph-8c4dd2ee32871ced: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

crates/chimera/src/lib.rs:
crates/chimera/src/chimera.rs:
crates/chimera/src/csr.rs:
crates/chimera/src/faults.rs:
crates/chimera/src/generators.rs:
crates/chimera/src/graph.rs:
crates/chimera/src/metrics.rs:
