/root/repo/target/debug/deps/ablation_offline_embedding-ae31641900fcdc9b.d: crates/bench/benches/ablation_offline_embedding.rs

/root/repo/target/debug/deps/ablation_offline_embedding-ae31641900fcdc9b: crates/bench/benches/ablation_offline_embedding.rs

crates/bench/benches/ablation_offline_embedding.rs:
