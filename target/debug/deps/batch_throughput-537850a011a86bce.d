/root/repo/target/debug/deps/batch_throughput-537850a011a86bce.d: crates/bench/src/bin/batch_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_throughput-537850a011a86bce.rmeta: crates/bench/src/bin/batch_throughput.rs Cargo.toml

crates/bench/src/bin/batch_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
