/root/repo/target/debug/deps/proptest-0ca7091d11e99388.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0ca7091d11e99388.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0ca7091d11e99388.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
