/root/repo/target/debug/deps/annealer_sampling-7b0ab1ec5eee6ddd.d: crates/bench/benches/annealer_sampling.rs

/root/repo/target/debug/deps/annealer_sampling-7b0ab1ec5eee6ddd: crates/bench/benches/annealer_sampling.rs

crates/bench/benches/annealer_sampling.rs:
