/root/repo/target/debug/deps/aspen_model-7d314f119fb902ed.d: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

/root/repo/target/debug/deps/libaspen_model-7d314f119fb902ed.rlib: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

/root/repo/target/debug/deps/libaspen_model-7d314f119fb902ed.rmeta: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

crates/aspen/src/lib.rs:
crates/aspen/src/application.rs:
crates/aspen/src/ast.rs:
crates/aspen/src/builtin.rs:
crates/aspen/src/error.rs:
crates/aspen/src/expr.rs:
crates/aspen/src/lexer.rs:
crates/aspen/src/listings.rs:
crates/aspen/src/machine.rs:
crates/aspen/src/parser.rs:
crates/aspen/src/predict.rs:
