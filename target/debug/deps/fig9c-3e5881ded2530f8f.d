/root/repo/target/debug/deps/fig9c-3e5881ded2530f8f.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/debug/deps/fig9c-3e5881ded2530f8f: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
