/root/repo/target/debug/deps/sx_bench-7db2b04d7ff53e89.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sx_bench-7db2b04d7ff53e89: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
