/root/repo/target/debug/deps/parking_lot-11526e5455a4233a.d: crates/compat/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-11526e5455a4233a.rmeta: crates/compat/parking_lot/src/lib.rs Cargo.toml

crates/compat/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
