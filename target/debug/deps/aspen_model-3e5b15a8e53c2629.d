/root/repo/target/debug/deps/aspen_model-3e5b15a8e53c2629.d: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

/root/repo/target/debug/deps/aspen_model-3e5b15a8e53c2629: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

crates/aspen/src/lib.rs:
crates/aspen/src/application.rs:
crates/aspen/src/ast.rs:
crates/aspen/src/builtin.rs:
crates/aspen/src/error.rs:
crates/aspen/src/expr.rs:
crates/aspen/src/lexer.rs:
crates/aspen/src/listings.rs:
crates/aspen/src/machine.rs:
crates/aspen/src/parser.rs:
crates/aspen/src/predict.rs:
