/root/repo/target/debug/deps/fig5_machine_model-c69e602a8e81e2ff.d: crates/bench/benches/fig5_machine_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_machine_model-c69e602a8e81e2ff.rmeta: crates/bench/benches/fig5_machine_model.rs Cargo.toml

crates/bench/benches/fig5_machine_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
