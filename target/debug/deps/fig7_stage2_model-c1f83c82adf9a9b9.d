/root/repo/target/debug/deps/fig7_stage2_model-c1f83c82adf9a9b9.d: crates/bench/src/bin/fig7_stage2_model.rs

/root/repo/target/debug/deps/fig7_stage2_model-c1f83c82adf9a9b9: crates/bench/src/bin/fig7_stage2_model.rs

crates/bench/src/bin/fig7_stage2_model.rs:
