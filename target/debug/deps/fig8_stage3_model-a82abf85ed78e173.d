/root/repo/target/debug/deps/fig8_stage3_model-a82abf85ed78e173.d: crates/bench/src/bin/fig8_stage3_model.rs

/root/repo/target/debug/deps/fig8_stage3_model-a82abf85ed78e173: crates/bench/src/bin/fig8_stage3_model.rs

crates/bench/src/bin/fig8_stage3_model.rs:
