/root/repo/target/debug/deps/fig9a-982dd1651d6e1f41.d: crates/bench/src/bin/fig9a.rs Cargo.toml

/root/repo/target/debug/deps/libfig9a-982dd1651d6e1f41.rmeta: crates/bench/src/bin/fig9a.rs Cargo.toml

crates/bench/src/bin/fig9a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
