/root/repo/target/debug/deps/fig5_machine_model-3c4d5779a5202567.d: crates/bench/benches/fig5_machine_model.rs

/root/repo/target/debug/deps/fig5_machine_model-3c4d5779a5202567: crates/bench/benches/fig5_machine_model.rs

crates/bench/benches/fig5_machine_model.rs:
