/root/repo/target/debug/deps/fig7_stage2_model-8a571c9ac5477450.d: crates/bench/src/bin/fig7_stage2_model.rs

/root/repo/target/debug/deps/fig7_stage2_model-8a571c9ac5477450: crates/bench/src/bin/fig7_stage2_model.rs

crates/bench/src/bin/fig7_stage2_model.rs:
