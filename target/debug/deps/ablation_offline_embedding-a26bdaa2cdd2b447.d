/root/repo/target/debug/deps/ablation_offline_embedding-a26bdaa2cdd2b447.d: crates/bench/benches/ablation_offline_embedding.rs Cargo.toml

/root/repo/target/debug/deps/libablation_offline_embedding-a26bdaa2cdd2b447.rmeta: crates/bench/benches/ablation_offline_embedding.rs Cargo.toml

crates/bench/benches/ablation_offline_embedding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
