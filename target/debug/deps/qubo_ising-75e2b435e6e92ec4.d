/root/repo/target/debug/deps/qubo_ising-75e2b435e6e92ec4.d: crates/qubo/src/lib.rs crates/qubo/src/convert.rs crates/qubo/src/energy.rs crates/qubo/src/ising.rs crates/qubo/src/precision.rs crates/qubo/src/problems/mod.rs crates/qubo/src/problems/coloring.rs crates/qubo/src/problems/maxcut.rs crates/qubo/src/problems/partition.rs crates/qubo/src/problems/vertex_cover.rs crates/qubo/src/qubo.rs

/root/repo/target/debug/deps/qubo_ising-75e2b435e6e92ec4: crates/qubo/src/lib.rs crates/qubo/src/convert.rs crates/qubo/src/energy.rs crates/qubo/src/ising.rs crates/qubo/src/precision.rs crates/qubo/src/problems/mod.rs crates/qubo/src/problems/coloring.rs crates/qubo/src/problems/maxcut.rs crates/qubo/src/problems/partition.rs crates/qubo/src/problems/vertex_cover.rs crates/qubo/src/qubo.rs

crates/qubo/src/lib.rs:
crates/qubo/src/convert.rs:
crates/qubo/src/energy.rs:
crates/qubo/src/ising.rs:
crates/qubo/src/precision.rs:
crates/qubo/src/problems/mod.rs:
crates/qubo/src/problems/coloring.rs:
crates/qubo/src/problems/maxcut.rs:
crates/qubo/src/problems/partition.rs:
crates/qubo/src/problems/vertex_cover.rs:
crates/qubo/src/qubo.rs:
