/root/repo/target/debug/deps/fig5_machine_model-4005958305bbd507.d: crates/bench/src/bin/fig5_machine_model.rs

/root/repo/target/debug/deps/fig5_machine_model-4005958305bbd507: crates/bench/src/bin/fig5_machine_model.rs

crates/bench/src/bin/fig5_machine_model.rs:
