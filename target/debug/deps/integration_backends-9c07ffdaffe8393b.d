/root/repo/target/debug/deps/integration_backends-9c07ffdaffe8393b.d: tests/integration_backends.rs

/root/repo/target/debug/deps/integration_backends-9c07ffdaffe8393b: tests/integration_backends.rs

tests/integration_backends.rs:
