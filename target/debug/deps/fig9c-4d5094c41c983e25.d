/root/repo/target/debug/deps/fig9c-4d5094c41c983e25.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/debug/deps/fig9c-4d5094c41c983e25: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
