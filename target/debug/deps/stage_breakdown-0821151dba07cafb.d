/root/repo/target/debug/deps/stage_breakdown-0821151dba07cafb.d: crates/bench/src/bin/stage_breakdown.rs

/root/repo/target/debug/deps/stage_breakdown-0821151dba07cafb: crates/bench/src/bin/stage_breakdown.rs

crates/bench/src/bin/stage_breakdown.rs:
