/root/repo/target/debug/deps/fig5_machine_model-43ce4cce69a81096.d: crates/bench/benches/fig5_machine_model.rs

/root/repo/target/debug/deps/fig5_machine_model-43ce4cce69a81096: crates/bench/benches/fig5_machine_model.rs

crates/bench/benches/fig5_machine_model.rs:
