/root/repo/target/debug/deps/rand-c6f1bdb4ba4f2cad.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c6f1bdb4ba4f2cad.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c6f1bdb4ba4f2cad.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
