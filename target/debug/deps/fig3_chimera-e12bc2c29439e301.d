/root/repo/target/debug/deps/fig3_chimera-e12bc2c29439e301.d: crates/bench/src/bin/fig3_chimera.rs

/root/repo/target/debug/deps/fig3_chimera-e12bc2c29439e301: crates/bench/src/bin/fig3_chimera.rs

crates/bench/src/bin/fig3_chimera.rs:
