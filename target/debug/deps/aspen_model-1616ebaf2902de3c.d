/root/repo/target/debug/deps/aspen_model-1616ebaf2902de3c.d: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs Cargo.toml

/root/repo/target/debug/deps/libaspen_model-1616ebaf2902de3c.rmeta: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs Cargo.toml

crates/aspen/src/lib.rs:
crates/aspen/src/application.rs:
crates/aspen/src/ast.rs:
crates/aspen/src/builtin.rs:
crates/aspen/src/error.rs:
crates/aspen/src/expr.rs:
crates/aspen/src/lexer.rs:
crates/aspen/src/listings.rs:
crates/aspen/src/machine.rs:
crates/aspen/src/parser.rs:
crates/aspen/src/predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
