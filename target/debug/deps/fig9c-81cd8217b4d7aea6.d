/root/repo/target/debug/deps/fig9c-81cd8217b4d7aea6.d: crates/bench/src/bin/fig9c.rs Cargo.toml

/root/repo/target/debug/deps/libfig9c-81cd8217b4d7aea6.rmeta: crates/bench/src/bin/fig9c.rs Cargo.toml

crates/bench/src/bin/fig9c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
