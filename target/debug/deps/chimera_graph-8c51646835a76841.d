/root/repo/target/debug/deps/chimera_graph-8c51646835a76841.d: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/debug/deps/libchimera_graph-8c51646835a76841.rlib: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/debug/deps/libchimera_graph-8c51646835a76841.rmeta: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

crates/chimera/src/lib.rs:
crates/chimera/src/chimera.rs:
crates/chimera/src/csr.rs:
crates/chimera/src/faults.rs:
crates/chimera/src/generators.rs:
crates/chimera/src/graph.rs:
crates/chimera/src/metrics.rs:
