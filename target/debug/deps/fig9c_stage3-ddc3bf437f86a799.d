/root/repo/target/debug/deps/fig9c_stage3-ddc3bf437f86a799.d: crates/bench/benches/fig9c_stage3.rs Cargo.toml

/root/repo/target/debug/deps/libfig9c_stage3-ddc3bf437f86a799.rmeta: crates/bench/benches/fig9c_stage3.rs Cargo.toml

crates/bench/benches/fig9c_stage3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
