/root/repo/target/debug/deps/minor_embed-1b14ea229d5d0338.d: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

/root/repo/target/debug/deps/libminor_embed-1b14ea229d5d0338.rlib: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

/root/repo/target/debug/deps/libminor_embed-1b14ea229d5d0338.rmeta: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

crates/embedding/src/lib.rs:
crates/embedding/src/clique.rs:
crates/embedding/src/cmr.rs:
crates/embedding/src/dijkstra.rs:
crates/embedding/src/parameter.rs:
crates/embedding/src/types.rs:
crates/embedding/src/verify.rs:
