/root/repo/target/debug/deps/rand-90bdd3a6d07c89d3.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-90bdd3a6d07c89d3.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
