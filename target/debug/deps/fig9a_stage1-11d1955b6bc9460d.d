/root/repo/target/debug/deps/fig9a_stage1-11d1955b6bc9460d.d: crates/bench/benches/fig9a_stage1.rs Cargo.toml

/root/repo/target/debug/deps/libfig9a_stage1-11d1955b6bc9460d.rmeta: crates/bench/benches/fig9a_stage1.rs Cargo.toml

crates/bench/benches/fig9a_stage1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
