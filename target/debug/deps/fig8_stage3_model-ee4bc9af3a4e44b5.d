/root/repo/target/debug/deps/fig8_stage3_model-ee4bc9af3a4e44b5.d: crates/bench/src/bin/fig8_stage3_model.rs

/root/repo/target/debug/deps/fig8_stage3_model-ee4bc9af3a4e44b5: crates/bench/src/bin/fig8_stage3_model.rs

crates/bench/src/bin/fig8_stage3_model.rs:
