/root/repo/target/debug/deps/integration_model_vs_measured-9b18d23c2f6f5187.d: tests/integration_model_vs_measured.rs

/root/repo/target/debug/deps/integration_model_vs_measured-9b18d23c2f6f5187: tests/integration_model_vs_measured.rs

tests/integration_model_vs_measured.rs:
