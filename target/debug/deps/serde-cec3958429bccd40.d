/root/repo/target/debug/deps/serde-cec3958429bccd40.d: crates/compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-cec3958429bccd40.rmeta: crates/compat/serde/src/lib.rs Cargo.toml

crates/compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
