/root/repo/target/debug/deps/integration_model_vs_measured-3e7b45b763c7d6b7.d: tests/integration_model_vs_measured.rs

/root/repo/target/debug/deps/integration_model_vs_measured-3e7b45b763c7d6b7: tests/integration_model_vs_measured.rs

tests/integration_model_vs_measured.rs:
