/root/repo/target/debug/deps/serde-29f771af4a06135a.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-29f771af4a06135a.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-29f771af4a06135a.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
