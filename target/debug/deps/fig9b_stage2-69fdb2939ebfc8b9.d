/root/repo/target/debug/deps/fig9b_stage2-69fdb2939ebfc8b9.d: crates/bench/benches/fig9b_stage2.rs

/root/repo/target/debug/deps/fig9b_stage2-69fdb2939ebfc8b9: crates/bench/benches/fig9b_stage2.rs

crates/bench/benches/fig9b_stage2.rs:
