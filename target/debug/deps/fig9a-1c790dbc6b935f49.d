/root/repo/target/debug/deps/fig9a-1c790dbc6b935f49.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/debug/deps/fig9a-1c790dbc6b935f49: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
