/root/repo/target/debug/deps/annealer_sampling-b85bc2851912a37c.d: crates/bench/benches/annealer_sampling.rs

/root/repo/target/debug/deps/annealer_sampling-b85bc2851912a37c: crates/bench/benches/annealer_sampling.rs

crates/bench/benches/annealer_sampling.rs:
