/root/repo/target/debug/deps/proptest-e1a9c8789cc92b55.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e1a9c8789cc92b55.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
