/root/repo/target/debug/deps/fig6_stage1_model-5c91618505b0dfb7.d: crates/bench/src/bin/fig6_stage1_model.rs

/root/repo/target/debug/deps/fig6_stage1_model-5c91618505b0dfb7: crates/bench/src/bin/fig6_stage1_model.rs

crates/bench/src/bin/fig6_stage1_model.rs:
