/root/repo/target/debug/deps/fig9b-5e1af4a9af90e16f.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/debug/deps/fig9b-5e1af4a9af90e16f: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
