/root/repo/target/debug/deps/fig9c-b604a8e6b47bb331.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/debug/deps/fig9c-b604a8e6b47bb331: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
