/root/repo/target/debug/deps/architectures-b000469675b678e2.d: crates/bench/src/bin/architectures.rs

/root/repo/target/debug/deps/architectures-b000469675b678e2: crates/bench/src/bin/architectures.rs

crates/bench/src/bin/architectures.rs:
