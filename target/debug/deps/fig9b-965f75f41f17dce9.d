/root/repo/target/debug/deps/fig9b-965f75f41f17dce9.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/debug/deps/fig9b-965f75f41f17dce9: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
