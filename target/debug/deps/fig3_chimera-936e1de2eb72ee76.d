/root/repo/target/debug/deps/fig3_chimera-936e1de2eb72ee76.d: crates/bench/src/bin/fig3_chimera.rs

/root/repo/target/debug/deps/fig3_chimera-936e1de2eb72ee76: crates/bench/src/bin/fig3_chimera.rs

crates/bench/src/bin/fig3_chimera.rs:
