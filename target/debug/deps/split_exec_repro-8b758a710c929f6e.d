/root/repo/target/debug/deps/split_exec_repro-8b758a710c929f6e.d: src/lib.rs

/root/repo/target/debug/deps/libsplit_exec_repro-8b758a710c929f6e.rlib: src/lib.rs

/root/repo/target/debug/deps/libsplit_exec_repro-8b758a710c929f6e.rmeta: src/lib.rs

src/lib.rs:
