/root/repo/target/debug/deps/fig9a_stage1-8ad978d5603e7dbb.d: crates/bench/benches/fig9a_stage1.rs

/root/repo/target/debug/deps/fig9a_stage1-8ad978d5603e7dbb: crates/bench/benches/fig9a_stage1.rs

crates/bench/benches/fig9a_stage1.rs:
