/root/repo/target/debug/deps/chimera_graph-c6b1cbc230c555c2.d: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/debug/deps/libchimera_graph-c6b1cbc230c555c2.rlib: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/debug/deps/libchimera_graph-c6b1cbc230c555c2.rmeta: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

crates/chimera/src/lib.rs:
crates/chimera/src/chimera.rs:
crates/chimera/src/csr.rs:
crates/chimera/src/faults.rs:
crates/chimera/src/generators.rs:
crates/chimera/src/graph.rs:
crates/chimera/src/metrics.rs:
