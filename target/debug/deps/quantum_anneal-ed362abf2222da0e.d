/root/repo/target/debug/deps/quantum_anneal-ed362abf2222da0e.d: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

/root/repo/target/debug/deps/libquantum_anneal-ed362abf2222da0e.rlib: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

/root/repo/target/debug/deps/libquantum_anneal-ed362abf2222da0e.rmeta: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

crates/annealer/src/lib.rs:
crates/annealer/src/backend.rs:
crates/annealer/src/pt.rs:
crates/annealer/src/sa.rs:
crates/annealer/src/sampler.rs:
crates/annealer/src/schedule.rs:
crates/annealer/src/stats.rs:
crates/annealer/src/timing.rs:
