/root/repo/target/debug/deps/proptest-afe2d6d2aedd3e4f.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-afe2d6d2aedd3e4f.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
