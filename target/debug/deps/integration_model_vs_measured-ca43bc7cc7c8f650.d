/root/repo/target/debug/deps/integration_model_vs_measured-ca43bc7cc7c8f650.d: tests/integration_model_vs_measured.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_model_vs_measured-ca43bc7cc7c8f650.rmeta: tests/integration_model_vs_measured.rs Cargo.toml

tests/integration_model_vs_measured.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
