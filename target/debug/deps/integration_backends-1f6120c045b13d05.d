/root/repo/target/debug/deps/integration_backends-1f6120c045b13d05.d: tests/integration_backends.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_backends-1f6120c045b13d05.rmeta: tests/integration_backends.rs Cargo.toml

tests/integration_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
