/root/repo/target/debug/deps/minor_embed-6fdae26798d7965d.d: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libminor_embed-6fdae26798d7965d.rmeta: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs Cargo.toml

crates/embedding/src/lib.rs:
crates/embedding/src/clique.rs:
crates/embedding/src/cmr.rs:
crates/embedding/src/dijkstra.rs:
crates/embedding/src/parameter.rs:
crates/embedding/src/types.rs:
crates/embedding/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
