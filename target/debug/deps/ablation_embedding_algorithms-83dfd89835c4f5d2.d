/root/repo/target/debug/deps/ablation_embedding_algorithms-83dfd89835c4f5d2.d: crates/bench/benches/ablation_embedding_algorithms.rs

/root/repo/target/debug/deps/ablation_embedding_algorithms-83dfd89835c4f5d2: crates/bench/benches/ablation_embedding_algorithms.rs

crates/bench/benches/ablation_embedding_algorithms.rs:
