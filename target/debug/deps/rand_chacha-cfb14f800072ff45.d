/root/repo/target/debug/deps/rand_chacha-cfb14f800072ff45.d: crates/compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-cfb14f800072ff45.rmeta: crates/compat/rand_chacha/src/lib.rs Cargo.toml

crates/compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
