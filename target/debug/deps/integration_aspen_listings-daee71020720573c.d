/root/repo/target/debug/deps/integration_aspen_listings-daee71020720573c.d: tests/integration_aspen_listings.rs

/root/repo/target/debug/deps/integration_aspen_listings-daee71020720573c: tests/integration_aspen_listings.rs

tests/integration_aspen_listings.rs:
