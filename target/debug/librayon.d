/root/repo/target/debug/librayon.rlib: /root/repo/crates/compat/rayon/src/lib.rs
