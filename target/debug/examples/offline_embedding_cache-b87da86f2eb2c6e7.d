/root/repo/target/debug/examples/offline_embedding_cache-b87da86f2eb2c6e7.d: examples/offline_embedding_cache.rs

/root/repo/target/debug/examples/offline_embedding_cache-b87da86f2eb2c6e7: examples/offline_embedding_cache.rs

examples/offline_embedding_cache.rs:
