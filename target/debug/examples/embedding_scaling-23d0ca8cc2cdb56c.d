/root/repo/target/debug/examples/embedding_scaling-23d0ca8cc2cdb56c.d: examples/embedding_scaling.rs

/root/repo/target/debug/examples/embedding_scaling-23d0ca8cc2cdb56c: examples/embedding_scaling.rs

examples/embedding_scaling.rs:
