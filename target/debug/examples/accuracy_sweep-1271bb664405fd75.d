/root/repo/target/debug/examples/accuracy_sweep-1271bb664405fd75.d: examples/accuracy_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libaccuracy_sweep-1271bb664405fd75.rmeta: examples/accuracy_sweep.rs Cargo.toml

examples/accuracy_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
