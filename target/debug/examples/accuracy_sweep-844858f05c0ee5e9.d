/root/repo/target/debug/examples/accuracy_sweep-844858f05c0ee5e9.d: examples/accuracy_sweep.rs

/root/repo/target/debug/examples/accuracy_sweep-844858f05c0ee5e9: examples/accuracy_sweep.rs

examples/accuracy_sweep.rs:
