/root/repo/target/debug/examples/offline_embedding_cache-7b48a56d38cbb763.d: examples/offline_embedding_cache.rs

/root/repo/target/debug/examples/offline_embedding_cache-7b48a56d38cbb763: examples/offline_embedding_cache.rs

examples/offline_embedding_cache.rs:
