/root/repo/target/debug/examples/backend_batch-7175623055e0d076.d: examples/backend_batch.rs

/root/repo/target/debug/examples/backend_batch-7175623055e0d076: examples/backend_batch.rs

examples/backend_batch.rs:
