/root/repo/target/debug/examples/maxcut_pipeline-a6f4f3d0e2e12a86.d: examples/maxcut_pipeline.rs

/root/repo/target/debug/examples/maxcut_pipeline-a6f4f3d0e2e12a86: examples/maxcut_pipeline.rs

examples/maxcut_pipeline.rs:
