/root/repo/target/debug/examples/maxcut_pipeline-4e4e60526f43fe76.d: examples/maxcut_pipeline.rs

/root/repo/target/debug/examples/maxcut_pipeline-4e4e60526f43fe76: examples/maxcut_pipeline.rs

examples/maxcut_pipeline.rs:
