/root/repo/target/debug/examples/accuracy_sweep-eec0cee0791a0b4b.d: examples/accuracy_sweep.rs

/root/repo/target/debug/examples/accuracy_sweep-eec0cee0791a0b4b: examples/accuracy_sweep.rs

examples/accuracy_sweep.rs:
