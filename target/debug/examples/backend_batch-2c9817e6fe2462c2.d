/root/repo/target/debug/examples/backend_batch-2c9817e6fe2462c2.d: examples/backend_batch.rs Cargo.toml

/root/repo/target/debug/examples/libbackend_batch-2c9817e6fe2462c2.rmeta: examples/backend_batch.rs Cargo.toml

examples/backend_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
