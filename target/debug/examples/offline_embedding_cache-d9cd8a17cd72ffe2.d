/root/repo/target/debug/examples/offline_embedding_cache-d9cd8a17cd72ffe2.d: examples/offline_embedding_cache.rs Cargo.toml

/root/repo/target/debug/examples/liboffline_embedding_cache-d9cd8a17cd72ffe2.rmeta: examples/offline_embedding_cache.rs Cargo.toml

examples/offline_embedding_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
