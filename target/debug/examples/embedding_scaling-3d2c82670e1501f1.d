/root/repo/target/debug/examples/embedding_scaling-3d2c82670e1501f1.d: examples/embedding_scaling.rs

/root/repo/target/debug/examples/embedding_scaling-3d2c82670e1501f1: examples/embedding_scaling.rs

examples/embedding_scaling.rs:
