/root/repo/target/debug/examples/backend_batch-607478c23ef9a7fa.d: examples/backend_batch.rs

/root/repo/target/debug/examples/backend_batch-607478c23ef9a7fa: examples/backend_batch.rs

examples/backend_batch.rs:
