/root/repo/target/debug/examples/embedding_scaling-afb8baffea6c9829.d: examples/embedding_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libembedding_scaling-afb8baffea6c9829.rmeta: examples/embedding_scaling.rs Cargo.toml

examples/embedding_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
