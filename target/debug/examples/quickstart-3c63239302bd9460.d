/root/repo/target/debug/examples/quickstart-3c63239302bd9460.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3c63239302bd9460: examples/quickstart.rs

examples/quickstart.rs:
