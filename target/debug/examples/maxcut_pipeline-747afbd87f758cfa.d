/root/repo/target/debug/examples/maxcut_pipeline-747afbd87f758cfa.d: examples/maxcut_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libmaxcut_pipeline-747afbd87f758cfa.rmeta: examples/maxcut_pipeline.rs Cargo.toml

examples/maxcut_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
