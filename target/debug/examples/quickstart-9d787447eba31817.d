/root/repo/target/debug/examples/quickstart-9d787447eba31817.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9d787447eba31817: examples/quickstart.rs

examples/quickstart.rs:
