/root/repo/target/release/librayon.rlib: /root/repo/crates/compat/rayon/src/lib.rs
