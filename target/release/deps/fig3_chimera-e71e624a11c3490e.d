/root/repo/target/release/deps/fig3_chimera-e71e624a11c3490e.d: crates/bench/src/bin/fig3_chimera.rs

/root/repo/target/release/deps/fig3_chimera-e71e624a11c3490e: crates/bench/src/bin/fig3_chimera.rs

crates/bench/src/bin/fig3_chimera.rs:
