/root/repo/target/release/deps/sx_bench-c94069d1343412d4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsx_bench-c94069d1343412d4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsx_bench-c94069d1343412d4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
