/root/repo/target/release/deps/quantum_anneal-a2ff7c1a582ea8d6.d: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

/root/repo/target/release/deps/libquantum_anneal-a2ff7c1a582ea8d6.rlib: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

/root/repo/target/release/deps/libquantum_anneal-a2ff7c1a582ea8d6.rmeta: crates/annealer/src/lib.rs crates/annealer/src/backend.rs crates/annealer/src/pt.rs crates/annealer/src/sa.rs crates/annealer/src/sampler.rs crates/annealer/src/schedule.rs crates/annealer/src/stats.rs crates/annealer/src/timing.rs

crates/annealer/src/lib.rs:
crates/annealer/src/backend.rs:
crates/annealer/src/pt.rs:
crates/annealer/src/sa.rs:
crates/annealer/src/sampler.rs:
crates/annealer/src/schedule.rs:
crates/annealer/src/stats.rs:
crates/annealer/src/timing.rs:
