/root/repo/target/release/deps/fig9c-269c9e85dd3bdf29.d: crates/bench/src/bin/fig9c.rs

/root/repo/target/release/deps/fig9c-269c9e85dd3bdf29: crates/bench/src/bin/fig9c.rs

crates/bench/src/bin/fig9c.rs:
