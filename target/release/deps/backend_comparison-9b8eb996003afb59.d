/root/repo/target/release/deps/backend_comparison-9b8eb996003afb59.d: crates/bench/benches/backend_comparison.rs

/root/repo/target/release/deps/backend_comparison-9b8eb996003afb59: crates/bench/benches/backend_comparison.rs

crates/bench/benches/backend_comparison.rs:
