/root/repo/target/release/deps/chimera_graph-113dc85a22aa4569.d: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/release/deps/libchimera_graph-113dc85a22aa4569.rlib: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

/root/repo/target/release/deps/libchimera_graph-113dc85a22aa4569.rmeta: crates/chimera/src/lib.rs crates/chimera/src/chimera.rs crates/chimera/src/csr.rs crates/chimera/src/faults.rs crates/chimera/src/generators.rs crates/chimera/src/graph.rs crates/chimera/src/metrics.rs

crates/chimera/src/lib.rs:
crates/chimera/src/chimera.rs:
crates/chimera/src/csr.rs:
crates/chimera/src/faults.rs:
crates/chimera/src/generators.rs:
crates/chimera/src/graph.rs:
crates/chimera/src/metrics.rs:
