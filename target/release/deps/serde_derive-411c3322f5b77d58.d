/root/repo/target/release/deps/serde_derive-411c3322f5b77d58.d: crates/compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-411c3322f5b77d58.so: crates/compat/serde_derive/src/lib.rs

crates/compat/serde_derive/src/lib.rs:
