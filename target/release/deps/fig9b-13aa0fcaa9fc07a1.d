/root/repo/target/release/deps/fig9b-13aa0fcaa9fc07a1.d: crates/bench/src/bin/fig9b.rs

/root/repo/target/release/deps/fig9b-13aa0fcaa9fc07a1: crates/bench/src/bin/fig9b.rs

crates/bench/src/bin/fig9b.rs:
