/root/repo/target/release/deps/parking_lot-021fcf8e757306bb.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-021fcf8e757306bb.rlib: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-021fcf8e757306bb.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
