/root/repo/target/release/deps/fig7_stage2_model-f08ca67ec92229ba.d: crates/bench/src/bin/fig7_stage2_model.rs

/root/repo/target/release/deps/fig7_stage2_model-f08ca67ec92229ba: crates/bench/src/bin/fig7_stage2_model.rs

crates/bench/src/bin/fig7_stage2_model.rs:
