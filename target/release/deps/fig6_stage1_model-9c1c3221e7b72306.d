/root/repo/target/release/deps/fig6_stage1_model-9c1c3221e7b72306.d: crates/bench/src/bin/fig6_stage1_model.rs

/root/repo/target/release/deps/fig6_stage1_model-9c1c3221e7b72306: crates/bench/src/bin/fig6_stage1_model.rs

crates/bench/src/bin/fig6_stage1_model.rs:
