/root/repo/target/release/deps/fig9a-d4d1584db27f2d05.d: crates/bench/src/bin/fig9a.rs

/root/repo/target/release/deps/fig9a-d4d1584db27f2d05: crates/bench/src/bin/fig9a.rs

crates/bench/src/bin/fig9a.rs:
