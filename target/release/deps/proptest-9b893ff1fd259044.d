/root/repo/target/release/deps/proptest-9b893ff1fd259044.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9b893ff1fd259044.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9b893ff1fd259044.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
