/root/repo/target/release/deps/stage_breakdown-600edddbbfa84316.d: crates/bench/src/bin/stage_breakdown.rs

/root/repo/target/release/deps/stage_breakdown-600edddbbfa84316: crates/bench/src/bin/stage_breakdown.rs

crates/bench/src/bin/stage_breakdown.rs:
