/root/repo/target/release/deps/aspen_model-0ef8a8c981ef7da9.d: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

/root/repo/target/release/deps/libaspen_model-0ef8a8c981ef7da9.rlib: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

/root/repo/target/release/deps/libaspen_model-0ef8a8c981ef7da9.rmeta: crates/aspen/src/lib.rs crates/aspen/src/application.rs crates/aspen/src/ast.rs crates/aspen/src/builtin.rs crates/aspen/src/error.rs crates/aspen/src/expr.rs crates/aspen/src/lexer.rs crates/aspen/src/listings.rs crates/aspen/src/machine.rs crates/aspen/src/parser.rs crates/aspen/src/predict.rs

crates/aspen/src/lib.rs:
crates/aspen/src/application.rs:
crates/aspen/src/ast.rs:
crates/aspen/src/builtin.rs:
crates/aspen/src/error.rs:
crates/aspen/src/expr.rs:
crates/aspen/src/lexer.rs:
crates/aspen/src/listings.rs:
crates/aspen/src/machine.rs:
crates/aspen/src/parser.rs:
crates/aspen/src/predict.rs:
