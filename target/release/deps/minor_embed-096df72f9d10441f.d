/root/repo/target/release/deps/minor_embed-096df72f9d10441f.d: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

/root/repo/target/release/deps/libminor_embed-096df72f9d10441f.rlib: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

/root/repo/target/release/deps/libminor_embed-096df72f9d10441f.rmeta: crates/embedding/src/lib.rs crates/embedding/src/clique.rs crates/embedding/src/cmr.rs crates/embedding/src/dijkstra.rs crates/embedding/src/parameter.rs crates/embedding/src/types.rs crates/embedding/src/verify.rs

crates/embedding/src/lib.rs:
crates/embedding/src/clique.rs:
crates/embedding/src/cmr.rs:
crates/embedding/src/dijkstra.rs:
crates/embedding/src/parameter.rs:
crates/embedding/src/types.rs:
crates/embedding/src/verify.rs:
