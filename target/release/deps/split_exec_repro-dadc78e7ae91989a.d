/root/repo/target/release/deps/split_exec_repro-dadc78e7ae91989a.d: src/lib.rs

/root/repo/target/release/deps/libsplit_exec_repro-dadc78e7ae91989a.rlib: src/lib.rs

/root/repo/target/release/deps/libsplit_exec_repro-dadc78e7ae91989a.rmeta: src/lib.rs

src/lib.rs:
