/root/repo/target/release/deps/serde-c1a8d97d99069525.d: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c1a8d97d99069525.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c1a8d97d99069525.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
