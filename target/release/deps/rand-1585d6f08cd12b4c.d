/root/repo/target/release/deps/rand-1585d6f08cd12b4c.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-1585d6f08cd12b4c.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-1585d6f08cd12b4c.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
