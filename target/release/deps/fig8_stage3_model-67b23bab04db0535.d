/root/repo/target/release/deps/fig8_stage3_model-67b23bab04db0535.d: crates/bench/src/bin/fig8_stage3_model.rs

/root/repo/target/release/deps/fig8_stage3_model-67b23bab04db0535: crates/bench/src/bin/fig8_stage3_model.rs

crates/bench/src/bin/fig8_stage3_model.rs:
