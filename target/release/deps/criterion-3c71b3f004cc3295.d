/root/repo/target/release/deps/criterion-3c71b3f004cc3295.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3c71b3f004cc3295.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3c71b3f004cc3295.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
