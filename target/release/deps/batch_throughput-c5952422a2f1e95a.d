/root/repo/target/release/deps/batch_throughput-c5952422a2f1e95a.d: crates/bench/src/bin/batch_throughput.rs

/root/repo/target/release/deps/batch_throughput-c5952422a2f1e95a: crates/bench/src/bin/batch_throughput.rs

crates/bench/src/bin/batch_throughput.rs:
