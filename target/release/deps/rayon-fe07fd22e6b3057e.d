/root/repo/target/release/deps/rayon-fe07fd22e6b3057e.d: crates/compat/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-fe07fd22e6b3057e.rlib: crates/compat/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-fe07fd22e6b3057e.rmeta: crates/compat/rayon/src/lib.rs

crates/compat/rayon/src/lib.rs:
