/root/repo/target/release/deps/fig5_machine_model-c70f92ead5916e3c.d: crates/bench/src/bin/fig5_machine_model.rs

/root/repo/target/release/deps/fig5_machine_model-c70f92ead5916e3c: crates/bench/src/bin/fig5_machine_model.rs

crates/bench/src/bin/fig5_machine_model.rs:
