/root/repo/target/release/deps/architectures-9985123cb0d56f67.d: crates/bench/src/bin/architectures.rs

/root/repo/target/release/deps/architectures-9985123cb0d56f67: crates/bench/src/bin/architectures.rs

crates/bench/src/bin/architectures.rs:
