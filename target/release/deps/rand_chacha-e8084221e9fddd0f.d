/root/repo/target/release/deps/rand_chacha-e8084221e9fddd0f.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-e8084221e9fddd0f.rlib: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-e8084221e9fddd0f.rmeta: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
