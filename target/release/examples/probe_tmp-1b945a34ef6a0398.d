/root/repo/target/release/examples/probe_tmp-1b945a34ef6a0398.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-1b945a34ef6a0398: examples/probe_tmp.rs

examples/probe_tmp.rs:
