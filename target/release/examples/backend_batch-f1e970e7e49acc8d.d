/root/repo/target/release/examples/backend_batch-f1e970e7e49acc8d.d: examples/backend_batch.rs

/root/repo/target/release/examples/backend_batch-f1e970e7e49acc8d: examples/backend_batch.rs

examples/backend_batch.rs:
