/root/repo/target/release/librand_chacha.rlib: /root/repo/crates/compat/rand/src/lib.rs /root/repo/crates/compat/rand_chacha/src/lib.rs
