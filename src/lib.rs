//! Workspace umbrella for the split-execution reproduction.
//!
//! This root crate carries the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the implementation lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`qubo_ising`] — QUBO/Ising problem layer,
//! * [`chimera_graph`] — hardware-graph substrate,
//! * [`minor_embed`] — minor embedding (the stage-1 bottleneck),
//! * [`quantum_anneal`] — sampler backends (the pluggable stage 2),
//! * [`aspen_model`] — ASPEN-style analytic performance models,
//! * [`split_exec`] — the three-stage pipeline and batch execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aspen_model;
pub use chimera_graph;
pub use minor_embed;
pub use quantum_anneal;
pub use qubo_ising;
pub use split_exec;
