//! A simple undirected graph with adjacency-set storage.
//!
//! This is the working representation used by the problem generators, the
//! minor-embedding algorithms and the hardware-topology code.  Vertices are
//! dense `usize` indices; edges are unordered pairs.  For hot inner loops a
//! graph can be converted to a compressed sparse row form ([`crate::csr`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected simple graph over vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Graph {
    /// Adjacency sets, one per vertex, kept sorted for determinism.
    adjacency: Vec<BTreeSet<usize>>,
    /// Number of edges currently present.
    edge_count: usize,
}

impl Graph {
    /// Create a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Create a graph from an explicit edge list over vertices `0..n`.
    ///
    /// Out-of-range endpoints are ignored; duplicate edges and self loops are
    /// dropped.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            if u < n && v < n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Add a new isolated vertex and return its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adjacency.push(BTreeSet::new());
        self.adjacency.len() - 1
    }

    /// Add an undirected edge.  Self loops are ignored.  Returns `true` if
    /// the edge was newly inserted.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.vertex_count() && v < self.vertex_count(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.vertex_count()
        );
        if u == v {
            return false;
        }
        let inserted = self.adjacency[u].insert(v);
        if inserted {
            self.adjacency[v].insert(u);
            self.edge_count += 1;
        }
        inserted
    }

    /// Remove an edge if present.  Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.vertex_count() || v >= self.vertex_count() {
            return false;
        }
        let removed = self.adjacency[u].remove(&v);
        if removed {
            self.adjacency[v].remove(&u);
            self.edge_count -= 1;
        }
        removed
    }

    /// Remove all edges incident to a vertex (the vertex index remains valid
    /// but isolated).  Used to model hard faults in hardware graphs.
    pub fn isolate_vertex(&mut self, v: usize) {
        if v >= self.vertex_count() {
            return;
        }
        let neighbors: Vec<usize> = self.adjacency[v].iter().copied().collect();
        for u in neighbors {
            self.remove_edge(u, v);
        }
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.vertex_count() && self.adjacency[u].contains(&v)
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Iterate over the neighbors of a vertex in ascending order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[v].iter().copied()
    }

    /// Iterate over all edges as `(u, v)` with `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = usize> {
        0..self.vertex_count()
    }

    /// Vertices with at least one incident edge.
    pub fn non_isolated_vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .filter(|(_, nbrs)| !nbrs.is_empty())
            .map(|(v, _)| v)
    }

    /// Maximum vertex degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Average vertex degree (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.vertex_count() as f64
        }
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// vertex indices to original indices.
    pub fn induced_subgraph(&self, keep: &[usize]) -> (Graph, Vec<usize>) {
        let mut index_of = vec![usize::MAX; self.vertex_count()];
        let mut original = Vec::with_capacity(keep.len());
        for &old in keep {
            if old < self.vertex_count() && index_of[old] == usize::MAX {
                index_of[old] = original.len();
                original.push(old);
            }
        }
        let mut sub = Graph::new(original.len());
        for (new_u, &old_u) in original.iter().enumerate() {
            for old_v in self.neighbors(old_u) {
                let new_v = index_of.get(old_v).copied().unwrap_or(usize::MAX);
                if new_v != usize::MAX && new_u < new_v {
                    sub.add_edge(new_u, new_v);
                }
            }
        }
        (sub, original)
    }

    /// Complement graph (edges become non-edges and vice versa).
    pub fn complement(&self) -> Graph {
        let n = self.vertex_count();
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge not counted twice");
        assert!(g.add_edge(1, 2));
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path_graph(4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_is_sorted_and_unique() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (1, 0)]);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn isolate_vertex_removes_incident_edges() {
        let mut g = path_graph(4);
        g.isolate_vertex(1);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(2, 3));
        let non_isolated: Vec<usize> = g.non_isolated_vertices().collect();
        assert_eq!(non_isolated, vec![2, 3]);
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (sub, original) = g.induced_subgraph(&[0, 1, 4]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(original, vec![0, 1, 4]);
        assert_eq!(sub.edge_count(), 2); // (0,1) and (0,4)
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(0, 2)); // 4 renamed to index 2
    }

    #[test]
    fn induced_subgraph_ignores_duplicates_and_out_of_range() {
        let g = path_graph(3);
        let (sub, original) = g.induced_subgraph(&[1, 1, 99, 2]);
        assert_eq!(original, vec![1, 2]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn complement_of_path() {
        let g = path_graph(3);
        let c = g.complement();
        assert_eq!(c.edge_count(), 1);
        assert!(c.has_edge(0, 2));
    }

    #[test]
    fn from_edges_ignores_out_of_range() {
        let g = Graph::from_edges(2, &[(0, 1), (5, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut g = Graph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn clone_and_eq() {
        let g = path_graph(4);
        let h = g.clone();
        assert_eq!(g, h);
        let mut k = h.clone();
        k.add_edge(0, 3);
        assert_ne!(g, k);
    }
}
