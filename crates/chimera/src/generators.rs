//! Workload graph generators.
//!
//! The paper's evaluation sweeps complete input graphs `K_n` (the worst case
//! for embedding), but real QUBO workloads arrive as sparser structures, so
//! the benchmark harness also exercises Erdős–Rényi, regular-ish, grid,
//! cycle and scale-free-like inputs.  All generators are deterministic in an
//! explicit seed.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Path graph `P_n` (n vertices, n-1 edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Cycle graph `C_n`.
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n > 2 {
        g.add_edge(n - 1, 0);
    }
    g
}

/// Star graph with one hub and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// Two-dimensional grid graph of `rows × cols` vertices.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols);
            }
        }
    }
    g
}

/// Erdős–Rényi random graph `G(n, p)`: each pair is an edge independently
/// with probability `p` (clamped to `[0, 1]`).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let p = p.clamp(0.0, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random graph with exactly `m` edges chosen uniformly without replacement
/// (`G(n, m)` model).  `m` is clamped to the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all_edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    all_edges.shuffle(&mut rng);
    all_edges.truncate(m.min(n * n.saturating_sub(1) / 2));
    Graph::from_edges(n, &all_edges)
}

/// Approximately `d`-regular random graph built by repeated perfect-matching
/// style passes; degrees may deviate by one where parity forces it.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    if n < 2 || d == 0 {
        return g;
    }
    let d = d.min(n - 1);
    // Configuration-model style: repeatedly pair up vertices that still need
    // degree, skipping duplicates/self-loops; a small number of retries keeps
    // the degree sequence close to regular without a full Steger-Wormald
    // implementation.
    for _round in 0..(4 * d) {
        let mut deficient: Vec<usize> = (0..n).filter(|&v| g.degree(v) < d).collect();
        if deficient.len() < 2 {
            break;
        }
        deficient.shuffle(&mut rng);
        for pair in deficient.chunks(2) {
            if let [u, v] = *pair {
                if u != v && !g.has_edge(u, v) && g.degree(u) < d && g.degree(v) < d {
                    g.add_edge(u, v);
                }
            }
        }
    }
    g
}

/// A preferential-attachment (Barabási–Albert style) graph: each new vertex
/// attaches to `m` existing vertices chosen proportionally to degree.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = m.max(1);
    let seed_size = (m + 1).min(n);
    let mut g = complete(seed_size);
    if n <= seed_size {
        return g;
    }
    // Repeated-endpoint list: vertices appear once per unit of degree.
    let mut endpoints: Vec<usize> = g
        .vertices()
        .flat_map(|v| std::iter::repeat_n(v, g.degree(v)))
        .collect();
    for _ in seed_size..n {
        let v = g.add_vertex();
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m.min(v) && guard < 50 * m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                targets.insert(t);
            }
            guard += 1;
        }
        for &t in &targets {
            g.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(10);
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 45);
        assert_eq!(g.max_degree(), 9);
    }

    #[test]
    fn complete_graph_trivial_sizes() {
        assert_eq!(complete(0).vertex_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(complete(2).edge_count(), 1);
    }

    #[test]
    fn path_cycle_star_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(star(5).degree(0), 4);
        // Degenerate cycles do not double-count the closing edge.
        assert_eq!(cycle(2).edge_count(), 1);
        assert_eq!(cycle(1).edge_count(), 0);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        // Horizontal: 3 rows × 3, vertical: 2 × 4.
        assert_eq!(g.edge_count(), 9 + 8);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(20, 1.0, 1).edge_count(), 190);
    }

    #[test]
    fn gnp_is_deterministic_and_roughly_dense() {
        let a = gnp(50, 0.3, 42);
        let b = gnp(50, 0.3, 42);
        assert_eq!(a, b);
        let expected = 0.3 * (50.0 * 49.0 / 2.0);
        let got = a.edge_count() as f64;
        assert!(
            (got - expected).abs() < 0.3 * expected,
            "edge count {got} vs {expected}"
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(30, 100, 7);
        assert_eq!(g.edge_count(), 100);
        let g = gnm(5, 1000, 7);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn random_regular_degrees_are_bounded() {
        let g = random_regular(40, 4, 9);
        assert!(g.max_degree() <= 4);
        let avg = g.average_degree();
        assert!(
            avg > 3.0,
            "average degree {avg} too far from regular target"
        );
    }

    #[test]
    fn random_regular_degenerate_inputs() {
        assert_eq!(random_regular(1, 3, 0).edge_count(), 0);
        assert_eq!(random_regular(10, 0, 0).edge_count(), 0);
    }

    #[test]
    fn preferential_attachment_grows_and_stays_connected_enough() {
        let g = preferential_attachment(60, 2, 5);
        assert_eq!(g.vertex_count(), 60);
        assert!(g.edge_count() >= 60);
        // Hubs should emerge: max degree well above the attachment count.
        assert!(g.max_degree() >= 4);
    }

    #[test]
    fn preferential_attachment_small_n() {
        let g = preferential_attachment(3, 2, 5);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }
}
