//! The D-Wave Chimera hardware topology.
//!
//! A Chimera graph `C(M, N, L)` is an `M × N` grid of unit cells, each cell a
//! complete bipartite graph `K_{L,L}` between a *vertical* side and a
//! *horizontal* side of `L` qubits.  Vertical qubits couple to the vertically
//! adjacent cell, horizontal qubits to the horizontally adjacent cell, in the
//! same within-side position.  For the D-Wave processors modeled in the paper
//! `L = 4`: the D-Wave Two "Vesuvius" is `C(8, 8, 4)` (512 qubits, Fig. 3)
//! and the D-Wave 2X is `C(12, 12, 4)` (1152 qubits).
//!
//! Interior qubits have degree `L + 2 = 6`; qubits on the grid boundary have
//! degree 5, matching the connectivity limits described in Sec. 2.1.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Which side of the unit-cell bipartition a qubit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Couples to the cell above/below (same column).
    Vertical,
    /// Couples to the cell left/right (same row).
    Horizontal,
}

/// Structured coordinate of a qubit inside a Chimera lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChimeraCoord {
    /// Cell row, `0..M`.
    pub row: usize,
    /// Cell column, `0..N`.
    pub col: usize,
    /// Bipartition side within the cell.
    pub side: Side,
    /// Position within the side, `0..L`.
    pub k: usize,
}

/// A Chimera hardware graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chimera {
    m: usize,
    n: usize,
    l: usize,
    graph: Graph,
}

impl Chimera {
    /// Build a pristine (fault-free) `C(m, n, l)` Chimera graph.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(m: usize, n: usize, l: usize) -> Self {
        assert!(
            m > 0 && n > 0 && l > 0,
            "Chimera dimensions must be positive"
        );
        let qubits = Self::expected_qubits(m, n, l);
        let mut graph = Graph::new(qubits);
        for row in 0..m {
            for col in 0..n {
                // Intra-cell K_{L,L}.
                for kv in 0..l {
                    let v = Self::index(m, n, l, row, col, Side::Vertical, kv);
                    for kh in 0..l {
                        let h = Self::index(m, n, l, row, col, Side::Horizontal, kh);
                        graph.add_edge(v, h);
                    }
                }
                // Inter-cell vertical couplers.
                if row + 1 < m {
                    for k in 0..l {
                        let a = Self::index(m, n, l, row, col, Side::Vertical, k);
                        let b = Self::index(m, n, l, row + 1, col, Side::Vertical, k);
                        graph.add_edge(a, b);
                    }
                }
                // Inter-cell horizontal couplers.
                if col + 1 < n {
                    for k in 0..l {
                        let a = Self::index(m, n, l, row, col, Side::Horizontal, k);
                        let b = Self::index(m, n, l, row, col + 1, Side::Horizontal, k);
                        graph.add_edge(a, b);
                    }
                }
            }
        }
        Self { m, n, l, graph }
    }

    /// The D-Wave Two "Vesuvius" topology: `C(8, 8, 4)`, 512 qubits (Fig. 3).
    pub fn dw2_vesuvius() -> Self {
        Self::new(8, 8, 4)
    }

    /// The D-Wave 2X topology: `C(12, 12, 4)`, 1152 qubits.
    pub fn dw2x() -> Self {
        Self::new(12, 12, 4)
    }

    /// Grid rows `M`.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Grid columns `N`.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Qubits per side within a cell (`L`).
    pub fn shore_size(&self) -> usize {
        self.l
    }

    /// Number of physical qubits, `2 * L * M * N` (= `8*M*N` for `L = 4`).
    pub fn qubit_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of physical couplers.
    pub fn coupler_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The underlying hardware graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the hardware graph, used by fault injection.
    pub(crate) fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Consume the topology and return the plain graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Expected qubit count for given dimensions.
    pub fn expected_qubits(m: usize, n: usize, l: usize) -> usize {
        2 * l * m * n
    }

    /// Expected coupler count for given dimensions:
    /// `L^2 * M * N` intra-cell plus `L * ((M-1)*N + M*(N-1))` inter-cell.
    /// For `L = 4` this is the paper's `EG = 4*(2*M*N - M - N) + 16*M*N`.
    pub fn expected_couplers(m: usize, n: usize, l: usize) -> usize {
        l * l * m * n + l * ((m - 1) * n + m * (n - 1))
    }

    /// Linear index of a qubit coordinate.
    pub fn linear_index(&self, coord: ChimeraCoord) -> usize {
        Self::index(
            self.m, self.n, self.l, coord.row, coord.col, coord.side, coord.k,
        )
    }

    /// Structured coordinate of a linear qubit index.
    pub fn coord(&self, index: usize) -> ChimeraCoord {
        assert!(index < self.qubit_count(), "qubit index out of range");
        let per_cell = 2 * self.l;
        let cell = index / per_cell;
        let within = index % per_cell;
        let (side, k) = if within < self.l {
            (Side::Vertical, within)
        } else {
            (Side::Horizontal, within - self.l)
        };
        ChimeraCoord {
            row: cell / self.n,
            col: cell % self.n,
            side,
            k,
        }
    }

    /// All qubit indices belonging to cell `(row, col)`, vertical side first.
    pub fn cell(&self, row: usize, col: usize) -> Vec<usize> {
        assert!(row < self.m && col < self.n, "cell out of range");
        let base = (row * self.n + col) * 2 * self.l;
        (base..base + 2 * self.l).collect()
    }

    fn index(_m: usize, n: usize, l: usize, row: usize, col: usize, side: Side, k: usize) -> usize {
        let side_offset = match side {
            Side::Vertical => 0,
            Side::Horizontal => l,
        };
        (row * n + col) * 2 * l + side_offset + k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vesuvius_dimensions_match_paper_fig3() {
        let c = Chimera::dw2_vesuvius();
        assert_eq!(c.qubit_count(), 512);
        assert_eq!(c.coupler_count(), Chimera::expected_couplers(8, 8, 4));
    }

    #[test]
    fn dw2x_dimensions_match_paper() {
        let c = Chimera::dw2x();
        assert_eq!(c.qubit_count(), 1152);
        // The paper's Stage-1 model: NG = 8*M*N, EG = 4*(2MN - M - N) + 16MN.
        let m = 12.0_f64;
        let n = 12.0_f64;
        let ng = 8.0 * m * n;
        let eg = 4.0 * (2.0 * m * n - m - n) + 16.0 * m * n;
        assert_eq!(c.qubit_count() as f64, ng);
        assert_eq!(c.coupler_count() as f64, eg);
    }

    #[test]
    fn degree_distribution_matches_sec_2_1() {
        // Interior qubits have 6 neighbors, boundary qubits 5 (for L = 4).
        let c = Chimera::new(4, 4, 4);
        let g = c.graph();
        let mut fives = 0;
        let mut sixes = 0;
        for v in g.vertices() {
            match g.degree(v) {
                5 => fives += 1,
                6 => sixes += 1,
                d => panic!("unexpected degree {d} in pristine Chimera"),
            }
        }
        assert!(fives > 0 && sixes > 0);
        // Boundary cells: vertical qubits in top/bottom rows and horizontal
        // qubits in leftmost/rightmost columns lose one inter-cell coupler.
        let expected_fives = 2 * 4 * 4 + 2 * 4 * 4; // 2 rows * N cells * L + 2 cols * M cells * L
        assert_eq!(fives, expected_fives);
        assert_eq!(sixes, c.qubit_count() - expected_fives);
    }

    #[test]
    fn coord_round_trip() {
        let c = Chimera::new(3, 5, 4);
        for idx in 0..c.qubit_count() {
            let coord = c.coord(idx);
            assert_eq!(c.linear_index(coord), idx);
            assert!(coord.row < 3 && coord.col < 5 && coord.k < 4);
        }
    }

    #[test]
    fn cell_contents_are_fully_bipartite() {
        let c = Chimera::new(2, 2, 4);
        let cell = c.cell(1, 1);
        assert_eq!(cell.len(), 8);
        let g = c.graph();
        for &v in &cell[..4] {
            for &h in &cell[4..] {
                assert!(g.has_edge(v, h), "missing intra-cell edge {v}-{h}");
            }
        }
        // No edges within a side.
        for &a in &cell[..4] {
            for &b in &cell[..4] {
                if a != b {
                    assert!(!g.has_edge(a, b));
                }
            }
        }
    }

    #[test]
    fn inter_cell_couplers_connect_same_position() {
        let c = Chimera::new(2, 2, 4);
        let g = c.graph();
        let a = c.linear_index(ChimeraCoord {
            row: 0,
            col: 0,
            side: Side::Vertical,
            k: 2,
        });
        let b = c.linear_index(ChimeraCoord {
            row: 1,
            col: 0,
            side: Side::Vertical,
            k: 2,
        });
        assert!(g.has_edge(a, b));
        let h0 = c.linear_index(ChimeraCoord {
            row: 0,
            col: 0,
            side: Side::Horizontal,
            k: 1,
        });
        let h1 = c.linear_index(ChimeraCoord {
            row: 0,
            col: 1,
            side: Side::Horizontal,
            k: 1,
        });
        assert!(g.has_edge(h0, h1));
        // Different positions are not coupled between cells.
        let b_other = c.linear_index(ChimeraCoord {
            row: 1,
            col: 0,
            side: Side::Vertical,
            k: 3,
        });
        assert!(!g.has_edge(a, b_other));
    }

    #[test]
    fn single_cell_has_no_intercell_edges() {
        let c = Chimera::new(1, 1, 4);
        assert_eq!(c.qubit_count(), 8);
        assert_eq!(c.coupler_count(), 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        Chimera::new(0, 3, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_out_of_range_panics() {
        let c = Chimera::new(1, 1, 4);
        c.coord(8);
    }

    #[test]
    fn expected_counts_scale_quadratically() {
        // Embedding a complete graph on n vertices needs ~n^2 qubits, so the
        // hardware sizes used in the paper bound the largest embeddable
        // complete graph; sanity check the quadratic growth of capacity.
        let small = Chimera::expected_qubits(4, 4, 4);
        let large = Chimera::expected_qubits(8, 8, 4);
        assert_eq!(large, 4 * small);
    }
}
