//! Fabrication-fault modeling for hardware graphs.
//!
//! Real D-Wave processors ship with a small number of inoperable qubits and
//! couplers that are identified during calibration and deactivated (Sec. 2.2
//! of the paper).  Faults break the symmetry of the Chimera lattice and make
//! the minor-embedding problem harder, so the embedding benchmarks exercise
//! both pristine and faulted hardware.

use crate::chimera::Chimera;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A fault specification: which qubits and couplers are inoperable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Indices of dead qubits (all incident couplers are also disabled).
    pub dead_qubits: Vec<usize>,
    /// Dead couplers given as vertex pairs (in addition to those implied by
    /// dead qubits).
    pub dead_couplers: Vec<(usize, usize)>,
}

impl FaultModel {
    /// A fault-free model.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the model contains no faults.
    pub fn is_empty(&self) -> bool {
        self.dead_qubits.is_empty() && self.dead_couplers.is_empty()
    }

    /// Total number of faulty elements.
    pub fn fault_count(&self) -> usize {
        self.dead_qubits.len() + self.dead_couplers.len()
    }

    /// Draw a random fault model for a hardware graph: each qubit fails
    /// independently with probability `qubit_rate` and each coupler with
    /// probability `coupler_rate`.
    ///
    /// Rates are clamped to `[0, 1]`.  The draw is deterministic in `seed`.
    pub fn random(graph: &Graph, qubit_rate: f64, coupler_rate: f64, seed: u64) -> Self {
        let qubit_rate = qubit_rate.clamp(0.0, 1.0);
        let coupler_rate = coupler_rate.clamp(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dead_qubits: Vec<usize> = graph
            .vertices()
            .filter(|_| rng.gen::<f64>() < qubit_rate)
            .collect();
        let dead_couplers: Vec<(usize, usize)> = graph
            .edges()
            .filter(|_| rng.gen::<f64>() < coupler_rate)
            .collect();
        Self {
            dead_qubits,
            dead_couplers,
        }
    }

    /// Draw a fault model with an exact number of dead qubits chosen
    /// uniformly at random (the form used by the hard-fault embedding study
    /// of Klymko, Sullivan & Humble that the paper cites).
    pub fn exact_dead_qubits(graph: &Graph, count: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut qubits: Vec<usize> = graph.vertices().collect();
        qubits.shuffle(&mut rng);
        qubits.truncate(count.min(graph.vertex_count()));
        qubits.sort_unstable();
        Self {
            dead_qubits: qubits,
            dead_couplers: Vec::new(),
        }
    }

    /// Apply the faults to a copy of the given graph: dead qubits are
    /// isolated and dead couplers removed.  Vertex indices are preserved so
    /// that Chimera coordinates remain meaningful.
    pub fn apply(&self, graph: &Graph) -> Graph {
        let mut faulted = graph.clone();
        for &q in &self.dead_qubits {
            faulted.isolate_vertex(q);
        }
        for &(u, v) in &self.dead_couplers {
            faulted.remove_edge(u, v);
        }
        faulted
    }

    /// Convenience: apply the faults to a Chimera topology, returning the
    /// faulted hardware graph plus the set of usable qubits.
    pub fn apply_to_chimera(&self, chimera: &Chimera) -> FaultedHardware {
        let graph = self.apply(chimera.graph());
        let usable: Vec<usize> = graph
            .vertices()
            .filter(|&v| !self.dead_qubits.contains(&v))
            .collect();
        FaultedHardware {
            graph,
            usable_qubits: usable,
            faults: self.clone(),
        }
    }
}

/// A hardware graph with faults applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedHardware {
    /// The hardware graph with faulty elements removed.
    pub graph: Graph,
    /// Qubits that remain usable.
    pub usable_qubits: Vec<usize>,
    /// The fault model that was applied.
    pub faults: FaultModel,
}

impl FaultedHardware {
    /// Fraction of qubits that remain usable.
    pub fn yield_fraction(&self) -> f64 {
        if self.graph.vertex_count() == 0 {
            return 1.0;
        }
        self.usable_qubits.len() as f64 / self.graph.vertex_count() as f64
    }
}

/// Inject faults directly into a Chimera topology (mutating convenience used
/// by tests and examples).
pub fn inject_faults(chimera: &mut Chimera, faults: &FaultModel) {
    let graph = chimera.graph_mut();
    for &q in &faults.dead_qubits {
        graph.isolate_vertex(q);
    }
    for &(u, v) in &faults.dead_couplers {
        graph.remove_edge(u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fault_model_is_identity() {
        let c = Chimera::new(2, 2, 4);
        let f = FaultModel::none();
        assert!(f.is_empty());
        let applied = f.apply(c.graph());
        assert_eq!(&applied, c.graph());
    }

    #[test]
    fn dead_qubit_loses_all_couplers() {
        let c = Chimera::new(2, 2, 4);
        let f = FaultModel {
            dead_qubits: vec![0],
            dead_couplers: vec![],
        };
        let applied = f.apply(c.graph());
        assert_eq!(applied.degree(0), 0);
        assert_eq!(
            applied.edge_count(),
            c.graph().edge_count() - c.graph().degree(0)
        );
    }

    #[test]
    fn dead_coupler_removes_single_edge() {
        let c = Chimera::new(1, 1, 4);
        let (u, v) = c.graph().edges().next().unwrap();
        let f = FaultModel {
            dead_qubits: vec![],
            dead_couplers: vec![(u, v)],
        };
        let applied = f.apply(c.graph());
        assert!(!applied.has_edge(u, v));
        assert_eq!(applied.edge_count(), c.graph().edge_count() - 1);
    }

    #[test]
    fn random_faults_are_deterministic_in_seed() {
        let c = Chimera::new(4, 4, 4);
        let a = FaultModel::random(c.graph(), 0.05, 0.02, 7);
        let b = FaultModel::random(c.graph(), 0.05, 0.02, 7);
        let d = FaultModel::random(c.graph(), 0.05, 0.02, 8);
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn random_fault_rates_are_roughly_respected() {
        let c = Chimera::new(8, 8, 4);
        let f = FaultModel::random(c.graph(), 0.05, 0.0, 123);
        let rate = f.dead_qubits.len() as f64 / c.qubit_count() as f64;
        assert!(rate < 0.15, "qubit fault rate {rate} wildly above nominal");
        assert!(f.dead_couplers.is_empty());
    }

    #[test]
    fn zero_rate_produces_no_faults_and_full_rate_kills_everything() {
        let c = Chimera::new(2, 2, 4);
        let none = FaultModel::random(c.graph(), 0.0, 0.0, 1);
        assert!(none.is_empty());
        let all = FaultModel::random(c.graph(), 1.0, 1.0, 1);
        assert_eq!(all.dead_qubits.len(), c.qubit_count());
        assert_eq!(all.dead_couplers.len(), c.coupler_count());
    }

    #[test]
    fn exact_dead_qubits_count() {
        let c = Chimera::new(4, 4, 4);
        let f = FaultModel::exact_dead_qubits(c.graph(), 10, 3);
        assert_eq!(f.dead_qubits.len(), 10);
        assert_eq!(f.fault_count(), 10);
        // Sorted and unique.
        let mut sorted = f.dead_qubits.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn exact_dead_qubits_clamps_to_graph_size() {
        let c = Chimera::new(1, 1, 4);
        let f = FaultModel::exact_dead_qubits(c.graph(), 1000, 3);
        assert_eq!(f.dead_qubits.len(), 8);
    }

    #[test]
    fn faulted_hardware_yield() {
        let c = Chimera::new(2, 2, 4);
        let f = FaultModel::exact_dead_qubits(c.graph(), 8, 11);
        let hw = f.apply_to_chimera(&c);
        assert_eq!(hw.usable_qubits.len(), c.qubit_count() - 8);
        assert!((hw.yield_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn inject_faults_mutates_topology() {
        let mut c = Chimera::new(2, 2, 4);
        let before = c.coupler_count();
        let f = FaultModel {
            dead_qubits: vec![3],
            dead_couplers: vec![],
        };
        inject_faults(&mut c, &f);
        assert!(c.coupler_count() < before);
        assert_eq!(c.graph().degree(3), 0);
    }
}
