//! Graph metrics: connectivity, shortest paths, components and summary
//! statistics used by the embedding algorithms and the reporting layer.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Distance value representing "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first shortest-path distances (in hops) from `source` to every
/// vertex.  Unreachable vertices get [`UNREACHABLE`].
pub fn bfs_distances(graph: &Graph, source: usize) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.vertex_count()];
    if source >= graph.vertex_count() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for u in graph.neighbors(v) {
            if dist[u] == UNREACHABLE {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components as a label per vertex (labels are `0..k` in order of
/// first discovery) plus the number of components.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.vertex_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for u in graph.neighbors(v) {
                if label[u] == usize::MAX {
                    label[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Whether the graph is connected (vacuously true for fewer than 2 vertices).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.vertex_count() < 2 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Whether the subgraph induced by `vertices` is connected.  Empty sets are
/// considered disconnected (no tree can be formed), singletons connected.
pub fn is_connected_subset(graph: &Graph, vertices: &[usize]) -> bool {
    if vertices.is_empty() {
        return false;
    }
    if vertices.len() == 1 {
        return vertices[0] < graph.vertex_count();
    }
    let member: std::collections::BTreeSet<usize> = vertices.iter().copied().collect();
    if member.iter().any(|&v| v >= graph.vertex_count()) {
        return false;
    }
    let start = *member.iter().next().expect("non-empty");
    let mut seen = std::collections::BTreeSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for u in graph.neighbors(v) {
            if member.contains(&u) && seen.insert(u) {
                queue.push_back(u);
            }
        }
    }
    seen.len() == member.len()
}

/// Graph eccentricity-based diameter (longest shortest path over the largest
/// component).  Returns 0 for graphs with no edges.
pub fn diameter(graph: &Graph) -> u32 {
    let mut best = 0;
    for v in graph.non_isolated_vertices() {
        let dist = bfs_distances(graph, v);
        let ecc = dist
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .copied()
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Summary statistics of a graph, used in reports and figure legends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub average_degree: f64,
    /// Edge density relative to the complete graph.
    pub density: f64,
    /// Number of connected components.
    pub components: usize,
}

/// Compute [`GraphStats`] for a graph.
pub fn stats(graph: &Graph) -> GraphStats {
    let n = graph.vertex_count();
    let degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let max_pairs = if n >= 2 { n * (n - 1) / 2 } else { 0 };
    GraphStats {
        vertices: n,
        edges: graph.edge_count(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        average_degree: graph.average_degree(),
        density: if max_pairs == 0 {
            0.0
        } else {
            graph.edge_count() as f64 / max_pairs as f64
        },
        components: connected_components(graph).1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_and_out_of_range() {
        let mut g = generators::path(3);
        g.add_vertex(); // isolated vertex 3
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], UNREACHABLE);
        let d = bfs_distances(&g, 99);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn components_of_disjoint_paths() {
        let mut g = generators::path(3);
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[a]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connectivity_of_standard_graphs() {
        assert!(is_connected(&generators::complete(6)));
        assert!(is_connected(&generators::cycle(6)));
        assert!(is_connected(&generators::grid(3, 3)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn connected_subset_checks() {
        let g = generators::path(6);
        assert!(is_connected_subset(&g, &[1, 2, 3]));
        assert!(!is_connected_subset(&g, &[0, 2]));
        assert!(is_connected_subset(&g, &[4]));
        assert!(!is_connected_subset(&g, &[]));
        assert!(!is_connected_subset(&g, &[99]));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(5)), 4);
        assert_eq!(diameter(&generators::cycle(6)), 3);
        assert_eq!(diameter(&generators::complete(7)), 1);
        assert_eq!(diameter(&Graph::new(4)), 0);
    }

    #[test]
    fn stats_of_complete_graph() {
        let s = stats(&generators::complete(8));
        assert_eq!(s.vertices, 8);
        assert_eq!(s.edges, 28);
        assert_eq!(s.min_degree, 7);
        assert_eq!(s.max_degree, 7);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = stats(&Graph::new(0));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.components, 0);
    }

    #[test]
    fn chimera_diameter_grows_with_lattice() {
        use crate::chimera::Chimera;
        let small = diameter(Chimera::new(2, 2, 4).graph());
        let large = diameter(Chimera::new(4, 4, 4).graph());
        assert!(large > small);
    }
}
