//! # chimera-graph — hardware-graph substrate
//!
//! Graph data structures and generators used throughout the split-execution
//! reproduction:
//!
//! * [`graph::Graph`] — a deterministic adjacency-set graph with the
//!   operations needed by problem generation and minor embedding.
//! * [`csr::Csr`] — a compressed sparse row view for traversal-heavy inner
//!   loops (embedding search, annealing sweeps).
//! * [`chimera::Chimera`] — the D-Wave Chimera topology `C(M, N, L)`,
//!   including the 512-qubit Vesuvius (`C(8,8,4)`, the paper's Fig. 3) and
//!   the 1152-qubit D-Wave 2X (`C(12,12,4)`).
//! * [`faults::FaultModel`] — fabrication faults (dead qubits/couplers) that
//!   break the Chimera symmetry and harden the embedding problem.
//! * [`generators`] — workload graphs: complete, Erdős–Rényi, grid, cycle,
//!   regular-ish and preferential-attachment inputs.
//! * [`metrics`] — BFS distances, connectivity, diameter and summary stats.
//!
//! ```
//! use chimera_graph::prelude::*;
//!
//! let hw = Chimera::dw2x();
//! assert_eq!(hw.qubit_count(), 1152);
//! let k8 = generators::complete(8);
//! assert!(metrics::is_connected(&k8));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chimera;
pub mod csr;
pub mod faults;
pub mod generators;
pub mod graph;
pub mod metrics;

pub use chimera::{Chimera, ChimeraCoord, Side};
pub use csr::Csr;
pub use faults::{FaultModel, FaultedHardware};
pub use graph::Graph;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::chimera::{Chimera, ChimeraCoord, Side};
    pub use crate::csr::Csr;
    pub use crate::faults::{FaultModel, FaultedHardware};
    pub use crate::generators;
    pub use crate::graph::Graph;
    pub use crate::metrics;
}

#[cfg(test)]
mod proptests {
    use crate::{generators, metrics};
    use proptest::prelude::*;

    proptest! {
        /// The handshake lemma: degree sum is twice the edge count.
        #[test]
        fn edge_count_matches_adjacency(n in 1usize..40, p in 0.0f64..1.0, seed in 0u64..1000) {
            let g = generators::gnp(n, p, seed);
            let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
        }

        /// Component count is bounded below by `n - edges` and above by `n`.
        #[test]
        fn component_lower_bound(n in 1usize..40, p in 0.0f64..0.2, seed in 0u64..1000) {
            let g = generators::gnp(n, p, seed);
            let (_, comps) = metrics::connected_components(&g);
            prop_assert!(comps >= n.saturating_sub(g.edge_count()));
            prop_assert!(comps <= n);
        }

        /// Complete graphs have diameter 1 and the closed-form edge count.
        #[test]
        fn complete_graph_invariants(n in 2usize..30) {
            let g = generators::complete(n);
            prop_assert_eq!(g.edge_count(), n * (n - 1) / 2);
            prop_assert_eq!(metrics::diameter(&g), 1);
        }

        /// Chimera lattices always match the closed-form qubit/coupler counts
        /// and respect the degree bound L + 2.
        #[test]
        fn chimera_counts(m in 1usize..6, n in 1usize..6, l in 1usize..6) {
            let c = crate::chimera::Chimera::new(m, n, l);
            prop_assert_eq!(c.qubit_count(), crate::chimera::Chimera::expected_qubits(m, n, l));
            prop_assert_eq!(c.coupler_count(), crate::chimera::Chimera::expected_couplers(m, n, l));
            prop_assert!(c.graph().max_degree() <= l + 2);
        }

        /// Fault application never increases edges and is idempotent.
        #[test]
        fn fault_application_monotone(seed in 0u64..500, rate in 0.0f64..0.5) {
            let c = crate::chimera::Chimera::new(3, 3, 4);
            let f = crate::faults::FaultModel::random(c.graph(), rate, rate, seed);
            let once = f.apply(c.graph());
            let twice = f.apply(&once);
            prop_assert!(once.edge_count() <= c.graph().edge_count());
            prop_assert_eq!(&once, &twice);
        }

        /// Induced subgraphs never contain edges absent from the parent.
        #[test]
        fn induced_subgraph_is_subgraph(n in 2usize..30, p in 0.0f64..1.0, seed in 0u64..200) {
            let g = generators::gnp(n, p, seed);
            let keep: Vec<usize> = (0..n).step_by(2).collect();
            let (sub, original) = g.induced_subgraph(&keep);
            for (u, v) in sub.edges() {
                prop_assert!(g.has_edge(original[u], original[v]));
            }
        }

        /// CSR conversion preserves degrees exactly.
        #[test]
        fn csr_preserves_degrees(n in 1usize..40, p in 0.0f64..1.0, seed in 0u64..200) {
            let g = generators::gnp(n, p, seed);
            let csr = crate::csr::Csr::from_graph(&g);
            for v in g.vertices() {
                prop_assert_eq!(csr.degree(v), g.degree(v));
            }
        }
    }
}
