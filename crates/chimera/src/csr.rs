//! Compressed sparse row (CSR) adjacency representation.
//!
//! The embedding heuristic and the annealer iterate over neighbor lists in
//! tight inner loops; CSR keeps those lists contiguous in memory, which is
//! the cache-friendly layout recommended for this kind of traversal-heavy
//! workload.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Immutable CSR adjacency structure built from a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    /// Offsets into `targets`; `offsets[v]..offsets[v+1]` are `v`'s neighbors.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, each sorted ascending.
    targets: Vec<u32>,
}

impl Csr {
    /// Build a CSR structure from a graph.
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX` vertices, which is far
    /// beyond any hardware graph considered here.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.vertex_count();
        assert!(
            n <= u32::MAX as usize,
            "graph too large for CSR u32 indices"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for v in 0..n {
            for u in graph.neighbors(v) {
                targets.push(u as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of `v` as a slice.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        &self.targets[start..end]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Whether edge `(u, v)` exists (binary search over `u`'s neighbor list).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Total bytes of adjacency payload (useful for memory accounting in the
    /// performance models).
    pub fn payload_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
    }
}

impl From<&Graph> for Csr {
    fn from(graph: &Graph) -> Self {
        Csr::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn csr_matches_graph_structure() {
        let g = cycle(6);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.vertex_count(), 6);
        assert_eq!(csr.edge_count(), 6);
        for v in 0..6 {
            assert_eq!(csr.degree(v), 2);
            let from_graph: Vec<u32> = g.neighbors(v).map(|x| x as u32).collect();
            assert_eq!(csr.neighbors(v), from_graph.as_slice());
        }
    }

    #[test]
    fn csr_has_edge_agrees_with_graph() {
        let g = cycle(5);
        let csr = Csr::from_graph(&g);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = Graph::new(0);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.vertex_count(), 0);
        assert_eq!(csr.edge_count(), 0);

        let g = Graph::new(3);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(csr.degree(1), 0);
        assert!(csr.neighbors(1).is_empty());
    }

    #[test]
    fn payload_bytes_is_positive_for_nonempty() {
        let csr = Csr::from_graph(&cycle(4));
        assert!(csr.payload_bytes() > 0);
    }

    #[test]
    fn from_reference_conversion() {
        let g = cycle(3);
        let csr: Csr = (&g).into();
        assert_eq!(csr.vertex_count(), 3);
    }
}
