//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`] — a real ChaCha stream cipher core with 8
//! rounds (RFC 8439 state layout), driven as a keystream generator — behind
//! the workspace's `rand` facade traits.  Deterministic in its seed, with a
//! `seed_from_u64` expansion via SplitMix64 matching the facade's
//! [`SeedableRng`] contract.  Bit-compatibility with the real
//! `rand_chacha::ChaCha8Rng` word stream is *not* promised (the real crate
//! has its own buffering order); every consumer in this workspace only
//! requires seed-determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::RngCore;

pub mod rand_core {
    //! Re-exports mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

use rand::SeedableRng;

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, nonce: &[u32; 2], out: &mut [u32; 16]) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce[0];
    state[15] = nonce[1];
    let input = state;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(input.iter())) {
        *o = s.wrapping_add(*i);
    }
}

/// A ChaCha keystream generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        chacha_block(&self.key, self.counter, &self.nonce, &mut self.buffer);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(bytes);
        }
        Self {
            key,
            nonce: [0, 0],
            counter: 0,
            buffer: [0; 16],
            index: 16, // force a refill on first use
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut splitmix = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector, adapted: our core runs 8 rounds, so
        // instead of the published 20-round digest we check the invariants we
        // rely on — determinism and counter separation — plus the 20-round
        // vector with a locally extended round count.
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        let nonce = [0x4a000000u32, 0x00000000];
        let mut a = [0u32; 16];
        let mut b = [0u32; 16];
        chacha_block(&key, 1, &nonce, &mut a);
        chacha_block(&key, 1, &nonce, &mut b);
        assert_eq!(a, b);
        chacha_block(&key, 2, &nonce, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ones: u32 = (0..1_000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 set.
        assert!((30_000..34_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn facade_rng_methods_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..10);
            assert!(i < 10);
        }
    }
}
