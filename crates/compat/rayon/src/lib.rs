//! Offline stand-in for the `rayon` crate.
//!
//! Provides the one idiom the workspace uses — `(0..n).into_par_iter()
//! .map(f).collect::<Vec<_>>()` — with genuine data parallelism: the index
//! range is chunked across `std::thread::available_parallelism()` scoped
//! threads and results are concatenated in index order, so parallel and
//! serial execution produce identical output for pure `f`.
//!
//! This is not a work-stealing pool; each call site pays thread spawn cost.
//! For the sampling workloads here (dozens of multi-millisecond anneals per
//! call) that overhead is noise.  If a future PR needs finer-grained
//! parallelism, swap this facade for the real `rayon` — the call sites
//! already use its API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Run `f` over `range` with ordered results, splitting across threads.
fn par_map_range<T, F>(range: Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = range.end.saturating_sub(range.start);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len.max(1));
    if len <= 1 || workers <= 1 {
        return range.map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    let mut out: Vec<T> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = range.start + w * chunk;
                let hi = (lo + chunk).min(range.end);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon facade worker panicked"));
        }
    });
    out
}

/// Parallel iterator over a `usize` index range.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
}

/// The mapped form of [`ParRange`], ready to collect.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl ParRange {
    /// Apply `f` to every index, preserving order.
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

impl<F> ParRangeMap<F> {
    /// Execute the map in parallel and collect the ordered results.
    pub fn collect<C, T>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromIterator<T>,
    {
        par_map_range(self.range, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (mirrors `rayon`'s trait of the same
/// name; implemented for the index ranges the workspace parallelizes over).
pub trait IntoParallelIterator {
    /// The parallel-iterator form.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon facade join panicked"))
    })
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::join;
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn empty_and_singleton_ranges() {
        let none: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(none.is_empty());
        let one: Vec<usize> = (5..6).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
