//! Offline stand-in for the `rayon` crate.
//!
//! Provides the one idiom the workspace uses — `(0..n).into_par_iter()
//! .map(f).collect::<Vec<_>>()` — with genuine data parallelism: the index
//! range is chunked across `std::thread::available_parallelism()` scoped
//! threads and results are concatenated in index order, so parallel and
//! serial execution produce identical output for pure `f`.
//!
//! This is not a work-stealing pool; each call site pays thread spawn cost.
//! For the sampling workloads here (dozens of multi-millisecond anneals per
//! call) that overhead is noise.  If a future PR needs finer-grained
//! parallelism, swap this facade for the real `rayon` — the call sites
//! already use its API.
//!
//! An explicit worker count is available through the same API real `rayon`
//! uses: [`ThreadPoolBuilder::num_threads`] + [`ThreadPool::install`].
//! `install` scopes the override to the calling thread (a thread-local, as
//! the facade has no persistent pool), so `pool.install(|| range
//! .into_par_iter()...)` runs that map on exactly `num_threads` workers —
//! and `num_threads(1)` degenerates to a plain serial loop on the calling
//! thread, the serial oracle deterministic sweeps compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// current thread; `None` means use `available_parallelism`.
    static INSTALLED_WORKERS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Builds a [`ThreadPool`] with an explicit worker count (mirrors
/// `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `num_threads` workers; `0` means
    /// `available_parallelism` (rayon's convention).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool.  The facade has no spawn-at-build machinery, so
    /// this cannot fail; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`]; never produced by the
/// facade, present for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rayon facade thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle carrying an explicit worker count for parallel maps run under
/// [`ThreadPool::install`].
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The worker count parallel maps under [`Self::install`] use (`0` =
    /// automatic).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's worker count installed for every parallel
    /// map `op` performs on the calling thread.  The previous override is
    /// restored on exit (installs nest).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_WORKERS
            .with(|w| w.replace((self.num_threads > 0).then_some(self.num_threads)));
        // Restore on unwind too: a panicking op must not leak its override
        // into unrelated later work on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                INSTALLED_WORKERS.with(|w| w.set(prev));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

/// Run `f` over `range` with ordered results, splitting across threads.
fn par_map_range<T, F>(range: Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = range.end.saturating_sub(range.start);
    let workers = INSTALLED_WORKERS
        .with(Cell::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(len.max(1));
    if len <= 1 || workers <= 1 {
        return range.map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    let mut out: Vec<T> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = range.start + w * chunk;
                let hi = (lo + chunk).min(range.end);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon facade worker panicked"));
        }
    });
    out
}

/// Parallel iterator over a `usize` index range.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
}

/// The mapped form of [`ParRange`], ready to collect.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl ParRange {
    /// Apply `f` to every index, preserving order.
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

impl<F> ParRangeMap<F> {
    /// Execute the map in parallel and collect the ordered results.
    pub fn collect<C, T>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromIterator<T>,
    {
        par_map_range(self.range, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (mirrors `rayon`'s trait of the same
/// name; implemented for the index ranges the workspace parallelizes over).
pub trait IntoParallelIterator {
    /// The parallel-iterator form.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon facade join panicked"))
    })
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::join;
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn empty_and_singleton_ranges() {
        let none: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(none.is_empty());
        let one: Vec<usize> = (5..6).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn installed_worker_counts_agree_with_serial() {
        let serial: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for workers in [1usize, 2, 3, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .expect("facade build cannot fail");
            let mapped: Vec<usize> =
                pool.install(|| (0..257).into_par_iter().map(|i| i * 3 + 1).collect());
            assert_eq!(mapped, serial, "worker count {workers} changed the output");
        }
    }

    #[test]
    fn install_restores_the_previous_override() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("facade build cannot fail");
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("facade build cannot fail");
        outer.install(|| {
            let nested: Vec<usize> = inner.install(|| (0..16).into_par_iter().map(|i| i).collect());
            assert_eq!(nested.len(), 16);
            // Back on the outer pool's override after the nested install.
            let again: Vec<usize> = (0..16).into_par_iter().map(|i| i + 1).collect();
            assert_eq!(again[15], 16);
        });
    }
}
