//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API surface (locks
//! return guards directly; poisoning is absorbed by taking the inner value),
//! which is all the workspace relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, recovering from poisoning (a panicked holder) by
    /// returning the guard anyway, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
