//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! an API-compatible `serde` facade whose `Serialize`/`Deserialize` traits
//! are blanket-implemented for every type.  The derive macros therefore have
//! nothing to generate: they accept the annotated item and expand to an
//! empty token stream, keeping `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compiling unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Derive `serde::Serialize`.  Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive `serde::Deserialize`.  Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
