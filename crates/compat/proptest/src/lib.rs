//! Offline stand-in for the `proptest` crate.
//!
//! Supports the syntax the workspace's property tests are written in:
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build:
//!
//! * no shrinking — a failing case panics with its deterministic case index
//!   (re-running reproduces it exactly, since the RNG is seeded from the
//!   test's module path),
//! * strategies are plain uniform samplers ([`strategy::Strategy`] over
//!   numeric ranges and [`collection::vec`]), not the full combinator
//!   algebra,
//! * the default case count is 64 (upstream: 256) to keep `cargo test`
//!   fast on the heavier embedding properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The crate-level example necessarily shows `#[test]` inside `proptest!` —
// that is the macro's required syntax, not a runnable unit test.
#![allow(clippy::test_attr_in_doctest)]

pub mod strategy {
    //! Uniform sampling strategies over the shapes used in this workspace.

    use rand::SampleRange;
    use rand_chacha::ChaCha8Rng;

    /// A source of random values for one proptest case.
    pub type TestRng = ChaCha8Rng;

    /// Types that can produce a value per test case.
    pub trait Strategy {
        /// The value produced.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T, R> Strategy for R
    where
        R: Clone + SampleRange<Output = T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.clone().sample_from(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S` and a uniformly
    /// drawn length.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Execution configuration and deterministic RNG construction.

    use super::strategy::TestRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test RNG: seeded from the hash of the test's fully
    /// qualified name, so failures reproduce across runs and machines.
    pub fn rng_for(test_path: &str) -> TestRng {
        let mut hasher = DefaultHasher::new();
        test_path.hash(&mut hasher);
        TestRng::seed_from_u64(hasher.finish())
    }
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property; panics (no shrinking) with the standard message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.  Without
/// shrinking machinery this facade simply `return`s from the case body,
/// which runs inside its own closure per case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest!` block macro: each contained `#[test] fn name(arg in
/// strategy, ...) { body }` becomes a plain `#[test]` running the body over
/// `config.cases` deterministically sampled argument tuples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let run = || {
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed in {}",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled integers respect their range.
        #[test]
        fn ranges_are_respected(n in 1usize..12, x in 0u64..500, f in 0.25f64..0.75) {
            prop_assert!((1..12).contains(&n));
            prop_assert!(x < 500);
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        /// Vec strategy respects element and length bounds.
        #[test]
        fn vec_strategy_bounds(values in collection::vec(0.0f64..20.0, 1..10)) {
            prop_assert!(!values.is_empty() && values.len() < 10);
            prop_assert!(values.iter().all(|v| (0.0..20.0).contains(v)));
        }

        /// prop_assume skips cases without failing them.
        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    proptest! {
        /// The unconfigured form uses the default config.
        #[test]
        fn default_config_form(b in 0u64..2) {
            prop_assert!(b < 2);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("x::y");
        let mut b = crate::test_runner::rng_for("x::y");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..32).map(|_| s.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..32).map(|_| s.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
