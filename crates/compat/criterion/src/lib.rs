//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop:
//! one warm-up iteration, then timed iterations until a small time budget or
//! the configured sample size is exhausted, reporting the mean per-iteration
//! time on stderr.
//!
//! No statistical analysis, HTML reports, or regression detection; the point
//! is that `cargo bench` runs and prints honest relative numbers in an
//! environment without crates.io access.  Bench targets still need
//! `harness = false` in their manifest, exactly as with real criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-target time budget once the warm-up iteration has run.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation for a benchmark (recorded, reported as rate).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: u64,
    mean: Duration,
}

impl Bencher {
    /// Measure `f`: one warm-up call, then timed calls until the budget or
    /// sample cap is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.samples || start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        self.mean = start.elapsed() / iters.max(1) as u32;
    }
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mean = bencher.mean;
    let rate = throughput.map(|t| {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
            Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
        }
    });
    eprintln!(
        "bench: {name:<60} {:>12.3?}/iter{}",
        mean,
        rate.unwrap_or_default()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), &bencher, self.throughput);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), &bencher, self.throughput);
        self
    }

    /// Finish the group (reporting is incremental; this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 100,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report("", name, &bencher, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Define a bench group function running each target against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        c.bench_function("probe", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(5).throughput(Throughput::Elements(2));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    criterion_group!(probe_group, probe);

    #[test]
    fn harness_runs() {
        probe_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
