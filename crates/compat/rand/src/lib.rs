//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this facade provides the
//! subset of the `rand 0.8` API the workspace actually uses:
//!
//! * [`RngCore`] — raw 32/64-bit generation,
//! * [`Rng`] — `gen::<bool>()`, `gen::<f64>()` and `gen_range` over the
//!   integer/float range shapes appearing in the workspace,
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` (the latter expands the
//!   word through SplitMix64 exactly like `rand_core` does),
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! Generators must be *deterministic in their seed* — every stochastic
//! component of the reproduction is seeded — but bit-compatibility with the
//! real `rand` streams is not required and not promised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Raw generation of 32- and 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for the generators provided here).
    type Seed;

    /// Build a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a single `u64`, expanding it with SplitMix64
    /// (the same expansion `rand_core` applies, so distinct small seeds give
    /// well-separated states).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the top bit: for small LCG-like states the low bits are the
        // weakest, and the top bit is uniform for every generator here.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo over a 128-bit draw: bias is < 2^-64, irrelevant for
                // the simulation workloads here.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (self.start as u128 + wide % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as u128 + wide % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used to expand `u64` seeds into full generator states.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Plain generators for callers that don't need a cryptographic stream.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&super::splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen::<bool>() == b.gen::<bool>())
            .count();
        assert!(same < 64);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
        // Full-width range must not overflow.
        let _ = rng.gen_range(0u64..u64::MAX);
    }

    #[test]
    fn bool_draws_are_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
