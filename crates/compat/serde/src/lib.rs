//! Offline stand-in for `serde`.
//!
//! The container building this workspace has no crates.io access, so this
//! facade keeps the `#[derive(Serialize, Deserialize)]` annotations used
//! throughout the workspace compiling without pulling in the real
//! dependency.  `Serialize` and `Deserialize` are marker traits
//! blanket-implemented for every type; the derive macros (re-exported from
//! the sibling `serde_derive` proc-macro crate) expand to nothing.
//!
//! No code in this workspace performs actual serialization; if a future PR
//! needs wire formats, this facade is the seam to replace with the real
//! `serde` (the public names match).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.  The real trait is parameterized over a deserializer lifetime; no
/// workspace code names that parameter, so it is omitted here.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: Vec<f64>,
    }

    fn assert_impls<T: Serialize + Deserialize>(_: &T) {}

    #[test]
    fn derives_compile_and_traits_are_blanket() {
        let p = Probe { a: 1, b: vec![2.0] };
        assert_impls(&p);
        assert_impls(&42u64);
    }
}
