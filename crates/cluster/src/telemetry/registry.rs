//! Named counters, gauges, and histograms sampled on the virtual clock.
//!
//! [`MetricsRegistry`] is the time-series side of the telemetry layer: the
//! engine registers instruments by name once, updates them as events fire,
//! and calls [`MetricsRegistry::tick`] with the virtual clock after each
//! event.  The registry latches gauge values and records `(time, value)`
//! samples at a configurable interval, so a million-event run yields a
//! bounded series instead of a per-event flood.  Histograms are
//! [`StreamingHistogram`] sketches — percentiles without sample retention.
//!
//! Everything is `Vec`-backed and insertion-ordered: no hash-map iteration
//! anywhere (determinism rule D002), so two identical runs serialize
//! byte-identical registries.

use super::sketch::StreamingHistogram;
use crate::json::JsonValue;
use serde::{Deserialize, Serialize};

/// Handle to a registered gauge (index into the registry; `Copy`, cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeId(usize);

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterId(usize);

/// Handle to a registered histogram sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramId(usize);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Gauge {
    name: String,
    current: f64,
    series: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Counter {
    name: String,
    value: u64,
}

/// A registry of named instruments sampled at a fixed virtual-time
/// interval.
///
/// ```
/// use sx_cluster::telemetry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new(1.0); // sample every virtual second
/// let depth = reg.register_gauge("queue_depth");
/// reg.set_gauge(depth, 3.0);
/// reg.tick(2.5); // samples at t = 0.0, 1.0, 2.0
/// assert_eq!(reg.gauge_series("queue_depth").map(|s| s.len()), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    sample_interval: f64,
    next_due: f64,
    gauges: Vec<Gauge>,
    counters: Vec<Counter>,
    histograms: Vec<(String, StreamingHistogram)>,
}

impl MetricsRegistry {
    /// A registry sampling every `sample_interval` virtual seconds.
    ///
    /// # Panics
    /// Panics unless the interval is finite and positive — a zero interval
    /// would sample unboundedly inside a single [`Self::tick`].
    pub fn new(sample_interval: f64) -> Self {
        assert!(
            sample_interval.is_finite() && sample_interval > 0.0,
            "sample interval {sample_interval} must be finite and positive"
        );
        Self {
            sample_interval,
            next_due: 0.0,
            gauges: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// The configured sampling interval in virtual seconds.
    pub fn sample_interval(&self) -> f64 {
        self.sample_interval
    }

    /// Register (or look up) a gauge by name.  Registration is idempotent:
    /// the same name always returns the same handle.
    pub fn register_gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(Gauge {
            name: name.to_string(),
            current: 0.0,
            series: Vec::new(),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a counter by name.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            return CounterId(i);
        }
        self.counters.push(Counter {
            name: name.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a histogram sketch by name (default 1%
    /// relative error).
    pub fn register_histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), StreamingHistogram::default()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Latch a gauge's current value; it is recorded at the next sample
    /// boundary.
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        if let Some(g) = self.gauges.get_mut(id.0) {
            g.current = value;
        }
    }

    /// Add `n` to a counter.
    pub fn inc_counter(&mut self, id: CounterId, n: u64) {
        if let Some(c) = self.counters.get_mut(id.0) {
            c.value += n;
        }
    }

    /// Record one observation into a histogram sketch.
    // sx-lint: hot-root -- fed once per completion event by the dispatch loop
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        if let Some((_, h)) = self.histograms.get_mut(id.0) {
            h.observe(value);
        }
    }

    /// Advance the sampler to virtual time `clock`, recording every latched
    /// gauge at each elapsed sample boundary (`0, Δ, 2Δ, …` for interval
    /// `Δ`).  Call after each simulation event; boundaries are exact
    /// multiples so the series is independent of event spacing.
    pub fn tick(&mut self, clock: f64) {
        while self.next_due <= clock {
            for g in &mut self.gauges {
                // sx-lint: allow(A001) -- sample-series growth is paced by the virtual-time sample interval, not the event rate
                g.series.push((self.next_due, g.current));
            }
            self.next_due += self.sample_interval;
        }
    }

    /// The sampled `(time, value)` series of a gauge, by name.
    pub fn gauge_series(&self, name: &str) -> Option<&[(f64, f64)]> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.series.as_slice())
    }

    /// A counter's current value, by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// A histogram sketch, by name.
    pub fn histogram(&self, name: &str) -> Option<&StreamingHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialize the registry: sampled gauge series, counter totals, and
    /// histogram summaries (count/min/max/mean/p50/p95/p99 + error bound).
    pub fn to_json(&self) -> JsonValue {
        let gauges =
            JsonValue::array(self.gauges.iter().map(|g| {
                JsonValue::object([
                    ("name", JsonValue::from(g.name.as_str())),
                    (
                        "series",
                        JsonValue::array(g.series.iter().map(|&(t, v)| {
                            JsonValue::array([JsonValue::from(t), JsonValue::from(v)])
                        })),
                    ),
                ])
            }));
        let counters = JsonValue::array(self.counters.iter().map(|c| {
            JsonValue::object([
                ("name", JsonValue::from(c.name.as_str())),
                ("value", JsonValue::from(c.value as f64)),
            ])
        }));
        let histograms = JsonValue::array(self.histograms.iter().map(|(name, h)| {
            JsonValue::object([
                ("name", JsonValue::from(name.as_str())),
                ("count", JsonValue::from(h.count() as f64)),
                ("non_finite", JsonValue::from(h.non_finite() as f64)),
                ("min", JsonValue::from(h.min())),
                ("max", JsonValue::from(h.max())),
                ("mean", JsonValue::from(h.mean())),
                ("p50", JsonValue::from(h.p50())),
                ("p95", JsonValue::from(h.p95())),
                ("p99", JsonValue::from(h.p99())),
                ("relative_error", JsonValue::from(h.relative_error_bound())),
            ])
        }));
        JsonValue::object([
            (
                "sample_interval_seconds",
                JsonValue::from(self.sample_interval),
            ),
            ("gauges", gauges),
            ("counters", counters),
            ("histograms", histograms),
        ])
    }
}

/// Handles for the standard instruments the simulation engine feeds when a
/// registry is attached: queue depth, cache hit-rate, per-QPU utilization,
/// per-tenant lane depth, and latency/wait sketches.
#[derive(Debug, Clone)]
pub struct SimSeries {
    /// Dispatch-queue depth gauge.
    pub queue_depth: GaugeId,
    /// Fleet-wide warm-cache hit rate gauge (warm / (warm + cold)).
    pub hit_rate: GaugeId,
    /// Per-QPU utilization gauges (busy seconds / virtual clock).
    pub qpu_utilization: Vec<GaugeId>,
    /// Per-tenant lane depth gauges, indexed by lane.
    pub lane_depth: Vec<GaugeId>,
    /// End-to-end latency sketch (seconds).
    pub latency: HistogramId,
    /// Queueing wait sketch (seconds).
    pub wait: HistogramId,
    /// Events popped from the future-event list.
    pub events: CounterId,
    /// Jobs dispatched to a device.
    pub dispatches: CounterId,
    /// Jobs completed.
    pub completions: CounterId,
}

impl MetricsRegistry {
    /// Register the standard simulation instruments for a fleet of `qpus`
    /// devices and `lanes` tenant lanes.  Idempotent, like all
    /// registration.
    // sx-lint: hot-exempt -- registration runs once per simulation, before the event loop
    pub fn sim_series(&mut self, qpus: usize, lanes: usize) -> SimSeries {
        SimSeries {
            queue_depth: self.register_gauge("queue_depth"),
            hit_rate: self.register_gauge("cache_hit_rate"),
            qpu_utilization: (0..qpus)
                .map(|q| self.register_gauge(&format!("qpu_utilization.q{q}")))
                .collect(),
            lane_depth: (0..lanes)
                .map(|t| self.register_gauge(&format!("lane_depth.t{t}")))
                .collect(),
            latency: self.register_histogram("latency_seconds"),
            wait: self.register_histogram("wait_seconds"),
            events: self.register_counter("events"),
            dispatches: self.register_counter("dispatches"),
            completions: self.register_counter("completions"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = MetricsRegistry::new(1.0);
        let a = reg.register_gauge("depth");
        let b = reg.register_gauge("depth");
        assert_eq!(a, b);
        let c = reg.register_counter("events");
        let d = reg.register_counter("events");
        assert_eq!(c, d);
        let e = reg.register_histogram("latency");
        let f = reg.register_histogram("latency");
        assert_eq!(e, f);
    }

    #[test]
    fn sampler_records_at_exact_boundaries() {
        let mut reg = MetricsRegistry::new(0.5);
        let g = reg.register_gauge("depth");
        reg.set_gauge(g, 2.0);
        reg.tick(0.2); // boundary 0.0
        reg.set_gauge(g, 7.0);
        reg.tick(1.6); // boundaries 0.5, 1.0, 1.5
        let series = reg.gauge_series("depth").expect("registered");
        assert_eq!(
            series,
            &[(0.0, 2.0), (0.5, 7.0), (1.0, 7.0), (1.5, 7.0)],
            "samples land on exact interval multiples with latched values"
        );
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let mut reg = MetricsRegistry::new(1.0);
        let c = reg.register_counter("events");
        reg.inc_counter(c, 3);
        reg.inc_counter(c, 2);
        assert_eq!(reg.counter_value("events"), Some(5));
        let h = reg.register_histogram("latency");
        for i in 1..=100 {
            reg.observe(h, i as f64);
        }
        let sketch = reg.histogram("latency").expect("registered");
        assert_eq!(sketch.count(), 100);
        let p50 = sketch.p50();
        assert!((p50 - 50.0).abs() <= 50.0 * sketch.relative_error_bound() + 1e-9);
    }

    #[test]
    fn to_json_lists_instruments_in_registration_order() {
        let mut reg = MetricsRegistry::new(2.0);
        let g = reg.register_gauge("b_second_registered_first");
        reg.register_gauge("a_registered_second");
        reg.set_gauge(g, 1.5);
        reg.tick(0.0);
        let json = reg.to_json();
        let text = json.to_string();
        let first = text.find("b_second_registered_first").expect("present");
        let second = text.find("a_registered_second").expect("present");
        assert!(first < second, "insertion order, not name order");
        assert!(text.contains("\"sample_interval_seconds\":2"));
    }

    #[test]
    #[should_panic(expected = "sample interval")]
    fn zero_interval_is_rejected() {
        MetricsRegistry::new(0.0);
    }

    #[test]
    fn sim_series_registers_per_device_and_lane_gauges() {
        let mut reg = MetricsRegistry::new(1.0);
        let series = reg.sim_series(3, 2);
        assert_eq!(series.qpu_utilization.len(), 3);
        assert_eq!(series.lane_depth.len(), 2);
        reg.tick(0.0);
        assert!(reg.gauge_series("qpu_utilization.q2").is_some());
        assert!(reg.gauge_series("lane_depth.t1").is_some());
    }
}
