//! Observability for the cluster simulator: trace sinks, a virtual-time
//! metrics registry with streaming quantile sketches, Perfetto export, and
//! host-side engine profiling.
//!
//! The layer is built around one invariant: **telemetry is a pure
//! observer**.  Sinks and registries receive references to engine state and
//! can never mutate it, so a run produces bit-identical results whether
//! observed by a [`NullSink`], a [`VecSink`], a [`PerfettoSink`], or
//! nothing at all — the purity tests in `sim.rs` and
//! `tests/integration_cluster.rs` assert this across seeds and policies.
//!
//! The pieces (each module's docs go deeper):
//!
//! * [`sink`] — the [`TraceSink`] trait and the retention policies
//!   ([`NullSink`], [`VecSink`], [`JsonlSink`]).
//! * [`perfetto`] — [`PerfettoSink`], a Chrome trace-event exporter for
//!   <https://ui.perfetto.dev>.
//! * [`registry`] — [`MetricsRegistry`]: named counters/gauges sampled on
//!   the virtual clock, plus histogram sketches.
//! * [`sketch`] — [`StreamingHistogram`]: mergeable log-bucketed
//!   percentiles with a documented relative-error bound.
//! * [`stopwatch`] — [`HostStopwatch`]/[`EnginePerf`]: wall-clock engine
//!   profiling (the one sanctioned D001 exception; see `lint.allow`).
//!
//! `docs/OBSERVABILITY.md` is the narrative guide.

pub mod perfetto;
pub mod registry;
pub mod sink;
pub mod sketch;
pub mod stopwatch;

pub use perfetto::PerfettoSink;
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry, SimSeries};
pub use sink::{FanoutSink, JsonlSink, NullSink, TraceSink, VecSink};
pub use sketch::StreamingHistogram;
pub use stopwatch::{time_host, EnginePerf, HostStopwatch};
