//! Pluggable trace sinks: retention as a policy, not a default.
//!
//! The engine used to push every [`TraceRecord`] into an unconditionally
//! retained `Vec` — fine for forty jobs, fatal for the ROADMAP's "1M jobs
//! × 1k devices" target.  [`TraceSink`] inverts that: the engine *emits*
//! records and the caller decides what observing them means.
//!
//! * [`NullSink`] — drop everything (the default for large runs).
//! * [`VecSink`] — retain everything (the pre-telemetry behavior, now
//!   opt-in; the legacy [`crate::sim::simulate`] entry points use it so
//!   `SimReport.trace` and every replay/determinism test keep working
//!   unchanged).
//! * [`JsonlSink`] — stream each record as one JSON object per line to any
//!   `io::Write`, so a full trace can go to disk without ever living in
//!   memory.
//! * [`crate::telemetry::PerfettoSink`] — render spans for the Perfetto
//!   UI (its own module).
//!
//! Sinks are **observers**: they receive `&TraceRecord` and cannot touch
//! engine state, so attaching any sink — or none — yields bit-identical
//! `SimReport`s (the telemetry purity tests assert exactly that).

use crate::sim::TraceRecord;
use std::io;

/// An observer of the engine's trace stream.
///
/// `on_record` is called synchronously as each record is produced, with the
/// virtual clock at emission time.  Implementations must not panic on
/// ordinary I/O failure — the engine treats sinks as infallible observers,
/// so sinks that can fail should latch their errors for later inspection
/// (see [`JsonlSink::write_errors`]).
pub trait TraceSink {
    /// Observe one trace record at virtual time `vclock`.
    fn on_record(&mut self, record: &TraceRecord, vclock: f64);

    /// A short stable name for reports and debugging.
    fn name(&self) -> &'static str;
}

/// Drops every record: zero retention, zero cost.  The right default for
/// warehouse-scale runs where percentiles come from
/// [`crate::telemetry::StreamingHistogram`] sketches instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_record(&mut self, _record: &TraceRecord, _vclock: f64) {}

    fn name(&self) -> &'static str {
        "null"
    }
}

/// Retains every record in memory — the pre-telemetry behavior, now
/// opt-in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records observed so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consume the sink, yielding the retained trace.
    pub fn into_trace(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for VecSink {
    // sx-lint: hot-exempt -- retention is this sink's whole policy; NullSink is the perf default
    fn on_record(&mut self, record: &TraceRecord, _vclock: f64) {
        self.records.push(*record);
    }

    fn name(&self) -> &'static str {
        "vec"
    }
}

/// Streams each record as one JSON object per line (JSONL) to any
/// [`io::Write`] — a trace on disk instead of a trace in memory.
///
/// Write failures never reach the engine: they are counted in
/// [`Self::write_errors`] and the *first* failure's [`io::Error`] is
/// latched for later inspection via [`Self::take_error`], while the sink
/// keeps accepting records — an observability failure must not change (or
/// abort) a simulation.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: W,
    lines: usize,
    write_errors: usize,
    /// The first write/flush error observed, latched until taken.  Only
    /// the first: a full disk produces one failure per record, and the
    /// root cause is the earliest one.
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self {
            out,
            lines: 0,
            write_errors: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Records that could not be written (I/O failures, latched not
    /// raised).
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    /// The first latched write/flush failure, if any, leaving the latch
    /// empty.  Callers that care whether the trace actually landed on disk
    /// check this (or [`Self::write_errors`]) after the run; the engine
    /// itself never does.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Write one arbitrary JSON value as its own line, with the same
    /// latched-error discipline as record writes.  This is the framing
    /// seam the flight recorder ([`crate::replay::RecorderSink`]) uses for
    /// its header lines: headers and records share one writer, one line
    /// counter and one error latch.
    pub fn write_value(&mut self, value: &crate::json::JsonValue) {
        match writeln!(self.out, "{value}") {
            Ok(()) => self.lines += 1,
            Err(err) => self.latch(err),
        }
    }

    /// Latch one I/O failure: bump the count, keep the earliest error.
    fn latch(&mut self, err: io::Error) {
        self.write_errors += 1;
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    /// Flush and return the underlying writer, discarding any latched
    /// error (a final-flush failure still counts toward the error total
    /// first).  Use [`Self::finish`] to observe the failure instead.
    pub fn into_inner(mut self) -> W {
        if let Err(err) = self.out.flush() {
            self.latch(err);
        }
        self.out
    }

    /// Flush and dismantle the sink, reporting the first latched failure:
    /// `Ok((writer, lines))` only if every record was written and flushed.
    pub fn finish(mut self) -> Result<(W, usize), io::Error> {
        if let Err(err) = self.out.flush() {
            self.latch(err);
        }
        match self.error.take() {
            Some(err) => Err(err),
            None => Ok((self.out, self.lines)),
        }
    }
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    // sx-lint: hot-exempt -- serializing every record is this sink's whole policy; NullSink is the perf default
    fn on_record(&mut self, record: &TraceRecord, _vclock: f64) {
        let line = record.to_json().to_string();
        match writeln!(self.out, "{line}") {
            Ok(()) => self.lines += 1,
            Err(err) => self.latch(err),
        }
    }

    fn name(&self) -> &'static str {
        "jsonl"
    }
}

/// A tee: forwards every record to two sinks, in order.  Lets one run feed
/// a recorder and a live visualization (or a retained [`VecSink`]) at once
/// without either knowing about the other; nest fanouts for more than two.
pub struct FanoutSink<'a, 'b> {
    first: &'a mut dyn TraceSink,
    second: &'b mut dyn TraceSink,
}

impl<'a, 'b> FanoutSink<'a, 'b> {
    /// Forward to `first`, then `second`.
    pub fn new(first: &'a mut dyn TraceSink, second: &'b mut dyn TraceSink) -> Self {
        Self { first, second }
    }
}

impl TraceSink for FanoutSink<'_, '_> {
    // sx-lint: hot-exempt -- pure forwarding; cost is whatever the wrapped sinks cost
    fn on_record(&mut self, record: &TraceRecord, vclock: f64) {
        self.first.on_record(record, vclock);
        self.second.on_record(record, vclock);
    }

    fn name(&self) -> &'static str {
        "fanout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::json;
    use crate::tenant::TenantId;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Fired(Event {
                time: 0.5,
                seq: 0,
                kind: EventKind::JobArrival { job: 3 },
            }),
            TraceRecord::Dispatched {
                time: 0.5,
                job: 3,
                qpu: 1,
                tenant: TenantId(0),
                warm: true,
                finish: 2.25,
                stage1_seconds: 1.0,
                stage2_seconds: 0.5,
                stage3_seconds: 0.25,
            },
            TraceRecord::Shed {
                time: 0.75,
                job: 4,
                tenant: TenantId(1),
                infeasible: true,
            },
            TraceRecord::Deferred {
                time: 0.8,
                job: 5,
                until: 1.9,
            },
            TraceRecord::Rejected { time: 1.0, job: 6 },
        ]
    }

    #[test]
    fn vec_sink_retains_in_order_and_null_sink_drops() {
        let records = sample_records();
        let mut vec_sink = VecSink::new();
        let mut null_sink = NullSink;
        for (i, r) in records.iter().enumerate() {
            vec_sink.on_record(r, i as f64);
            null_sink.on_record(r, i as f64);
        }
        assert_eq!(vec_sink.records(), records.as_slice());
        assert_eq!(vec_sink.into_trace(), records);
        assert_eq!(vec_sink_name(), "vec");
    }

    fn vec_sink_name() -> &'static str {
        VecSink::new().name()
    }

    #[test]
    fn jsonl_lines_parse_under_the_real_json_parser() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for (i, r) in sample_records().iter().enumerate() {
            sink.on_record(r, i as f64);
        }
        assert_eq!(sink.lines(), 5);
        assert_eq!(sink.write_errors(), 0);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let kinds: Vec<String> = lines
            .iter()
            .map(|line| {
                let value = json::parse(line).expect("every JSONL line is valid JSON");
                match value.get("kind") {
                    Some(json::JsonValue::Str(s)) => s.clone(),
                    other => panic!("missing kind: {other:?}"),
                }
            })
            .collect();
        assert_eq!(
            kinds,
            ["fired", "dispatched", "shed", "deferred", "rejected"]
        );
    }

    #[test]
    fn fanout_forwards_to_both_sinks_in_order() {
        let records = sample_records();
        let mut left = VecSink::new();
        let mut right = VecSink::new();
        {
            let mut tee = FanoutSink::new(&mut left, &mut right);
            assert_eq!(tee.name(), "fanout");
            for (i, r) in records.iter().enumerate() {
                tee.on_record(r, i as f64);
            }
        }
        assert_eq!(left.records(), records.as_slice());
        assert_eq!(right.records(), records.as_slice());
    }

    #[test]
    fn write_value_shares_the_line_counter_and_error_latch() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        sink.write_value(&json::JsonValue::object([(
            "schema",
            json::JsonValue::from("test/v1"),
        )]));
        sink.on_record(&sample_records()[0], 0.0);
        assert_eq!(sink.lines(), 2, "headers and records share one counter");
        let (bytes, lines) = sink.finish().expect("clean run");
        assert_eq!(lines, 2);
        let text = String::from_utf8(bytes).expect("utf8");
        let mut parsed = text.lines().map(|l| json::parse(l).expect("valid"));
        assert!(parsed.next().expect("header").get("schema").is_some());
        assert!(parsed.next().expect("record").get("kind").is_some());

        struct FailingWriter;
        impl io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut bad = JsonlSink::new(FailingWriter);
        bad.write_value(&json::JsonValue::Null);
        assert_eq!(bad.write_errors(), 1, "header failures latch like records");
        assert!(bad.take_error().is_some());
    }

    #[test]
    fn jsonl_write_failures_are_latched_not_raised() {
        struct FailingWriter;
        impl io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let mut sink = JsonlSink::new(FailingWriter);
        for r in sample_records() {
            sink.on_record(&r, 0.0);
        }
        assert_eq!(sink.lines(), 0);
        assert_eq!(sink.write_errors(), 5, "errors latch; nothing panics");
        // The first error's io::Error is latched and can be taken exactly
        // once; the count is unaffected.
        let err = sink.take_error().expect("first failure is latched");
        assert_eq!(err.to_string(), "disk full");
        assert!(sink.take_error().is_none(), "the latch empties on take");
        assert_eq!(sink.write_errors(), 5);
    }

    #[test]
    fn jsonl_finish_reports_the_first_failure() {
        #[derive(Debug)]
        struct FailingWriter;
        impl io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("flush failed"))
            }
        }
        // A clean run finishes Ok with the line count.
        let mut ok_sink = JsonlSink::new(Vec::<u8>::new());
        for r in sample_records() {
            ok_sink.on_record(&r, 0.0);
        }
        let (bytes, lines) = ok_sink.finish().expect("clean run");
        assert_eq!(lines, 5);
        assert!(!bytes.is_empty());
        // A failed run reports the *earliest* error — the write failure,
        // not the flush failure that follows it.
        let mut bad_sink = JsonlSink::new(FailingWriter);
        bad_sink.on_record(&sample_records()[0], 0.0);
        let err = bad_sink.finish().expect_err("failures must surface");
        assert_eq!(err.to_string(), "disk full");
        // A flush-only failure surfaces too.
        let empty_sink = JsonlSink::new(FailingWriter);
        let err = empty_sink.finish().expect_err("flush failure surfaces");
        assert_eq!(err.to_string(), "flush failed");
    }
}
