//! Pluggable trace sinks: retention as a policy, not a default.
//!
//! The engine used to push every [`TraceRecord`] into an unconditionally
//! retained `Vec` — fine for forty jobs, fatal for the ROADMAP's "1M jobs
//! × 1k devices" target.  [`TraceSink`] inverts that: the engine *emits*
//! records and the caller decides what observing them means.
//!
//! * [`NullSink`] — drop everything (the default for large runs).
//! * [`VecSink`] — retain everything (the pre-telemetry behavior, now
//!   opt-in; the legacy [`crate::sim::simulate`] entry points use it so
//!   `SimReport.trace` and every replay/determinism test keep working
//!   unchanged).
//! * [`JsonlSink`] — stream each record as one JSON object per line to any
//!   `io::Write`, so a full trace can go to disk without ever living in
//!   memory.
//! * [`crate::telemetry::PerfettoSink`] — render spans for the Perfetto
//!   UI (its own module).
//!
//! Sinks are **observers**: they receive `&TraceRecord` and cannot touch
//! engine state, so attaching any sink — or none — yields bit-identical
//! `SimReport`s (the telemetry purity tests assert exactly that).

use crate::sim::TraceRecord;
use std::io;

/// An observer of the engine's trace stream.
///
/// `on_record` is called synchronously as each record is produced, with the
/// virtual clock at emission time.  Implementations must not panic on
/// ordinary I/O failure — the engine treats sinks as infallible observers,
/// so sinks that can fail should latch their errors for later inspection
/// (see [`JsonlSink::write_errors`]).
pub trait TraceSink {
    /// Observe one trace record at virtual time `vclock`.
    fn on_record(&mut self, record: &TraceRecord, vclock: f64);

    /// A short stable name for reports and debugging.
    fn name(&self) -> &'static str;
}

/// Drops every record: zero retention, zero cost.  The right default for
/// warehouse-scale runs where percentiles come from
/// [`crate::telemetry::StreamingHistogram`] sketches instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_record(&mut self, _record: &TraceRecord, _vclock: f64) {}

    fn name(&self) -> &'static str {
        "null"
    }
}

/// Retains every record in memory — the pre-telemetry behavior, now
/// opt-in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records observed so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consume the sink, yielding the retained trace.
    pub fn into_trace(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for VecSink {
    fn on_record(&mut self, record: &TraceRecord, _vclock: f64) {
        self.records.push(*record);
    }

    fn name(&self) -> &'static str {
        "vec"
    }
}

/// Streams each record as one JSON object per line (JSONL) to any
/// [`io::Write`] — a trace on disk instead of a trace in memory.
///
/// Write failures never reach the engine: they are counted in
/// [`Self::write_errors`] and the sink keeps accepting records, because an
/// observability failure must not change (or abort) a simulation.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: W,
    lines: usize,
    write_errors: usize,
}

impl<W: io::Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self {
            out,
            lines: 0,
            write_errors: 0,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Records that could not be written (I/O failures, latched not
    /// raised).
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        // A final-flush failure is just one more latched error; the writer
        // is being handed back either way.
        if self.out.flush().is_err() {
            self.write_errors += 1;
        }
        self.out
    }
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    fn on_record(&mut self, record: &TraceRecord, _vclock: f64) {
        let line = record.to_json().to_string();
        match writeln!(self.out, "{line}") {
            Ok(()) => self.lines += 1,
            Err(_) => self.write_errors += 1,
        }
    }

    fn name(&self) -> &'static str {
        "jsonl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::json;
    use crate::tenant::TenantId;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Fired(Event {
                time: 0.5,
                seq: 0,
                kind: EventKind::JobArrival { job: 3 },
            }),
            TraceRecord::Dispatched {
                time: 0.5,
                job: 3,
                qpu: 1,
                tenant: TenantId(0),
                warm: true,
                finish: 2.25,
                stage1_seconds: 1.0,
                stage2_seconds: 0.5,
                stage3_seconds: 0.25,
            },
            TraceRecord::Shed {
                time: 0.75,
                job: 4,
                tenant: TenantId(1),
                infeasible: true,
            },
            TraceRecord::Deferred {
                time: 0.8,
                job: 5,
                until: 1.9,
            },
            TraceRecord::Rejected { time: 1.0, job: 6 },
        ]
    }

    #[test]
    fn vec_sink_retains_in_order_and_null_sink_drops() {
        let records = sample_records();
        let mut vec_sink = VecSink::new();
        let mut null_sink = NullSink;
        for (i, r) in records.iter().enumerate() {
            vec_sink.on_record(r, i as f64);
            null_sink.on_record(r, i as f64);
        }
        assert_eq!(vec_sink.records(), records.as_slice());
        assert_eq!(vec_sink.into_trace(), records);
        assert_eq!(vec_sink_name(), "vec");
    }

    fn vec_sink_name() -> &'static str {
        VecSink::new().name()
    }

    #[test]
    fn jsonl_lines_parse_under_the_real_json_parser() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for (i, r) in sample_records().iter().enumerate() {
            sink.on_record(r, i as f64);
        }
        assert_eq!(sink.lines(), 5);
        assert_eq!(sink.write_errors(), 0);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let kinds: Vec<String> = lines
            .iter()
            .map(|line| {
                let value = json::parse(line).expect("every JSONL line is valid JSON");
                match value.get("kind") {
                    Some(json::JsonValue::Str(s)) => s.clone(),
                    other => panic!("missing kind: {other:?}"),
                }
            })
            .collect();
        assert_eq!(
            kinds,
            ["fired", "dispatched", "shed", "deferred", "rejected"]
        );
    }

    #[test]
    fn jsonl_write_failures_are_latched_not_raised() {
        struct FailingWriter;
        impl io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let mut sink = JsonlSink::new(FailingWriter);
        for r in sample_records() {
            sink.on_record(&r, 0.0);
        }
        assert_eq!(sink.lines(), 0);
        assert_eq!(sink.write_errors(), 5, "errors latch; nothing panics");
    }
}
