//! Host-side wall-clock profiling of the engine itself.
//!
//! Everything else in this crate runs on the virtual clock — rule D001
//! (`docs/LINTING.md`) bans wall clocks from simulator code precisely so a
//! run is a pure function of its inputs.  This module is the one sanctioned
//! exception, carried in `lint.allow`: it measures *the simulator*, never
//! the simulated world.  Wall-clock readings taken here must never feed
//! back into simulation state; they exist only to answer "how fast does the
//! engine run on this host" (events/sec, jobs/sec, ns per dispatch-loop
//! event) for the `BENCH_cluster.json` perf trajectory.

use std::time::Instant;

/// A wall-clock stopwatch for profiling engine phases.
#[derive(Debug, Clone, Copy)]
pub struct HostStopwatch {
    start: Instant,
}

impl HostStopwatch {
    /// Start timing now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Wall-clock seconds elapsed since [`Self::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Run `f`, returning its result and the wall-clock seconds it took —
/// the telemetry twin of `split_exec::timing::timed`.
pub fn time_host<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = HostStopwatch::start();
    let out = f();
    (out, sw.elapsed_seconds())
}

/// Host-side performance of one engine run: wall time plus the event and
/// job counts needed to derive throughput.  Derived rates answer `0.0`
/// rather than NaN/∞ on degenerate runs (zero events or zero wall time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnginePerf {
    /// Wall-clock seconds the run took on the host.
    pub wall_seconds: f64,
    /// Events popped from the future-event list.
    pub events: usize,
    /// Jobs completed.
    pub jobs: usize,
}

impl EnginePerf {
    /// Simulation events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.jobs as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Wall-clock nanoseconds per dispatch-loop event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events > 0 {
            self.wall_seconds * 1e9 / self.events as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone_and_time_host_returns_the_value() {
        let sw = HostStopwatch::start();
        let (value, seconds) = time_host(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
        assert!(sw.elapsed_seconds() >= seconds);
    }

    #[test]
    fn engine_perf_rates_are_nan_free_on_degenerate_runs() {
        let zero = EnginePerf {
            wall_seconds: 0.0,
            events: 0,
            jobs: 0,
        };
        assert_eq!(zero.events_per_sec(), 0.0);
        assert_eq!(zero.jobs_per_sec(), 0.0);
        assert_eq!(zero.ns_per_event(), 0.0);

        let perf = EnginePerf {
            wall_seconds: 2.0,
            events: 1_000_000,
            jobs: 500,
        };
        assert_eq!(perf.events_per_sec(), 500_000.0);
        assert_eq!(perf.jobs_per_sec(), 250.0);
        assert_eq!(perf.ns_per_event(), 2000.0);
    }
}
