//! A mergeable log-bucketed streaming quantile sketch.
//!
//! [`StreamingHistogram`] answers latency-percentile queries without
//! retaining the samples: observations land in geometrically spaced
//! buckets (`[γⁱ, γⁱ⁺¹)` for growth factor γ), so a quantile query returns
//! the midpoint of the bucket holding the rank-`q` sample.  The midpoint of
//! a γ-wide bucket is within `(γ − 1) / 2` *relative* error of every value
//! in the bucket, which is the sketch's documented accuracy contract (see
//! [`StreamingHistogram::relative_error_bound`] and
//! `docs/OBSERVABILITY.md`): for any `q`, `quantile(q)` is within that
//! relative error of the exact nearest-rank percentile.
//!
//! This is the first concrete step on the ROADMAP's warehouse-scale item:
//! a 1M-job run needs percentiles, not a million retained `JobRecord`s.
//! Sketches of the same resolution merge losslessly
//! ([`StreamingHistogram::merge`]), so per-shard sketches can be combined
//! into fleet-wide percentiles — the dslab sim-telemetry split (samplers
//! feeding mergeable aggregates) rather than full-record retention.
//!
//! Numeric contract:
//!
//! * **NaN-free:** non-finite observations are counted
//!   ([`StreamingHistogram::non_finite`]) and otherwise ignored;
//!   [`StreamingHistogram::quantile`] never returns NaN, even on an empty
//!   sketch (it returns `0.0`).
//! * Negative values are supported via a mirrored bucket array (lateness
//!   and clock-skewed series stay representable).
//! * Values with magnitude below [`ZERO_CUTOFF`] collapse into an exact
//!   zero bucket, so all-zero populations report exact zeros.
//! * Exact `min`/`max`/`mean` are tracked alongside the buckets, and
//!   quantiles are clamped into `[min, max]`.

use serde::{Deserialize, Serialize};

/// Magnitudes below this collapse into the exact zero bucket.  Virtual
/// times are seconds; no modeled service or wait is anywhere near 1e-12 s,
/// so the cutoff only swallows true zeros and float dust.
pub const ZERO_CUTOFF: f64 = 1e-12;

/// The default relative-error bound (1%), i.e. a bucket growth factor of
/// `γ = 1 + 2 × 0.01 = 1.02`.
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// One sign's worth of geometric buckets: `counts[i]` counts observations
/// whose magnitude falls in bucket `offset + i`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
struct Buckets {
    offset: i64,
    counts: Vec<u64>,
}

impl Buckets {
    // The bucket array grows only when an observation lands in a
    // first-seen magnitude bucket; the array length is logarithmic in the
    // observed value range, so growth stops once the range has been seen
    // and steady-state increments are allocation-free (the alloc-budget
    // test pins this).
    fn increment(&mut self, index: i64) {
        if self.counts.is_empty() {
            self.offset = index;
            // sx-lint: allow(A001) -- first observation ever: one-time growth, bounded by the value range, not the event rate
            self.counts.push(1);
            return;
        }
        if index < self.offset {
            let grow = (self.offset - index) as usize;
            // sx-lint: allow(A001) -- downward range extension: happens at most log_γ(range) times ever, not per event
            let mut counts = vec![0u64; grow + self.counts.len()];
            counts[grow..].copy_from_slice(&self.counts);
            self.counts = counts;
            self.offset = index;
        } else if (index - self.offset) as usize >= self.counts.len() {
            self.counts.resize((index - self.offset) as usize + 1, 0);
        }
        self.counts[(index - self.offset) as usize] += 1;
    }

    fn merge(&mut self, other: &Buckets) {
        for (i, &count) in other.counts.iter().enumerate() {
            if count > 0 {
                let index = other.offset + i as i64;
                self.increment(index);
                // `increment` added 1; add the rest directly.
                let at = (index - self.offset) as usize;
                self.counts[at] += count - 1;
            }
        }
    }
}

/// A mergeable log-bucketed quantile sketch with a documented relative
/// error bound (module docs have the full numeric contract).
///
/// ```
/// use sx_cluster::telemetry::StreamingHistogram;
///
/// let mut sketch = StreamingHistogram::default(); // 1% relative error
/// for i in 1..=1000 {
///     sketch.observe(i as f64);
/// }
/// let p99 = sketch.quantile(0.99);
/// assert!((p99 - 990.0).abs() <= 990.0 * sketch.relative_error_bound());
/// assert_eq!(sketch.count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingHistogram {
    /// Bucket growth factor γ; bucket `i` spans `[γⁱ, γⁱ⁺¹)`.
    gamma: f64,
    /// Precomputed `1 / ln γ` for index computation.
    inv_ln_gamma: f64,
    /// Finite observations recorded.
    count: u64,
    /// Non-finite (NaN/±∞) observations dropped (but counted here).
    non_finite: u64,
    /// Observations with |v| ≤ [`ZERO_CUTOFF`].
    zero_count: u64,
    /// Exact running extremes and sum over finite observations.
    min: f64,
    max: f64,
    sum: f64,
    /// Buckets for positive and (mirrored) negative magnitudes.
    positive: Buckets,
    negative: Buckets,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::with_relative_error(DEFAULT_RELATIVE_ERROR)
    }
}

impl StreamingHistogram {
    /// A sketch whose quantiles are within `relative_error` of the exact
    /// nearest-rank percentile (bucket growth factor
    /// `γ = 1 + 2 × relative_error`).
    ///
    /// # Panics
    /// Panics unless `0 < relative_error < 0.5` — a degenerate resolution
    /// is a configuration bug, not a runtime condition.
    pub fn with_relative_error(relative_error: f64) -> Self {
        assert!(
            relative_error > 0.0 && relative_error < 0.5,
            "relative error {relative_error} out of (0, 0.5)"
        );
        let gamma = 1.0 + 2.0 * relative_error;
        Self {
            gamma,
            inv_ln_gamma: 1.0 / gamma.ln(),
            count: 0,
            non_finite: 0,
            zero_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            positive: Buckets::default(),
            negative: Buckets::default(),
        }
    }

    /// The sketch's accuracy contract: `(γ − 1) / 2`, the maximum relative
    /// distance between a bucket's midpoint and any value in the bucket.
    pub fn relative_error_bound(&self) -> f64 {
        (self.gamma - 1.0) / 2.0
    }

    /// Record one observation.  Non-finite values are counted in
    /// [`Self::non_finite`] and otherwise ignored, so a stray NaN can never
    /// poison the percentiles.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let magnitude = value.abs();
        if magnitude <= ZERO_CUTOFF {
            self.zero_count += 1;
        } else {
            let index = (magnitude.ln() * self.inv_ln_gamma).floor() as i64;
            if value > 0.0 {
                self.positive.increment(index);
            } else {
                self.negative.increment(index);
            }
        }
    }

    /// Finite observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite observations dropped (NaN and ±∞).
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Exact minimum over finite observations (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum over finite observations (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact mean over finite observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The approximate `q`-quantile (`q` clamped into `[0, 1]`): the
    /// midpoint of the bucket holding the exact nearest-rank sample,
    /// clamped into `[min, max]`.  Within
    /// [`Self::relative_error_bound`] × the exact value, and never NaN —
    /// an empty sketch answers `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ⌈q·n⌉-th smallest sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        // Ascending value order: most-negative first (largest mirrored
        // magnitude index), then zeros, then positives ascending.
        for i in (0..self.negative.counts.len()).rev() {
            let count = self.negative.counts[i];
            if count == 0 {
                continue;
            }
            seen += count;
            if seen >= rank {
                let index = self.negative.offset + i as i64;
                return (-self.bucket_midpoint(index)).clamp(self.min, self.max);
            }
        }
        seen += self.zero_count;
        if seen >= rank {
            return 0.0_f64.clamp(self.min, self.max);
        }
        for (i, &count) in self.positive.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            seen += count;
            if seen >= rank {
                let index = self.positive.offset + i as i64;
                return self.bucket_midpoint(index).clamp(self.min, self.max);
            }
        }
        // Unreachable when the counters are consistent; fall back to the
        // exact max rather than panicking in library code.
        self.max
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another sketch of the *same resolution* into this one: bucket
    /// counts add and extremes combine exactly, so quantiles of the merged
    /// sketch equal those of a sketch that observed both streams.  (Only
    /// the running `sum` behind [`Self::mean`] is float-addition-order
    /// sensitive, at ~1 ulp.)
    ///
    /// # Errors
    /// Returns the mismatched γ values when the resolutions differ —
    /// merging different bucket layouts would silently corrupt quantiles.
    pub fn merge(&mut self, other: &StreamingHistogram) -> Result<(), (f64, f64)> {
        if self.gamma != other.gamma {
            return Err((self.gamma, other.gamma));
        }
        self.count += other.count;
        self.non_finite += other.non_finite;
        self.zero_count += other.zero_count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.positive.merge(&other.positive);
        self.negative.merge(&other.negative);
        Ok(())
    }

    /// The midpoint of bucket `index`: `(γⁱ + γⁱ⁺¹) / 2`.
    fn bucket_midpoint(&self, index: i64) -> f64 {
        let low = self.gamma.powi(index as i32);
        low * (1.0 + self.gamma) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile, the yardstick of the accuracy
    /// contract.
    fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_within_bound(sketch: &StreamingHistogram, values: &mut [f64], label: &str) {
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_nearest_rank(values, q);
            let approx = sketch.quantile(q);
            let bound = sketch.relative_error_bound() * exact.abs() + 1e-12;
            assert!(
                (approx - exact).abs() <= bound * (1.0 + 1e-9),
                "{label}: q={q} approx {approx} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn uniform_and_constant_distributions_stay_in_bound() {
        let mut sketch = StreamingHistogram::default();
        let mut values: Vec<f64> = (1..=1000).map(|i| i as f64 / 10.0).collect();
        for &v in &values {
            sketch.observe(v);
        }
        assert_within_bound(&sketch, &mut values, "uniform");

        let mut constant = StreamingHistogram::default();
        for _ in 0..100 {
            constant.observe(42.0);
        }
        assert!((constant.quantile(0.5) - 42.0).abs() <= 42.0 * constant.relative_error_bound());
        // Clamping to exact extremes makes constant populations exact.
        assert_eq!(constant.quantile(0.0), 42.0_f64.min(constant.quantile(0.0)));
        assert_eq!(constant.min(), 42.0);
        assert_eq!(constant.max(), 42.0);
    }

    #[test]
    fn adversarial_distributions_stay_in_bound() {
        // Twelve decades of dynamic range, heavy tails, duplicates.
        let mut spread = StreamingHistogram::default();
        let mut values: Vec<f64> = (0..600)
            .map(|i| 1e-6 * 1.047_f64.powi(i % 500) * (1 + i % 7) as f64)
            .collect();
        for &v in &values {
            spread.observe(v);
        }
        assert_within_bound(&spread, &mut values, "log-spread");

        // A two-point distribution with a massive gap: the sketch must pick
        // the correct side of the gap (nearest-rank, not interpolation).
        let mut gap = StreamingHistogram::default();
        let mut gap_values = Vec::new();
        for i in 0..100 {
            let v = if i < 60 { 1e-3 } else { 1e6 };
            gap.observe(v);
            gap_values.push(v);
        }
        assert_within_bound(&gap, &mut gap_values, "two-point gap");

        // Heavy tail: x ~ i³ with many small duplicates.
        let mut tail = StreamingHistogram::default();
        let mut tail_values: Vec<f64> = (1..=500)
            .map(|i| if i % 5 == 0 { (i * i * i) as f64 } else { 0.5 })
            .collect();
        for &v in &tail_values {
            tail.observe(v);
        }
        assert_within_bound(&tail, &mut tail_values, "heavy tail");
    }

    #[test]
    fn negatives_and_zeros_are_representable() {
        let mut sketch = StreamingHistogram::default();
        let mut values: Vec<f64> = (-50..=50).map(|i| i as f64 * 3.5).collect();
        for &v in &values {
            sketch.observe(v);
        }
        assert_within_bound(&sketch, &mut values, "signed");
        assert_eq!(sketch.min(), -175.0);
        assert_eq!(sketch.max(), 175.0);
        // Median of a symmetric signed population is the exact zero bucket.
        assert_eq!(sketch.quantile(0.5), 0.0);
    }

    #[test]
    fn nan_free_guarantee() {
        let mut sketch = StreamingHistogram::default();
        assert_eq!(sketch.quantile(0.5), 0.0, "empty sketch answers 0.0");
        sketch.observe(f64::NAN);
        sketch.observe(f64::INFINITY);
        sketch.observe(f64::NEG_INFINITY);
        assert_eq!(sketch.count(), 0);
        assert_eq!(sketch.non_finite(), 3);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(!sketch.quantile(q).is_nan());
        }
        sketch.observe(2.0);
        assert_eq!(sketch.count(), 1);
        assert!(!sketch.mean().is_nan());
        assert!((sketch.quantile(0.99) - 2.0).abs() <= 2.0 * sketch.relative_error_bound());
    }

    #[test]
    fn merge_equals_observing_both_streams() {
        let mut left = StreamingHistogram::default();
        let mut right = StreamingHistogram::default();
        let mut both = StreamingHistogram::default();
        for i in 1..=400 {
            let v = (i as f64).powf(1.7) * if i % 2 == 0 { 1.0 } else { 1e-4 };
            if i % 3 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
            both.observe(v);
        }
        left.merge(&right).expect("same resolution");
        // Counts, extremes and every quantile merge losslessly; the running
        // sum can differ by float addition order (~1 ulp), so the mean is
        // compared with a tolerance instead of bitwise.
        assert_eq!(left.count(), both.count());
        assert_eq!(left.min(), both.min());
        assert_eq!(left.max(), both.max());
        assert!((left.mean() - both.mean()).abs() <= 1e-9 * both.mean().abs());
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                left.quantile(q),
                both.quantile(q),
                "merged quantile differs at q={q}"
            );
        }
        // Mismatched resolutions refuse to merge.
        let coarse = StreamingHistogram::with_relative_error(0.05);
        assert!(left.merge(&coarse).is_err());
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut sketch = StreamingHistogram::default();
        for i in 0..300 {
            sketch.observe((i % 17) as f64 * 0.3 + 0.1);
        }
        let qs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        for pair in qs.windows(2) {
            assert!(
                sketch.quantile(pair[1]) >= sketch.quantile(pair[0]),
                "quantile must be monotone in q"
            );
        }
    }

    #[test]
    #[should_panic(expected = "relative error")]
    fn degenerate_resolution_is_rejected() {
        StreamingHistogram::with_relative_error(0.0);
    }
}
