//! Chrome trace-event / Perfetto export of the simulation trace.
//!
//! [`PerfettoSink`] renders the engine's [`TraceRecord`] stream as a
//! Chrome trace-event JSON document (`{"traceEvents": [...]}`), the format
//! <https://ui.perfetto.dev> and `chrome://tracing` open directly:
//!
//! * **Per-device tracks** (process `fleet`, one thread per QPU): a
//!   complete-event span per served job covering its full service window.
//! * **Per-job lanes** (process `jobs`, one thread per job id): a `queued`
//!   span from first arrival to dispatch, then `embed` → `anneal` →
//!   `readout` spans from the per-stage service breakdown — the paper's
//!   split-execution pipeline made visible per job.
//! * **Instant events** on the job lane for shed / defer / reject
//!   decisions.
//!
//! Timestamps are *virtual* time: the trace-event `ts`/`dur` fields are
//! the simulator's seconds scaled to microseconds, so span geometry is
//! bit-determined by the run and two identical seeds export identical
//! traces.  See `docs/OBSERVABILITY.md` for a walkthrough of opening one.

use super::sink::TraceSink;
use crate::event::EventKind;
use crate::json::JsonValue;
use crate::sim::TraceRecord;

/// Process id used for the per-device tracks.
const PID_FLEET: usize = 1;
/// Process id used for the per-job lanes.
const PID_JOBS: usize = 2;

/// Seconds of virtual time → microseconds of trace-event time.
fn micros(seconds: f64) -> f64 {
    seconds * 1e6
}

/// A [`TraceSink`] that accumulates Chrome trace events; call
/// [`PerfettoSink::finish`] after the run to obtain the JSON document.
///
/// ```
/// use sx_cluster::prelude::*;
/// use sx_cluster::telemetry::PerfettoSink;
/// use split_exec::SplitExecConfig;
///
/// let workload = WorkloadSpec::repeated_topologies(6, 0.5, 7).generate();
/// let fleet = Fleet::new(
///     FleetConfig { qpus: 2, seed: 7, ..FleetConfig::default() },
///     SplitExecConfig::with_seed(7),
/// );
/// let mut sink = PerfettoSink::new();
/// let mut policy = PolicyKind::Fifo.build();
/// let mut admit = AdmitAll;
/// simulate_with_telemetry(
///     fleet, &workload, policy.as_mut(), &mut admit,
///     SimConfig::default(), &mut sink, None,
/// );
/// let doc = sink.finish();
/// assert!(doc.to_string().contains("traceEvents"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfettoSink {
    events: Vec<JsonValue>,
    /// First-seen arrival time per job id (deferred jobs re-fire their
    /// arrival; the queued span starts at the *first* one).
    arrivals: Vec<Option<f64>>,
    /// Whether a thread-name metadata event was emitted for each job lane.
    job_named: Vec<bool>,
    /// Whether a thread-name metadata event was emitted for each device.
    qpu_named: Vec<bool>,
    started: bool,
}

impl PerfettoSink {
    /// An empty exporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trace events accumulated so far (metadata included).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Consume the sink, yielding the Chrome trace-event JSON document.
    pub fn finish(mut self) -> JsonValue {
        self.ensure_processes();
        let events = std::mem::take(&mut self.events);
        JsonValue::object([
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", JsonValue::from("ms")),
        ])
    }

    /// Emit the process-name metadata once, before any real event.
    fn ensure_processes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let fleet = Self::process_meta(PID_FLEET, "fleet");
        let jobs = Self::process_meta(PID_JOBS, "jobs");
        self.events.insert(0, jobs);
        self.events.insert(0, fleet);
    }

    fn process_meta(pid: usize, name: &str) -> JsonValue {
        JsonValue::object([
            ("ph", JsonValue::from("M")),
            ("name", JsonValue::from("process_name")),
            ("pid", JsonValue::from(pid)),
            ("args", JsonValue::object([("name", JsonValue::from(name))])),
        ])
    }

    fn thread_meta(pid: usize, tid: usize, name: &str) -> JsonValue {
        JsonValue::object([
            ("ph", JsonValue::from("M")),
            ("name", JsonValue::from("thread_name")),
            ("pid", JsonValue::from(pid)),
            ("tid", JsonValue::from(tid)),
            ("args", JsonValue::object([("name", JsonValue::from(name))])),
        ])
    }

    fn ensure_job_lane(&mut self, job: usize) {
        if job >= self.job_named.len() {
            self.job_named.resize(job + 1, false);
            self.arrivals.resize(job + 1, None);
        }
        if !self.job_named[job] {
            self.job_named[job] = true;
            self.events
                .push(Self::thread_meta(PID_JOBS, job, &format!("job {job}")));
        }
    }

    fn ensure_qpu_track(&mut self, qpu: usize) {
        if qpu >= self.qpu_named.len() {
            self.qpu_named.resize(qpu + 1, false);
        }
        if !self.qpu_named[qpu] {
            self.qpu_named[qpu] = true;
            self.events
                .push(Self::thread_meta(PID_FLEET, qpu, &format!("qpu {qpu}")));
        }
    }

    /// A complete-event span (`ph: "X"`).
    fn span(
        pid: usize,
        tid: usize,
        name: &str,
        start: f64,
        dur: f64,
        args: JsonValue,
    ) -> JsonValue {
        JsonValue::object([
            ("ph", JsonValue::from("X")),
            ("name", JsonValue::from(name)),
            ("pid", JsonValue::from(pid)),
            ("tid", JsonValue::from(tid)),
            ("ts", JsonValue::from(micros(start))),
            ("dur", JsonValue::from(micros(dur.max(0.0)))),
            ("args", args),
        ])
    }

    /// A thread-scoped instant event (`ph: "i"`).
    fn instant(pid: usize, tid: usize, name: &str, time: f64, args: JsonValue) -> JsonValue {
        JsonValue::object([
            ("ph", JsonValue::from("i")),
            ("name", JsonValue::from(name)),
            ("pid", JsonValue::from(pid)),
            ("tid", JsonValue::from(tid)),
            ("ts", JsonValue::from(micros(time))),
            ("s", JsonValue::from("t")),
            ("args", args),
        ])
    }
}

impl TraceSink for PerfettoSink {
    // sx-lint: hot-exempt -- rendering spans is this sink's whole policy; NullSink is the perf default
    fn on_record(&mut self, record: &TraceRecord, _vclock: f64) {
        match *record {
            TraceRecord::Fired(event) => {
                if let EventKind::JobArrival { job } = event.kind {
                    self.ensure_job_lane(job);
                    if self.arrivals[job].is_none() {
                        self.arrivals[job] = Some(event.time);
                    }
                }
            }
            TraceRecord::Dispatched {
                time,
                job,
                qpu,
                tenant,
                warm,
                finish,
                stage1_seconds,
                stage2_seconds,
                stage3_seconds,
            } => {
                self.ensure_job_lane(job);
                self.ensure_qpu_track(qpu);
                let arrival = self.arrivals[job].unwrap_or(time);

                // Job lane: queued, then the split-execution stages.
                self.events.push(Self::span(
                    PID_JOBS,
                    job,
                    "queued",
                    arrival,
                    time - arrival,
                    JsonValue::object([("tenant", JsonValue::from(tenant.index()))]),
                ));
                let mut cursor = time;
                for (name, dur) in [
                    ("embed", stage1_seconds),
                    ("anneal", stage2_seconds),
                    ("readout", stage3_seconds),
                ] {
                    let args = JsonValue::object([("warm", JsonValue::from(warm))]);
                    self.events
                        .push(Self::span(PID_JOBS, job, name, cursor, dur, args));
                    cursor += dur;
                }

                // Device track: one span covering the full service window.
                self.events.push(Self::span(
                    PID_FLEET,
                    qpu,
                    &format!("job {job}"),
                    time,
                    finish - time,
                    JsonValue::object([
                        ("job", JsonValue::from(job)),
                        ("tenant", JsonValue::from(tenant.index())),
                        ("warm", JsonValue::from(warm)),
                    ]),
                ));
            }
            TraceRecord::Shed {
                time,
                job,
                tenant,
                infeasible,
            } => {
                self.ensure_job_lane(job);
                let args = JsonValue::object([
                    ("tenant", JsonValue::from(tenant.index())),
                    ("infeasible", JsonValue::from(infeasible)),
                ]);
                self.events
                    .push(Self::instant(PID_JOBS, job, "shed", time, args));
            }
            TraceRecord::Deferred { time, job, until } => {
                self.ensure_job_lane(job);
                let args = JsonValue::object([("until", JsonValue::from(until))]);
                self.events
                    .push(Self::instant(PID_JOBS, job, "defer", time, args));
            }
            TraceRecord::Rejected { time, job } => {
                self.ensure_job_lane(job);
                self.events.push(Self::instant(
                    PID_JOBS,
                    job,
                    "reject",
                    time,
                    JsonValue::Object(Vec::new()),
                ));
            }
        }
    }

    fn name(&self) -> &'static str {
        "perfetto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::json;
    use crate::tenant::TenantId;

    fn dispatched() -> TraceRecord {
        TraceRecord::Dispatched {
            time: 2.0,
            job: 7,
            qpu: 1,
            tenant: TenantId(0),
            warm: false,
            finish: 3.75,
            stage1_seconds: 1.0,
            stage2_seconds: 0.5,
            stage3_seconds: 0.25,
        }
    }

    #[test]
    fn document_parses_and_has_expected_tracks() {
        let mut sink = PerfettoSink::new();
        sink.on_record(
            &TraceRecord::Fired(Event {
                time: 0.5,
                seq: 0,
                kind: EventKind::JobArrival { job: 7 },
            }),
            0.5,
        );
        sink.on_record(&dispatched(), 2.0);
        sink.on_record(
            &TraceRecord::Shed {
                time: 2.5,
                job: 8,
                tenant: TenantId(1),
                infeasible: true,
            },
            2.5,
        );
        let doc = sink.finish();
        let text = doc.to_string();
        let parsed = json::parse(&text).expect("Perfetto doc is valid JSON");
        let events = match parsed.get("traceEvents") {
            Some(JsonValue::Array(items)) => items.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 2 process metas + 2 thread metas (job lanes 7, 8) + 1 qpu meta
        // + queued/embed/anneal/readout + device span + shed instant.
        assert_eq!(events.len(), 11);
        let names: Vec<String> = events
            .iter()
            .filter_map(|e| match e.get("name") {
                Some(JsonValue::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        for expected in ["queued", "embed", "anneal", "readout", "job 7", "shed"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn queued_span_starts_at_first_arrival_and_stages_tile_the_service() {
        let mut sink = PerfettoSink::new();
        // The job arrives at 0.5 and again (deferred re-arrival) at 1.5;
        // the queued span must anchor at 0.5.
        for t in [0.5, 1.5] {
            sink.on_record(
                &TraceRecord::Fired(Event {
                    time: t,
                    seq: 0,
                    kind: EventKind::JobArrival { job: 7 },
                }),
                t,
            );
        }
        sink.on_record(&dispatched(), 2.0);
        let doc = sink.finish();
        let events = match doc.get("traceEvents") {
            Some(JsonValue::Array(items)) => items.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        let span = |name: &str| -> (f64, f64) {
            events
                .iter()
                .find_map(|e| match (e.get("name"), e.get("ts"), e.get("dur")) {
                    (
                        Some(JsonValue::Str(n)),
                        Some(JsonValue::Num(ts)),
                        Some(JsonValue::Num(dur)),
                    ) if n == name => Some((*ts, *dur)),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let (queued_ts, queued_dur) = span("queued");
        assert_eq!(queued_ts, 0.5e6);
        assert_eq!(queued_dur, 1.5e6);
        let (embed_ts, embed_dur) = span("embed");
        let (anneal_ts, anneal_dur) = span("anneal");
        let (readout_ts, readout_dur) = span("readout");
        assert_eq!(embed_ts, 2.0e6);
        assert!((anneal_ts - (embed_ts + embed_dur)).abs() < 1e-6);
        assert!((readout_ts - (anneal_ts + anneal_dur)).abs() < 1e-6);
        // Stages tile the device span exactly: service = finish − start.
        let (dev_ts, dev_dur) = span("job 7");
        assert_eq!(dev_ts, 2.0e6);
        assert!((embed_dur + anneal_dur + readout_dur - dev_dur).abs() < 1e-6);
    }
}
