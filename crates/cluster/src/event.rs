//! The discrete-event core: timestamped events on a virtual clock.
//!
//! The engine is deliberately minimal — a binary heap of events ordered by
//! `(time, sequence)` — in the style of dslab's `SimulationState`.  Virtual
//! time is an `f64` in seconds; there is **no wall clock anywhere** in the
//! simulator, so a run is a pure function of its inputs and two runs with
//! the same seed produce bit-identical traces (the determinism tests assert
//! exactly that).  Ties in time are broken by the monotonically increasing
//! sequence number assigned at push, so simultaneous events fire in the
//! order they were scheduled.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened (or is scheduled to happen) at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A job enters the system and joins the dispatch queue.
    JobArrival {
        /// Index of the arriving job in the workload.
        job: usize,
    },
    /// A QPU finishes serving a job.
    JobCompletion {
        /// The serving device.
        qpu: usize,
        /// The finished job.
        job: usize,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time in seconds.
    pub time: f64,
    /// Scheduling sequence number (tie-breaker; unique per queue).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Eq for Event {}

// BinaryHeap is a max-heap; invert the ordering so the earliest event pops
// first.  `total_cmp` keeps the order total even if a NaN ever slipped in.
//
// This `(time, seq)` ordering is the workspace's canonical pattern for
// comparing simulation floats (rule D003 in `docs/LINTING.md` points
// here): `f64::total_cmp` never panics and ranks NaN greatest, and the
// integer `seq` tiebreak makes equal-time pops deterministic.  Never use
// `partial_cmp(..).unwrap()` on sim-side floats.
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The future-event list: a min-heap on `(time, seq)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue whose heap is pre-sized for `capacity` events.
    ///
    /// The dispatch loop's allocation budget (see
    /// `crates/cluster/tests/alloc_budget.rs`) requires that steady-state
    /// `schedule` calls never grow the heap, so the engine sizes the queue
    /// for the whole run up front: one arrival per job plus one in-flight
    /// completion per device.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedule `kind` at absolute virtual time `time`.
    ///
    /// # Panics
    /// Panics on a non-finite timestamp — a NaN/infinite service time is a
    /// modeling bug that must not silently scramble the event order.
    // sx-lint: hot-root -- called once per scheduled event inside the dispatch loop
    pub fn schedule(&mut self, time: f64, kind: EventKind) -> Event {
        assert!(time.is_finite(), "non-finite event time {time}");
        let event = Event {
            time,
            seq: self.next_seq,
            kind,
        };
        self.next_seq += 1;
        self.heap.push(event);
        event
    }

    /// Pop the earliest event, if any.
    // sx-lint: hot-root -- the dispatch loop's main ratchet: one pop per event
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, EventKind::JobArrival { job: 2 });
        q.schedule(1.0, EventKind::JobArrival { job: 0 });
        q.schedule(2.0, EventKind::JobArrival { job: 1 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for job in 0..5 {
            q.schedule(1.0, EventKind::JobArrival { job });
        }
        let jobs: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::JobArrival { job } => job,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(jobs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_length_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(0.5, EventKind::JobCompletion { qpu: 0, job: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_times_are_rejected() {
        EventQueue::new().schedule(f64::NAN, EventKind::JobArrival { job: 0 });
    }
}
