//! Pluggable scheduling policies.
//!
//! Whenever a device goes idle or a job arrives, the engine repeatedly asks
//! the active [`Scheduler`] for one `(job, device)` assignment until it
//! declines; the engine then dispatches the pair and charges the service
//! time.  All policies must be deterministic — ties are broken by job
//! arrival order and device id — so a seeded simulation replays exactly.
//!
//! Five policies ship:
//!
//! * [`Fifo`] — strict arrival order with head-of-line blocking: the head
//!   job waits for a feasible idle device and nothing overtakes it.  The
//!   baseline, and the policy whose no-reordering property is proptested.
//! * [`ShortestPredictedFirst`] — the classic SJF heuristic with the
//!   paper's analytic model as the oracle: among queued jobs and idle
//!   devices, dispatch the pair with the smallest predicted service time
//!   (cache-aware, so a warm topology counts as short; speed-aware, so a
//!   fast device counts too), minus an arrival-time aging credit
//!   ([`DEFAULT_AGING_WEIGHT`]) so a sustained stream of short jobs cannot
//!   starve a large one.
//! * [`CacheAffinity`] — route jobs to the device whose embedding cache
//!   already holds their topology (taking a faster device when its cold
//!   prediction still wins); cold jobs go to the fastest idle device,
//!   spread within a speed band ([`COLD_SPEED_BAND`]) to the one with the
//!   fewest warm topologies (building specialized caches); a job whose
//!   warm device is busy waits for it only when waiting is predicted
//!   cheaper than re-embedding cold elsewhere.
//! * [`EarliestDeadlineFirst`] — classic EDF over the whole queue: the
//!   queued job with the earliest deadline dispatches first (deadline-free
//!   jobs rank behind every deadline and keep FIFO order among
//!   themselves).  Deadline-optimal on a single machine, but
//!   tenant-oblivious: one tenant submitting tight deadlines starves the
//!   rest.
//! * [`WeightedFairQueue`] — virtual-time weighted fair queueing over
//!   per-tenant lanes: a tenant within its fair share keeps its latency no
//!   matter how hard another tenant floods the fleet, while the cost
//!   oracle still picks warm/fast placements within each lane.  *Within*
//!   a lane the order is EDF-flavored by default ([`LaneOrder`]):
//!   deadline-carrying jobs dispatch earliest-deadline-first and
//!   deadline-free jobs keep FIFO order — cross-tenant isolation from the
//!   virtual clock, per-tenant SLO attainment from EDF, composed.

use crate::fleet::Fleet;
use crate::job::Job;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// A scheduling policy.
///
/// `queue` is the pending jobs in arrival order; implementations return
/// `Some((queue_index, device_id))` to dispatch, or `None` to leave the
/// remaining queue waiting (e.g. for a busy device to free up).  The engine
/// guarantees every returned device is idle at `now` and re-invokes the
/// method until it returns `None`.
pub trait Scheduler {
    /// Stable policy name used in reports.
    fn name(&self) -> &'static str;

    /// Choose the next `(queue index, device id)` assignment, or `None`.
    fn next_assignment(&mut self, queue: &[Job], fleet: &Fleet, now: f64)
        -> Option<(usize, usize)>;
}

/// The idle device predicted fastest for `job` — smallest
/// [`crate::fleet::QpuDevice::predicted_service_seconds`], ties broken by
/// device id — together with that prediction.  The shared deterministic
/// placement primitive of the cache-affinity and weighted-fair policies:
/// warmth and device speed are both priced into the prediction.
///
/// Scans the fleet directly with [`crate::fleet::QpuDevice::is_idle`]
/// rather than taking a materialized idle list: every caller sits on the
/// dispatch hot path, where collecting `Fleet::idle_devices` into a `Vec`
/// per call would allocate per event.
fn fastest_idle_device(fleet: &Fleet, now: f64, job: &Job) -> Option<(f64, usize)> {
    fleet
        .devices
        .iter()
        .filter(|d| d.is_idle(now) && d.can_run(job.lps))
        .filter_map(|d| {
            let predicted = d
                .predicted_service_seconds(job.lps, job.topology_key)
                .ok()?;
            Some((predicted, d.id))
        })
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
}

/// The EDF sort key of a job: its deadline, with deadline-free jobs ranked
/// behind every deadline (so they fall back to FIFO order among
/// themselves — `f64::INFINITY` compares equal to itself under `total_cmp`
/// and ties break by queue position).
fn deadline_key(job: &Job) -> f64 {
    job.deadline.unwrap_or(f64::INFINITY)
}

/// First-in-first-out with head-of-line blocking.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    // sx-lint: hot-root -- queried once per dispatch attempt in the event loop
    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        let head = queue.first()?;
        let device = fleet
            .devices
            .iter()
            .find(|d| d.is_idle(now) && d.can_run(head.lps))?;
        Some((0, device.id))
    }
}

/// Priority credit (in seconds of predicted service) a queued job earns per
/// second of waiting under [`ShortestPredictedFirst`] — the aging term that
/// keeps pure SJF from starving large jobs forever.
pub const DEFAULT_AGING_WEIGHT: f64 = 0.1;

/// Shortest-predicted-job-first over the analytic cost oracle, with
/// arrival-time aging.
///
/// Pure SJF starves: under a sustained stream of short jobs, a large job's
/// predicted service never wins and it waits forever.  The effective
/// priority here is `predicted − aging_weight · (now − arrival)`, so every
/// second in the queue buys a job `aging_weight` seconds of predicted
/// service, and any job eventually outranks fresh short work.  Because the
/// per-device predicted service is the ordering key, the policy also weighs
/// device speed in a heterogeneous fleet: a job may prefer a fast cold
/// device over a slow warm one.
#[derive(Debug, Clone, Copy)]
pub struct ShortestPredictedFirst {
    /// Seconds of priority credit per second waited (0 = pure SJF).
    pub aging_weight: f64,
}

impl Default for ShortestPredictedFirst {
    fn default() -> Self {
        Self {
            aging_weight: DEFAULT_AGING_WEIGHT,
        }
    }
}

impl ShortestPredictedFirst {
    /// The policy with the given aging weight; `0.0` restores the pure
    /// (starvation-prone) SJF ordering.
    pub fn with_aging(aging_weight: f64) -> Self {
        Self { aging_weight }
    }
}

impl Scheduler for ShortestPredictedFirst {
    fn name(&self) -> &'static str {
        "spjf"
    }

    // sx-lint: hot-root -- queried once per dispatch attempt in the event loop
    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        let mut best: Option<(f64, usize, usize)> = None;
        for (qi, job) in queue.iter().enumerate() {
            let age = (now - job.arrival).max(0.0);
            for device in &fleet.devices {
                if !device.is_idle(now) || !device.can_run(job.lps) {
                    continue;
                }
                let Ok(predicted) = device.predicted_service_seconds(job.lps, job.topology_key)
                else {
                    continue;
                };
                let score = predicted - self.aging_weight * age;
                // Strict `<` keeps the earliest (queue-order, id-order)
                // candidate on ties, so the policy is deterministic.
                if best.map(|(t, _, _)| score < t).unwrap_or(true) {
                    best = Some((score, qi, device.id));
                }
            }
        }
        best.map(|(_, qi, d)| (qi, d))
    }
}

/// Devices whose predicted cold service is within this factor of the
/// fastest idle candidate count as equally fast for [`CacheAffinity`]'s
/// cold placement; within the band, the least-specialized cache wins.  The
/// band absorbs fault-map cost noise (a few percent between same-generation
/// devices) while keeping genuinely slower generations (3–5× on embeds)
/// out.
pub const COLD_SPEED_BAND: f64 = 1.25;

/// Embedding-cache-affinity routing.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheAffinity;

impl Scheduler for CacheAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    // sx-lint: hot-root -- queried once per dispatch attempt in the event loop
    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        if !fleet.devices.iter().any(|d| d.is_idle(now)) {
            return None;
        }

        // Pass 1: oldest job whose topology is warm on an idle device.
        // Among the idle candidates the job takes the device with the
        // smallest *predicted* service, not blindly the warm one — in a
        // heterogeneous fleet a fast cold device can beat a slow warm one,
        // and the prediction already prices both warmth and device speed.
        for (qi, job) in queue.iter().enumerate() {
            let warm_idle = fleet
                .devices
                .iter()
                .any(|d| d.is_idle(now) && d.can_run(job.lps) && d.is_warm(job.topology_key));
            if !warm_idle {
                continue;
            }
            if let Some((_, d)) = fastest_idle_device(fleet, now, job) {
                return Some((qi, d));
            }
        }

        // Pass 2: place a job that must embed cold anyway.  Prefer the
        // device predicted fastest for it (speed matters when generations
        // differ), but treat devices within a relative band of the fastest
        // as equivalent — fault-map noise makes exact f64 costs unique, and
        // a strict minimum would funnel every cold job to the single
        // lowest-fault device.  Within the band, prefer the
        // least-specialized cache so caches partition the topology space
        // instead of all devices learning everything.
        for (qi, job) in queue.iter().enumerate() {
            let warm_somewhere = fleet
                .devices
                .iter()
                .any(|dev| dev.is_warm(job.topology_key));
            if warm_somewhere {
                // Its warm device is busy (pass 1 would have taken it).
                // Wait for that device only when wait + warm service is
                // predicted to finish sooner than re-embedding cold on an
                // idle one.
                let warm_finish = fleet
                    .devices
                    .iter()
                    .filter(|dev| dev.is_warm(job.topology_key) && dev.can_run(job.lps))
                    .filter_map(|dev| {
                        let warm_service = dev
                            .predicted_service_seconds(job.lps, job.topology_key)
                            .ok()?;
                        Some((dev.busy_until - now).max(0.0) + warm_service)
                    })
                    .fold(f64::INFINITY, f64::min);
                let cold_cost = fleet
                    .devices
                    .iter()
                    .filter(|dev| dev.is_idle(now) && dev.can_run(job.lps))
                    .filter_map(|dev| {
                        dev.predicted_service_seconds(job.lps, job.topology_key)
                            .ok()
                    })
                    .fold(f64::INFINITY, f64::min);
                if warm_finish < cold_cost {
                    continue; // hold this job for its warm device
                }
            }
            // Two passes over the fleet instead of a collected candidate
            // `Vec`: first the fastest prediction, then the in-band device
            // with the fewest warm topologies (ties by id; strict `<`
            // keeps the first, matching the old `min_by` on unique keys).
            let fastest = fleet
                .devices
                .iter()
                .filter(|dev| dev.is_idle(now) && dev.can_run(job.lps))
                .filter_map(|dev| {
                    dev.predicted_service_seconds(job.lps, job.topology_key)
                        .ok()
                })
                .fold(f64::INFINITY, f64::min);
            let mut placement: Option<(usize, usize)> = None; // (warm count, id)
            for dev in &fleet.devices {
                if !dev.is_idle(now) || !dev.can_run(job.lps) {
                    continue;
                }
                let Ok(predicted) = dev.predicted_service_seconds(job.lps, job.topology_key) else {
                    continue;
                };
                if predicted <= fastest * COLD_SPEED_BAND {
                    let key = (dev.warm_topologies(), dev.id);
                    if placement.map(|cur| key < cur).unwrap_or(true) {
                        placement = Some(key);
                    }
                }
            }
            if let Some((_, d)) = placement {
                return Some((qi, d));
            }
        }
        None
    }
}

/// Earliest-deadline-first over the whole queue.
///
/// The queued job with the smallest deadline dispatches first, placed on
/// the idle device predicted fastest for it; jobs without deadlines rank
/// behind every deadline-carrying job and keep FIFO order among
/// themselves.  A job with no feasible idle device is skipped (no
/// head-of-line blocking), so a fleet-infeasible head cannot stall the
/// queue.
///
/// EDF is the deadline-optimal single-machine discipline, which makes it
/// the natural yardstick for the `cluster_sim --mode slo` sweep — but it
/// is tenant-oblivious: any tenant can grab the whole fleet by submitting
/// tight deadlines.  [`WeightedFairQueue`] composes the same in-lane order
/// with cross-tenant fairness.
#[derive(Debug, Default, Clone, Copy)]
pub struct EarliestDeadlineFirst;

impl Scheduler for EarliestDeadlineFirst {
    fn name(&self) -> &'static str {
        "edf"
    }

    // sx-lint: hot-root -- queried once per dispatch attempt in the event loop
    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        if !fleet.devices.iter().any(|d| d.is_idle(now)) {
            return None;
        }
        // One pass, no sorted index `Vec`: keep the feasible job with the
        // lexicographically smallest `(deadline, queue position)`.  A
        // strictly-smaller comparison means equal deadlines (and all
        // deadline-free jobs, which share `f64::INFINITY`) keep queue
        // order — exactly the old stable-sort-then-first-feasible result.
        let mut best: Option<(f64, usize, usize)> = None; // (deadline, qi, device)
        for (qi, job) in queue.iter().enumerate() {
            let key = deadline_key(job);
            if best.map(|(k, _, _)| key >= k).unwrap_or(false) {
                continue;
            }
            if let Some((_, d)) = fastest_idle_device(fleet, now, job) {
                best = Some((key, qi, d));
            }
        }
        best.map(|(_, qi, d)| (qi, d))
    }
}

/// How [`WeightedFairQueue`] orders jobs *within* one tenant's lane.
///
/// Cross-lane scheduling (which tenant is served next) is always the
/// virtual-time start-tag race; the lane order only decides which of the
/// chosen tenant's queued jobs goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LaneOrder {
    /// Strict submission order — the PR 4 behavior, kept for comparison
    /// (`wfq-fifo` in reports and sweeps).
    Fifo,
    /// Earliest deadline first, falling back to FIFO for deadline-free
    /// jobs (the default).  On a deadline-free workload this is identical
    /// to [`LaneOrder::Fifo`].
    #[default]
    EarliestDeadline,
}

/// Weighted fair queueing across tenants (start-time fair queueing over
/// per-tenant lanes, EDF-ordered within a lane by default).
///
/// Each tenant's queued jobs form a *lane*.  The scheduler keeps a
/// virtual clock: dispatching a job of predicted service `S` from a tenant
/// of weight `w` advances that tenant's finish tag by `S / w`, and the lane
/// whose head has the smallest start tag (`max(finish_tag, virtual_time)`)
/// is served next.  A tenant that stays within its fair share therefore
/// sees latency as if it had `w / Σw` of the fleet to itself, no matter how
/// hard another tenant floods its own lane — the fairness guarantee the
/// `cluster_sim --mode fairness` sweep enforces against FIFO.
///
/// *Within* the chosen lane, the head is picked by [`LaneOrder`]: by
/// default the tenant's queued job with the earliest deadline
/// (deadline-free jobs fall back to submission order).  Reordering inside
/// a lane leaves the *long-run* share intact — every job's charge is
/// eventually paid by its own tenant either way — though the per-dispatch
/// charge follows the chosen job, so transient cross-lane interleaving
/// can differ from FIFO lanes (the `--mode slo` sweep guards Jain's index
/// within 5% of plain WFQ for exactly this reason).
/// [`WeightedFairQueue::with_lane_order`] restores strict FIFO lanes
/// (`wfq-fifo`) for comparison.
///
/// The policy composes with the cost oracle on two axes: the *charge* is
/// the predicted service on the chosen device (so a tenant re-using warm
/// topologies genuinely consumes less of its share), and the *placement*
/// picks the idle device with the smallest prediction (so warm caches and
/// fast devices are still exploited within a lane).  A lane head with no
/// feasible idle device blocks only its own lane, never the other tenants.
///
/// Determinism: lane order ties break by tenant id, deadline ties by queue
/// position, device ties by id, and all state lives on the virtual clock.
///
/// ```
/// use sx_cluster::prelude::*;
/// use split_exec::SplitExecConfig;
///
/// // Two tenants, the aggressor arriving 6x faster than the victim.
/// let workload = MultiTenantSpec::aggressor_victim(8, 0.5, 6.0, 1.0, 7).generate();
/// let fleet = Fleet::new(FleetConfig::default(), SplitExecConfig::with_seed(7));
///
/// // Weights come from the workload's tenant metadata.
/// let mut wfq = WeightedFairQueue::for_workload(&workload);
/// let report = simulate(fleet, &workload, &mut wfq, SimConfig::default());
///
/// // Fair queueing completes every tenant's jobs — the flood cannot
/// // starve the victim's lane.
/// for tenant in &report.per_tenant {
///     assert_eq!(tenant.completed, tenant.submitted);
/// }
/// assert!(report.jains_fairness_index() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedFairQueue {
    /// Fair-share weight per tenant id; tenants beyond the vector get 1.0.
    weights: Vec<f64>,
    /// Virtual finish tag per tenant id (grown on demand).
    finish_tags: Vec<f64>,
    /// The virtual clock: the start tag of the last dispatched job.
    virtual_time: f64,
    /// In-lane ordering (EDF by default).
    lane_order: LaneOrder,
    /// Lane-head scratch `(tenant, queue index)`, reused across
    /// `next_assignment` calls so the hot path never allocates; it grows at
    /// most once per tenant ever seen.
    heads: Vec<(usize, usize)>,
}

impl Default for WeightedFairQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightedFairQueue {
    /// Uniform weights: every tenant gets an equal share.
    pub fn new() -> Self {
        Self::with_weights(Vec::new())
    }

    /// Explicit per-tenant weights, indexed by tenant id; tenants beyond
    /// the vector (and non-positive entries) fall back to weight 1.0.
    pub fn with_weights(weights: Vec<f64>) -> Self {
        let lanes = weights.len().max(8);
        Self {
            heads: Vec::with_capacity(lanes),
            weights,
            finish_tags: Vec::new(),
            virtual_time: 0.0,
            lane_order: LaneOrder::default(),
        }
    }

    /// Weights taken from the workload's tenant metadata — the usual way to
    /// build the policy for a [`crate::tenant::MultiTenantSpec`] stream.
    pub fn for_workload(workload: &Workload) -> Self {
        Self::with_weights(workload.weights())
    }

    /// Override the in-lane ordering ([`LaneOrder::EarliestDeadline`] is
    /// the default; [`LaneOrder::Fifo`] restores the PR 4 behavior and
    /// reports as `wfq-fifo`).
    pub fn with_lane_order(mut self, lane_order: LaneOrder) -> Self {
        self.lane_order = lane_order;
        self
    }

    /// The active in-lane ordering.
    pub fn lane_order(&self) -> LaneOrder {
        self.lane_order
    }

    fn weight(&self, tenant: usize) -> f64 {
        let w = self.weights.get(tenant).copied().unwrap_or(1.0);
        if w.is_finite() && w > 0.0 {
            w
        } else {
            1.0
        }
    }

    fn finish_tag(&self, tenant: usize) -> f64 {
        self.finish_tags.get(tenant).copied().unwrap_or(0.0)
    }

    fn set_finish_tag(&mut self, tenant: usize, tag: f64) {
        if self.finish_tags.len() <= tenant {
            self.finish_tags.resize(tenant + 1, 0.0);
        }
        self.finish_tags[tenant] = tag;
    }
}

impl Scheduler for WeightedFairQueue {
    fn name(&self) -> &'static str {
        match self.lane_order {
            LaneOrder::EarliestDeadline => "wfq",
            LaneOrder::Fifo => "wfq-fifo",
        }
    }

    // sx-lint: hot-root -- queried once per dispatch attempt in the event loop
    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        if !fleet.devices.iter().any(|d| d.is_idle(now)) {
            return None;
        }

        // Lane heads, per tenant in queue order.  Under FIFO lanes the head
        // is the tenant's first queued job; under EDF lanes it is the
        // tenant's earliest-deadline job (strictly-smaller comparison, so
        // deadline ties and deadline-free jobs keep submission order).
        //
        // The scratch vector is owned by the scheduler and taken/restored
        // around the call, so steady-state dispatch never allocates
        // (`tests/alloc_budget.rs` pins this).
        let mut heads = std::mem::take(&mut self.heads); // (tenant, queue idx)
        heads.clear();
        for (qi, job) in queue.iter().enumerate() {
            let tenant = job.tenant.index();
            match heads.iter_mut().find(|(t, _)| *t == tenant) {
                None => heads.push((tenant, qi)),
                Some((_, head)) => {
                    if self.lane_order == LaneOrder::EarliestDeadline
                        && deadline_key(job) < deadline_key(&queue[*head])
                    {
                        *head = qi;
                    }
                }
            }
        }
        // Serve lanes in start-tag order; ties by tenant id keep the order
        // total and deterministic.  Unstable sort is safe — one head per
        // tenant makes the `(start tag, tenant)` key unique — and, unlike
        // the stable sort, it never allocates a merge buffer.
        heads.sort_unstable_by(|&(ta, _), &(tb, _)| {
            let sa = self.finish_tag(ta).max(self.virtual_time);
            let sb = self.finish_tag(tb).max(self.virtual_time);
            sa.total_cmp(&sb).then(ta.cmp(&tb))
        });

        let mut chosen: Option<(usize, usize, usize, f64)> = None;
        for &(tenant, qi) in &heads {
            let job = &queue[qi];
            // Within the lane, the cost oracle picks the placement: the
            // idle device with the smallest prediction (warm beats cold,
            // fast beats slow).
            if let Some((cost, device)) = fastest_idle_device(fleet, now, job) {
                chosen = Some((tenant, qi, device, cost));
                break;
            }
        }
        self.heads = heads;

        let (tenant, qi, device, cost) = chosen?;
        let start = self.finish_tag(tenant).max(self.virtual_time);
        self.set_finish_tag(tenant, start + cost / self.weight(tenant));
        self.virtual_time = start;
        Some((qi, device))
    }
}

/// Policy selection by name, for CLI surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fifo`].
    Fifo,
    /// [`ShortestPredictedFirst`].
    ShortestPredictedFirst,
    /// [`CacheAffinity`].
    CacheAffinity,
    /// [`EarliestDeadlineFirst`].
    EarliestDeadline,
    /// [`WeightedFairQueue`] with uniform weights and EDF lanes; use
    /// [`WeightedFairQueue::with_weights`] / [`WeightedFairQueue::for_workload`]
    /// directly for weighted shares or FIFO lanes.
    WeightedFair,
}

impl PolicyKind {
    /// All policies, in comparison-table order.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Fifo,
            PolicyKind::ShortestPredictedFirst,
            PolicyKind::CacheAffinity,
            PolicyKind::EarliestDeadline,
            PolicyKind::WeightedFair,
        ]
    }

    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::ShortestPredictedFirst => Box::new(ShortestPredictedFirst::default()),
            PolicyKind::CacheAffinity => Box::new(CacheAffinity),
            PolicyKind::EarliestDeadline => Box::new(EarliestDeadlineFirst),
            PolicyKind::WeightedFair => Box::new(WeightedFairQueue::new()),
        }
    }

    /// The policy's stable name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::ShortestPredictedFirst => "spjf",
            PolicyKind::CacheAffinity => "affinity",
            PolicyKind::EarliestDeadline => "edf",
            PolicyKind::WeightedFair => "wfq",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fifo" => Ok(PolicyKind::Fifo),
            "spjf" | "sjf" | "shortest" => Ok(PolicyKind::ShortestPredictedFirst),
            "affinity" | "cache" | "cache-affinity" => Ok(PolicyKind::CacheAffinity),
            "edf" | "deadline" | "earliest-deadline" => Ok(PolicyKind::EarliestDeadline),
            "wfq" | "fair" | "weighted-fair" => Ok(PolicyKind::WeightedFair),
            other => Err(format!(
                "unknown scheduling policy '{other}' (expected fifo, spjf, affinity, edf or wfq)"
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use split_exec::SplitExecConfig;

    fn fleet(qpus: usize) -> Fleet {
        Fleet::new(
            FleetConfig {
                qpus,
                qubit_fault_rate: 0.0,
                coupler_fault_rate: 0.0,
                seed: 1,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(1),
        )
    }

    fn job(id: usize, lps: usize, key: u64) -> Job {
        Job {
            id,
            tenant: crate::tenant::TenantId::DEFAULT,
            family: format!("test-{lps}").into(),
            lps,
            topology_key: key,
            arrival: id as f64,
            deadline: None,
        }
    }

    fn deadline_job(id: usize, lps: usize, key: u64, deadline: f64) -> Job {
        Job {
            deadline: Some(deadline),
            ..job(id, lps, key)
        }
    }

    fn tenant_job(id: usize, tenant: usize, lps: usize, key: u64) -> Job {
        Job {
            tenant: crate::tenant::TenantId(tenant),
            ..job(id, lps, key)
        }
    }

    #[test]
    fn fifo_takes_the_head_job_on_the_lowest_idle_device() {
        let fleet = fleet(2);
        let queue = vec![job(0, 10, 1), job(1, 8, 2)];
        assert_eq!(Fifo.next_assignment(&queue, &fleet, 0.0), Some((0, 0)));
    }

    #[test]
    fn fifo_blocks_at_the_head() {
        let mut fleet = fleet(2);
        // Head job only fits device 1; device 1 busy ⇒ nothing dispatches
        // even though device 0 could serve the second job.
        fleet.devices[0].capacity_lps = 5;
        fleet.devices[1].busy_until = 100.0;
        let queue = vec![job(0, 10, 1), job(1, 4, 2)];
        assert_eq!(Fifo.next_assignment(&queue, &fleet, 0.0), None);
    }

    #[test]
    fn spjf_prefers_the_warm_short_job() {
        let mut fleet = fleet(1);
        fleet.devices[0].mark_warm(42, 10);
        let queue = vec![job(0, 10, 1), job(1, 10, 42)];
        // Same size, but job 1 is warm on device 0 ⇒ far shorter predicted.
        assert_eq!(
            ShortestPredictedFirst::default().next_assignment(&queue, &fleet, 0.0),
            Some((1, 0))
        );
    }

    #[test]
    fn spjf_breaks_ties_by_arrival_order() {
        let fleet = fleet(1);
        let queue = vec![job(0, 10, 1), job(1, 10, 2)];
        assert_eq!(
            ShortestPredictedFirst::default().next_assignment(&queue, &fleet, 0.0),
            Some((0, 0))
        );
    }

    #[test]
    fn spjf_aging_eventually_promotes_a_starved_large_job() {
        // Regression for the starvation bug: pure SJF (aging 0) picks the
        // fresh short job no matter how long the large one has waited.
        let mut fleet = fleet(1);
        fleet.devices[0].mark_warm(2, 8); // the short topology is warm
        let p_large = fleet.devices[0].predicted_service_seconds(40, 1).unwrap();
        let p_short = fleet.devices[0].predicted_service_seconds(8, 2).unwrap();
        assert!(p_large > p_short);
        // The large job has waited long enough for its aging credit to
        // close the predicted-service gap; the short job just arrived.
        let now = (p_large - p_short) / DEFAULT_AGING_WEIGHT + 1.0;
        let mut large = job(0, 40, 1);
        large.arrival = 0.0;
        let mut short = job(1, 8, 2);
        short.arrival = now;
        let queue = vec![large, short];
        assert_eq!(
            ShortestPredictedFirst::with_aging(0.0).next_assignment(&queue, &fleet, now),
            Some((1, 0)),
            "pure SJF must still pick the short job (the bug being fixed)"
        );
        assert_eq!(
            ShortestPredictedFirst::default().next_assignment(&queue, &fleet, now),
            Some((0, 0)),
            "aged SJF must promote the long-waiting large job"
        );
    }

    #[test]
    fn spjf_large_job_dispatches_under_a_continuous_short_stream() {
        use crate::sim::{simulate, SimConfig};
        use crate::workload::Workload;

        // One large job arrives early into a single-QPU system flooded with
        // short jobs of one warm topology.  Pure SJF serves every short job
        // first; aged SJF starts the large job while shorts still arrive.
        let build_fleet = || {
            crate::Fleet::new(
                crate::FleetConfig {
                    qpus: 1,
                    qubit_fault_rate: 0.0,
                    coupler_fault_rate: 0.0,
                    seed: 1,
                    ..crate::FleetConfig::default()
                },
                split_exec::SplitExecConfig::with_seed(1),
            )
        };
        // Size the stream from the model's own numbers so the scenario
        // stays valid if the cost constants move: shorts arrive faster
        // than they are served (sustained pressure), and the stream lasts
        // comfortably past the large job's aging-promotion point.
        let mut probe = build_fleet();
        probe.devices[0].mark_warm(2, 8);
        let p_short = probe.devices[0].predicted_service_seconds(8, 2).unwrap();
        let p_large = probe.devices[0].predicted_service_seconds(40, 1).unwrap();
        let gap = 0.8 * p_short;
        let promotion_age = (p_large - p_short) / DEFAULT_AGING_WEIGHT;
        // Promotion happens once the shorts that arrived inside the aging
        // window are drained (~p_short per short, hence the /0.8); run the
        // stream 1.35x past that.
        let shorts = (1.35 * promotion_age / 0.8 / gap).ceil() as usize;
        let mut jobs = vec![Job {
            id: 0,
            tenant: crate::tenant::TenantId::DEFAULT,
            family: "large".into(),
            lps: 40,
            topology_key: 1,
            arrival: 0.5 * gap,
            deadline: None,
        }];
        for i in 0..shorts {
            jobs.push(Job {
                id: i + 1,
                tenant: crate::tenant::TenantId::DEFAULT,
                family: "short".into(),
                lps: 8,
                topology_key: 2,
                arrival: gap * i as f64,
                deadline: None,
            });
        }
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = i;
        }
        let large_id = jobs.iter().position(|j| &*j.family == "large").unwrap();
        let workload = Workload::single_tenant(jobs);
        let start_of = |scheduler: &mut dyn Scheduler| {
            let report = simulate(build_fleet(), &workload, scheduler, SimConfig::default());
            report
                .records
                .iter()
                .find(|r| r.job == large_id)
                .map(|r| r.start)
                .expect("large job never completed")
        };
        let aged_start = start_of(&mut ShortestPredictedFirst::default());
        let pure_start = start_of(&mut ShortestPredictedFirst::with_aging(0.0));
        let last_short_arrival = gap * (shorts - 1) as f64;
        assert!(
            aged_start < pure_start,
            "aging must start the large job earlier ({aged_start} !< {pure_start})"
        );
        assert!(
            aged_start < last_short_arrival,
            "aged SJF must dispatch the large job while shorts still arrive \
             ({aged_start} !< {last_short_arrival})"
        );
        assert!(
            pure_start >= last_short_arrival,
            "pure SJF should have starved the large job until the stream dried up \
             ({pure_start} !>= {last_short_arrival})"
        );
    }

    #[test]
    fn cold_jobs_prefer_the_faster_device_in_a_heterogeneous_fleet() {
        use split_exec::SplitExecConfig;
        // Device 0 is DW2X-class, device 1 Vesuvius-class; the smaller
        // lattice embeds the same topology several times cheaper.
        let mut fleet = Fleet::new(
            crate::FleetConfig {
                qubit_fault_rate: 0.0,
                coupler_fault_rate: 0.0,
                ..crate::FleetConfig::heterogeneous(2, 1)
            },
            SplitExecConfig::with_seed(1),
        );
        let cold_dw2x = fleet.devices[0].predicted_service_seconds(20, 9).unwrap();
        let cold_ves = fleet.devices[1].predicted_service_seconds(20, 9).unwrap();
        assert!(cold_ves < cold_dw2x);
        let queue = vec![job(0, 20, 9)];
        // Both policies weigh device speed for a cold job.
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 0.0),
            Some((0, 1))
        );
        assert_eq!(
            ShortestPredictedFirst::default().next_assignment(&queue, &fleet, 0.0),
            Some((0, 1))
        );
        // Warmth on the slower device outweighs the faster cold one: a warm
        // hit skips the embed entirely.
        fleet.devices[0].mark_warm(9, 20);
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 0.0),
            Some((0, 0))
        );
        assert_eq!(
            ShortestPredictedFirst::default().next_assignment(&queue, &fleet, 0.0),
            Some((0, 0))
        );
    }

    #[test]
    fn affinity_routes_warm_jobs_to_their_device() {
        let mut fleet = fleet(3);
        fleet.devices[2].mark_warm(7, 10);
        let queue = vec![job(0, 10, 7)];
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 0.0),
            Some((0, 2))
        );
    }

    #[test]
    fn affinity_spreads_cold_jobs_to_least_specialized_device() {
        let mut fleet = fleet(3);
        fleet.devices[0].mark_warm(100, 10);
        fleet.devices[0].mark_warm(101, 10);
        fleet.devices[1].mark_warm(102, 10);
        let queue = vec![job(0, 10, 7)];
        // Device 2 has the emptiest cache.
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 0.0),
            Some((0, 2))
        );
    }

    #[test]
    fn affinity_spreads_cold_jobs_despite_fault_cost_noise() {
        use split_exec::SplitExecConfig;
        // Default fault rates: every device's cold cost is slightly
        // different, so an exact-minimum placement would always pick one
        // device.  The speed band must still spread cold jobs by cache
        // occupancy.
        let mut fleet = Fleet::new(
            crate::FleetConfig {
                qpus: 3,
                seed: 5,
                ..crate::FleetConfig::default()
            },
            SplitExecConfig::with_seed(5),
        );
        let costs: Vec<f64> = fleet
            .devices
            .iter()
            .map(|d| d.predicted_service_seconds(10, 7).unwrap())
            .collect();
        let fastest = costs.iter().copied().fold(f64::INFINITY, f64::min);
        // Precondition for this seed: all devices are same-generation and
        // inside the band; distinct costs mean a strict min would be
        // decided by cost alone.
        assert!(costs.iter().all(|&c| c <= fastest * 1.25));
        assert!(costs.windows(2).any(|p| p[0] != p[1]));
        let fastest_id = (0..3)
            .min_by(|&a, &b| costs[a].total_cmp(&costs[b]))
            .unwrap();
        // Specialize the fastest device; the cold job must go elsewhere.
        fleet.devices[fastest_id].mark_warm(100, 10);
        fleet.devices[fastest_id].mark_warm(101, 10);
        let queue = vec![job(0, 10, 7)];
        let (_, placed) = CacheAffinity.next_assignment(&queue, &fleet, 0.0).unwrap();
        assert_ne!(
            placed, fastest_id,
            "cold job funneled to the specialized fastest device"
        );
    }

    #[test]
    fn affinity_holds_a_job_for_its_warm_device_when_the_wait_is_short() {
        let mut fleet = fleet(2);
        fleet.devices[0].mark_warm(7, 30);
        fleet.devices[0].busy_until = 1.0; // frees up in 1 virtual second
        let queue = vec![job(0, 30, 7)];
        // Cold embedding of lps 30 costs far more than a 1-second wait, so
        // the scheduler declines to burn device 1 on it.
        assert_eq!(CacheAffinity.next_assignment(&queue, &fleet, 0.0), None);
        // Once the warm device is idle, the job goes there.
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 1.0),
            Some((0, 0))
        );
    }

    #[test]
    fn wfq_alternates_lanes_under_equal_weights() {
        // Tenant 1 has flooded the queue; tenant 0 has one job waiting.
        // Equal weights: the starved lane's start tag is the virtual time,
        // the flooder's finish tag has advanced, so tenant 0 goes first.
        let fleet = fleet(1);
        let mut wfq = WeightedFairQueue::new();
        let queue = vec![
            tenant_job(0, 1, 10, 1),
            tenant_job(1, 1, 10, 1),
            tenant_job(2, 0, 10, 2),
            tenant_job(3, 1, 10, 1),
        ];
        // First dispatch: both lanes at tag 0; tie breaks to tenant 0.
        assert_eq!(wfq.next_assignment(&queue, &fleet, 0.0), Some((2, 0)));
        // Tenant 0's lane is now charged; tenant 1 is up next.
        let queue = vec![
            tenant_job(0, 1, 10, 1),
            tenant_job(1, 1, 10, 1),
            tenant_job(3, 1, 10, 1),
            tenant_job(4, 0, 10, 2),
        ];
        assert_eq!(wfq.next_assignment(&queue, &fleet, 0.0), Some((0, 0)));
        // And having served one job each, it alternates back to tenant 0.
        let queue = vec![
            tenant_job(1, 1, 10, 1),
            tenant_job(3, 1, 10, 1),
            tenant_job(4, 0, 10, 2),
        ];
        assert_eq!(wfq.next_assignment(&queue, &fleet, 0.0), Some((2, 0)));
    }

    #[test]
    fn wfq_weights_bias_the_share() {
        // Tenant 0 carries weight 3: it should win ~3 dispatches for every
        // 1 of tenant 1 when both lanes stay backlogged.
        let fleet = fleet(1);
        let mut wfq = WeightedFairQueue::with_weights(vec![3.0, 1.0]);
        let mut wins = [0usize; 2];
        let mut queue: Vec<Job> = (0..40)
            .map(|i| tenant_job(i, i % 2, 10, (i % 2) as u64 + 1))
            .collect();
        for _ in 0..24 {
            let (qi, _) = wfq.next_assignment(&queue, &fleet, 0.0).unwrap();
            wins[queue[qi].tenant.index()] += 1;
            queue.remove(qi);
        }
        // 3:1 long-run split, with a one-dispatch tolerance for f64 tag
        // accumulation at exact ties.
        assert_eq!(wins[0] + wins[1], 24);
        assert!(
            (17..=19).contains(&wins[0]),
            "weight-3 tenant took {} of 24 dispatches, expected ~18",
            wins[0]
        );
    }

    #[test]
    fn wfq_picks_the_warm_device_within_a_lane() {
        let mut fleet = fleet(3);
        fleet.devices[2].mark_warm(7, 10);
        let queue = vec![tenant_job(0, 0, 10, 7)];
        assert_eq!(
            WeightedFairQueue::new().next_assignment(&queue, &fleet, 0.0),
            Some((0, 2)),
            "the lane's placement must exploit the warm cache"
        );
    }

    #[test]
    fn wfq_blocked_lane_does_not_block_other_tenants() {
        let mut fleet = fleet(2);
        // Tenant 0's head only fits device 1, which is busy; tenant 1's job
        // fits device 0 and must not wait behind the blocked lane.
        fleet.devices[0].capacity_lps = 5;
        fleet.devices[1].busy_until = 100.0;
        let queue = vec![tenant_job(0, 0, 10, 1), tenant_job(1, 1, 4, 2)];
        assert_eq!(
            WeightedFairQueue::new().next_assignment(&queue, &fleet, 0.0),
            Some((1, 0))
        );
    }

    #[test]
    fn wfq_charges_warm_jobs_less_virtual_time() {
        // Tenant 0's topology is warm: its per-job charge is tiny, so it
        // keeps winning the lane race over the cold tenant many times in a
        // row — warm re-use genuinely consumes less of the share.  The
        // sizes are large enough that the modeled embed cost (∝ LPS³)
        // dwarfs the fixed overhead, so warm and cold charges differ by an
        // order of magnitude.
        let mut fleet = fleet(1);
        fleet.devices[0].mark_warm(7, 30);
        let mut wfq = WeightedFairQueue::new();
        let mut queue: Vec<Job> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    tenant_job(i, 0, 30, 7) // warm lane
                } else {
                    tenant_job(i, 1, 30, 8) // cold lane
                }
            })
            .collect();
        // First two dispatches: one from each lane (tags start equal).
        for _ in 0..2 {
            let (qi, _) = wfq.next_assignment(&queue, &fleet, 0.0).unwrap();
            queue.remove(qi);
        }
        // From here the cold lane's finish tag towers over the warm lane's:
        // several consecutive dispatches come from tenant 0.
        let mut consecutive_warm = 0;
        while let Some((qi, _)) = wfq.next_assignment(&queue, &fleet, 0.0) {
            if queue[qi].tenant.index() != 0 {
                break;
            }
            consecutive_warm += 1;
            queue.remove(qi);
        }
        assert!(
            consecutive_warm >= 3,
            "warm lane should be charged far less virtual time \
             (got {consecutive_warm} consecutive warm dispatches)"
        );
    }

    #[test]
    fn edf_dispatches_the_earliest_deadline_first() {
        let fleet = fleet(1);
        let queue = vec![
            deadline_job(0, 10, 1, 50.0),
            deadline_job(1, 10, 2, 20.0),
            deadline_job(2, 10, 3, 35.0),
        ];
        assert_eq!(
            EarliestDeadlineFirst.next_assignment(&queue, &fleet, 0.0),
            Some((1, 0))
        );
    }

    #[test]
    fn edf_ranks_deadline_free_jobs_behind_and_fifo_among_themselves() {
        let fleet = fleet(1);
        // Deadline-free jobs queued first must still lose to a later job
        // with a deadline...
        let queue = vec![job(0, 10, 1), job(1, 10, 2), deadline_job(2, 10, 3, 99.0)];
        assert_eq!(
            EarliestDeadlineFirst.next_assignment(&queue, &fleet, 0.0),
            Some((2, 0))
        );
        // ...and an all-deadline-free queue degrades to FIFO.
        let queue = vec![job(0, 10, 1), job(1, 10, 2)];
        assert_eq!(
            EarliestDeadlineFirst.next_assignment(&queue, &fleet, 0.0),
            Some((0, 0))
        );
    }

    #[test]
    fn edf_skips_an_infeasible_head_instead_of_blocking() {
        let mut fleet = fleet(1);
        fleet.devices[0].capacity_lps = 12;
        // The tightest-deadline job does not fit the only device; the next
        // deadline must dispatch instead of the queue stalling.
        let queue = vec![deadline_job(0, 40, 1, 10.0), deadline_job(1, 10, 2, 20.0)];
        assert_eq!(
            EarliestDeadlineFirst.next_assignment(&queue, &fleet, 0.0),
            Some((1, 0))
        );
    }

    #[test]
    fn wfq_edf_lane_reorders_within_a_tenant_only() {
        let fleet = fleet(1);
        // One tenant, three jobs, deadlines out of submission order: the
        // EDF lane serves the tightest first.
        let queue = vec![
            Job {
                deadline: Some(60.0),
                ..tenant_job(0, 0, 10, 1)
            },
            Job {
                deadline: Some(15.0),
                ..tenant_job(1, 0, 10, 2)
            },
            Job {
                deadline: Some(30.0),
                ..tenant_job(2, 0, 10, 3)
            },
        ];
        assert_eq!(
            WeightedFairQueue::new().next_assignment(&queue, &fleet, 0.0),
            Some((1, 0)),
            "EDF lane must promote the tightest deadline"
        );
        // FIFO lanes keep submission order on the identical queue.
        assert_eq!(
            WeightedFairQueue::new()
                .with_lane_order(LaneOrder::Fifo)
                .next_assignment(&queue, &fleet, 0.0),
            Some((0, 0)),
            "FIFO lane must keep submission order"
        );
    }

    #[test]
    fn wfq_edf_lane_preserves_cross_tenant_alternation() {
        // Two tenants with equal weights: even though tenant 1's deadlines
        // are far tighter, the lane race still alternates — in-lane EDF
        // must not leak into cross-lane priority.
        let fleet = fleet(1);
        let mut wfq = WeightedFairQueue::new();
        let mut queue = vec![
            Job {
                deadline: Some(1.0),
                ..tenant_job(0, 1, 10, 1)
            },
            Job {
                deadline: Some(2.0),
                ..tenant_job(1, 1, 10, 1)
            },
            Job {
                deadline: Some(900.0),
                ..tenant_job(2, 0, 10, 2)
            },
            Job {
                deadline: Some(901.0),
                ..tenant_job(3, 0, 10, 2)
            },
        ];
        let mut order = Vec::new();
        for _ in 0..4 {
            let (qi, _) = wfq.next_assignment(&queue, &fleet, 0.0).unwrap();
            order.push(queue[qi].tenant.index());
            queue.remove(qi);
        }
        assert_eq!(order, vec![0, 1, 0, 1], "lanes must still alternate");
    }

    #[test]
    fn wfq_edf_lane_matches_fifo_lane_on_deadline_free_queues() {
        let fleet = fleet(2);
        let queue: Vec<Job> = (0..6).map(|i| tenant_job(i, i % 2, 10, 1)).collect();
        let mut edf_lane = WeightedFairQueue::new();
        let mut fifo_lane = WeightedFairQueue::new().with_lane_order(LaneOrder::Fifo);
        assert_eq!(
            edf_lane.next_assignment(&queue, &fleet, 0.0),
            fifo_lane.next_assignment(&queue, &fleet, 0.0),
            "without deadlines the lane orders must agree"
        );
        assert_eq!(edf_lane.name(), "wfq");
        assert_eq!(fifo_lane.name(), "wfq-fifo");
    }

    #[test]
    fn policy_kind_parses_and_displays() {
        assert_eq!("fifo".parse::<PolicyKind>().unwrap(), PolicyKind::Fifo);
        assert_eq!(
            "edf".parse::<PolicyKind>().unwrap(),
            PolicyKind::EarliestDeadline
        );
        assert_eq!(
            "SPJF".parse::<PolicyKind>().unwrap(),
            PolicyKind::ShortestPredictedFirst
        );
        assert_eq!(
            "cache-affinity".parse::<PolicyKind>().unwrap(),
            PolicyKind::CacheAffinity
        );
        assert_eq!(
            "weighted-fair".parse::<PolicyKind>().unwrap(),
            PolicyKind::WeightedFair
        );
        assert!("nope".parse::<PolicyKind>().is_err());
        for kind in PolicyKind::all() {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
