//! Pluggable scheduling policies.
//!
//! Whenever a device goes idle or a job arrives, the engine repeatedly asks
//! the active [`Scheduler`] for one `(job, device)` assignment until it
//! declines; the engine then dispatches the pair and charges the service
//! time.  All policies must be deterministic — ties are broken by job
//! arrival order and device id — so a seeded simulation replays exactly.
//!
//! Three policies ship:
//!
//! * [`Fifo`] — strict arrival order with head-of-line blocking: the head
//!   job waits for a feasible idle device and nothing overtakes it.  The
//!   baseline, and the policy whose no-reordering property is proptested.
//! * [`ShortestPredictedFirst`] — the classic SJF heuristic with the
//!   paper's analytic model as the oracle: among queued jobs and idle
//!   devices, dispatch the pair with the smallest predicted service time
//!   (cache-aware, so a warm topology counts as short).
//! * [`CacheAffinity`] — route jobs to the device whose embedding cache
//!   already holds their topology; cold jobs are spread to the idle device
//!   with the fewest warm topologies (building specialized caches), and a
//!   job whose warm device is busy waits for it only when waiting is
//!   predicted cheaper than re-embedding cold elsewhere.

use crate::fleet::Fleet;
use crate::job::Job;

/// A scheduling policy.
///
/// `queue` is the pending jobs in arrival order; implementations return
/// `Some((queue_index, device_id))` to dispatch, or `None` to leave the
/// remaining queue waiting (e.g. for a busy device to free up).  The engine
/// guarantees every returned device is idle at `now` and re-invokes the
/// method until it returns `None`.
pub trait Scheduler {
    /// Stable policy name used in reports.
    fn name(&self) -> &'static str;

    /// Choose the next `(queue index, device id)` assignment, or `None`.
    fn next_assignment(&mut self, queue: &[Job], fleet: &Fleet, now: f64)
        -> Option<(usize, usize)>;
}

/// First-in-first-out with head-of-line blocking.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        let head = queue.first()?;
        let device = fleet
            .idle_devices(now)
            .into_iter()
            .find(|&d| fleet.devices[d].can_run(head.lps))?;
        Some((0, device))
    }
}

/// Shortest-predicted-job-first over the analytic cost oracle.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShortestPredictedFirst;

impl Scheduler for ShortestPredictedFirst {
    fn name(&self) -> &'static str {
        "spjf"
    }

    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        let idle = fleet.idle_devices(now);
        let mut best: Option<(f64, usize, usize)> = None;
        for (qi, job) in queue.iter().enumerate() {
            for &d in &idle {
                let device = &fleet.devices[d];
                if !device.can_run(job.lps) {
                    continue;
                }
                let Ok(predicted) = device.predicted_service_seconds(job.lps, job.topology_key)
                else {
                    continue;
                };
                // Strict `<` keeps the earliest (queue-order, id-order)
                // candidate on ties, so the policy is deterministic.
                if best.map(|(t, _, _)| predicted < t).unwrap_or(true) {
                    best = Some((predicted, qi, d));
                }
            }
        }
        best.map(|(_, qi, d)| (qi, d))
    }
}

/// Embedding-cache-affinity routing.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheAffinity;

impl Scheduler for CacheAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn next_assignment(
        &mut self,
        queue: &[Job],
        fleet: &Fleet,
        now: f64,
    ) -> Option<(usize, usize)> {
        let idle = fleet.idle_devices(now);
        if idle.is_empty() {
            return None;
        }

        // Pass 1: oldest job whose topology is warm on an idle device.
        for (qi, job) in queue.iter().enumerate() {
            if let Some(&d) = idle.iter().find(|&&d| {
                fleet.devices[d].can_run(job.lps) && fleet.devices[d].is_warm(job.topology_key)
            }) {
                return Some((qi, d));
            }
        }

        // Pass 2: place a job that must embed cold anyway.  Spread cold
        // embeds to the least-specialized idle device so caches partition
        // the topology space instead of all devices learning everything.
        for (qi, job) in queue.iter().enumerate() {
            let warm_somewhere = fleet
                .devices
                .iter()
                .any(|dev| dev.is_warm(job.topology_key));
            if warm_somewhere {
                // Its warm device is busy (pass 1 would have taken it).
                // Wait for that device only when wait + warm service is
                // predicted to finish sooner than re-embedding cold on an
                // idle one.
                let warm_finish = fleet
                    .devices
                    .iter()
                    .filter(|dev| dev.is_warm(job.topology_key) && dev.can_run(job.lps))
                    .filter_map(|dev| {
                        let warm_service = dev
                            .predicted_service_seconds(job.lps, job.topology_key)
                            .ok()?;
                        Some((dev.busy_until - now).max(0.0) + warm_service)
                    })
                    .fold(f64::INFINITY, f64::min);
                let cold_cost = idle
                    .iter()
                    .filter(|&&d| fleet.devices[d].can_run(job.lps))
                    .filter_map(|&d| {
                        fleet.devices[d]
                            .predicted_service_seconds(job.lps, job.topology_key)
                            .ok()
                    })
                    .fold(f64::INFINITY, f64::min);
                if warm_finish < cold_cost {
                    continue; // hold this job for its warm device
                }
            }
            let placement = idle
                .iter()
                .filter(|&&d| fleet.devices[d].can_run(job.lps))
                .min_by_key(|&&d| (fleet.devices[d].warm_topologies(), d));
            if let Some(&d) = placement {
                return Some((qi, d));
            }
        }
        None
    }
}

/// Policy selection by name, for CLI surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fifo`].
    Fifo,
    /// [`ShortestPredictedFirst`].
    ShortestPredictedFirst,
    /// [`CacheAffinity`].
    CacheAffinity,
}

impl PolicyKind {
    /// All policies, in comparison-table order.
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::Fifo,
            PolicyKind::ShortestPredictedFirst,
            PolicyKind::CacheAffinity,
        ]
    }

    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::ShortestPredictedFirst => Box::new(ShortestPredictedFirst),
            PolicyKind::CacheAffinity => Box::new(CacheAffinity),
        }
    }

    /// The policy's stable name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::ShortestPredictedFirst => "spjf",
            PolicyKind::CacheAffinity => "affinity",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fifo" => Ok(PolicyKind::Fifo),
            "spjf" | "sjf" | "shortest" => Ok(PolicyKind::ShortestPredictedFirst),
            "affinity" | "cache" | "cache-affinity" => Ok(PolicyKind::CacheAffinity),
            other => Err(format!(
                "unknown scheduling policy '{other}' (expected fifo, spjf or affinity)"
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use split_exec::SplitExecConfig;

    fn fleet(qpus: usize) -> Fleet {
        Fleet::new(
            FleetConfig {
                qpus,
                qubit_fault_rate: 0.0,
                coupler_fault_rate: 0.0,
                seed: 1,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(1),
        )
    }

    fn job(id: usize, lps: usize, key: u64) -> Job {
        Job {
            id,
            family: format!("test-{lps}"),
            lps,
            topology_key: key,
            arrival: id as f64,
        }
    }

    #[test]
    fn fifo_takes_the_head_job_on_the_lowest_idle_device() {
        let fleet = fleet(2);
        let queue = vec![job(0, 10, 1), job(1, 8, 2)];
        assert_eq!(Fifo.next_assignment(&queue, &fleet, 0.0), Some((0, 0)));
    }

    #[test]
    fn fifo_blocks_at_the_head() {
        let mut fleet = fleet(2);
        // Head job only fits device 1; device 1 busy ⇒ nothing dispatches
        // even though device 0 could serve the second job.
        fleet.devices[0].capacity_lps = 5;
        fleet.devices[1].busy_until = 100.0;
        let queue = vec![job(0, 10, 1), job(1, 4, 2)];
        assert_eq!(Fifo.next_assignment(&queue, &fleet, 0.0), None);
    }

    #[test]
    fn spjf_prefers_the_warm_short_job() {
        let mut fleet = fleet(1);
        fleet.devices[0].mark_warm(42);
        let queue = vec![job(0, 10, 1), job(1, 10, 42)];
        // Same size, but job 1 is warm on device 0 ⇒ far shorter predicted.
        assert_eq!(
            ShortestPredictedFirst.next_assignment(&queue, &fleet, 0.0),
            Some((1, 0))
        );
    }

    #[test]
    fn spjf_breaks_ties_by_arrival_order() {
        let fleet = fleet(1);
        let queue = vec![job(0, 10, 1), job(1, 10, 2)];
        assert_eq!(
            ShortestPredictedFirst.next_assignment(&queue, &fleet, 0.0),
            Some((0, 0))
        );
    }

    #[test]
    fn affinity_routes_warm_jobs_to_their_device() {
        let mut fleet = fleet(3);
        fleet.devices[2].mark_warm(7);
        let queue = vec![job(0, 10, 7)];
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 0.0),
            Some((0, 2))
        );
    }

    #[test]
    fn affinity_spreads_cold_jobs_to_least_specialized_device() {
        let mut fleet = fleet(3);
        fleet.devices[0].mark_warm(100);
        fleet.devices[0].mark_warm(101);
        fleet.devices[1].mark_warm(102);
        let queue = vec![job(0, 10, 7)];
        // Device 2 has the emptiest cache.
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 0.0),
            Some((0, 2))
        );
    }

    #[test]
    fn affinity_holds_a_job_for_its_warm_device_when_the_wait_is_short() {
        let mut fleet = fleet(2);
        fleet.devices[0].mark_warm(7);
        fleet.devices[0].busy_until = 1.0; // frees up in 1 virtual second
        let queue = vec![job(0, 30, 7)];
        // Cold embedding of lps 30 costs far more than a 1-second wait, so
        // the scheduler declines to burn device 1 on it.
        assert_eq!(CacheAffinity.next_assignment(&queue, &fleet, 0.0), None);
        // Once the warm device is idle, the job goes there.
        assert_eq!(
            CacheAffinity.next_assignment(&queue, &fleet, 1.0),
            Some((0, 0))
        );
    }

    #[test]
    fn policy_kind_parses_and_displays() {
        assert_eq!("fifo".parse::<PolicyKind>().unwrap(), PolicyKind::Fifo);
        assert_eq!(
            "SPJF".parse::<PolicyKind>().unwrap(),
            PolicyKind::ShortestPredictedFirst
        );
        assert_eq!(
            "cache-affinity".parse::<PolicyKind>().unwrap(),
            PolicyKind::CacheAffinity
        );
        assert!("nope".parse::<PolicyKind>().is_err());
        for kind in PolicyKind::all() {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
