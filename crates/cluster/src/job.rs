//! Jobs: what flows through the simulated datacenter.
//!
//! A [`Job`] is the simulator's view of one QUBO submission — the logical
//! problem size that drives the analytic service-time model, the canonical
//! key of its interaction topology (what an embedding cache would key on),
//! and its arrival time.  The full coefficient matrix is irrelevant to the
//! queueing behavior: two jobs with the same interaction topology are
//! interchangeable for stage-1 purposes (that is precisely the observation
//! the offline embedding cache exploits), so the workload generator reduces
//! each generated problem instance to this record.

use crate::tenant::TenantId;
use serde::{Deserialize, Serialize};

/// One QUBO job in flight through the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Workload-wide index, also the submission order.
    pub id: usize,
    /// The tenant that submitted this job ([`TenantId::DEFAULT`] in
    /// single-tenant workloads).
    pub tenant: TenantId,
    /// Human-readable problem-family label (e.g. `maxcut-cycle-12`).
    ///
    /// Stored refcounted rather than as an owned `String`: the dispatch
    /// loop clones the `Job` once per arrival event, and an `Arc<str>`
    /// clone is a refcount bump instead of a heap allocation — part of the
    /// zero-allocation steady-state contract pinned by
    /// `crates/cluster/tests/alloc_budget.rs`.
    pub family: std::sync::Arc<str>,
    /// Logical problem size (number of logical spins) — the `LPS` parameter
    /// of the paper's stage models.
    pub lps: usize,
    /// Canonical key of the job's interaction topology
    /// ([`split_exec::offline_cache::graph_key`]); jobs sharing a key share
    /// an embedding.
    pub topology_key: u64,
    /// Arrival time in virtual seconds (ignored in closed-loop mode).
    pub arrival: f64,
    /// Completion deadline in absolute virtual seconds (`None` = the job
    /// carries no SLO).  Deadlines are stamped by the workload generator's
    /// [`DeadlinePolicy`](crate::workload::DeadlinePolicy) and consumed by
    /// the EDF-flavored schedulers, deadline-aware admission control and the
    /// SLO metrics.
    pub deadline: Option<f64>,
}

/// Everything the metrics layer records about one finished job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's workload index.
    pub job: usize,
    /// The tenant that submitted the job.
    pub tenant: TenantId,
    /// Device that served it.
    pub qpu: usize,
    /// Arrival time (virtual seconds).
    pub arrival: f64,
    /// Time service began.
    pub start: f64,
    /// Time service finished.
    pub finish: f64,
    /// Stage-1 service seconds actually charged (warm or cold).
    pub stage1_seconds: f64,
    /// Stage-2 service seconds.
    pub stage2_seconds: f64,
    /// Stage-3 service seconds.
    pub stage3_seconds: f64,
    /// Whether the device's embedding cache was warm for this topology.
    pub warm_hit: bool,
    /// The job's completion deadline (absolute virtual seconds), if it
    /// carried one.
    pub deadline: Option<f64>,
}

impl JobRecord {
    /// Queueing delay: seconds between arrival and service start.
    pub fn wait_seconds(&self) -> f64 {
        self.start - self.arrival
    }

    /// Service time: seconds between start and finish.
    pub fn service_seconds(&self) -> f64 {
        self.finish - self.start
    }

    /// End-to-end latency: seconds between arrival and finish.
    pub fn latency_seconds(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Whether the job missed its deadline (`None` for deadline-free jobs).
    pub fn slo_miss(&self) -> Option<bool> {
        self.deadline.map(|d| self.finish > d)
    }

    /// How late the job finished relative to its deadline, clamped at zero
    /// for on-time completions (`None` for deadline-free jobs).
    pub fn lateness_seconds(&self) -> Option<f64> {
        self.deadline.map(|d| (self.finish - d).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_derived_times_are_consistent() {
        let r = JobRecord {
            job: 0,
            tenant: TenantId::DEFAULT,
            qpu: 1,
            arrival: 2.0,
            start: 5.0,
            finish: 9.0,
            stage1_seconds: 3.0,
            stage2_seconds: 0.5,
            stage3_seconds: 0.5,
            warm_hit: false,
            deadline: None,
        };
        assert_eq!(r.wait_seconds(), 3.0);
        assert_eq!(r.service_seconds(), 4.0);
        assert_eq!(r.latency_seconds(), 7.0);
        assert_eq!(r.wait_seconds() + r.service_seconds(), r.latency_seconds());
        assert_eq!(r.slo_miss(), None);
        assert_eq!(r.lateness_seconds(), None);
    }

    #[test]
    fn deadline_derived_fields_classify_misses() {
        let base = JobRecord {
            job: 0,
            tenant: TenantId::DEFAULT,
            qpu: 0,
            arrival: 0.0,
            start: 1.0,
            finish: 10.0,
            stage1_seconds: 8.0,
            stage2_seconds: 0.5,
            stage3_seconds: 0.5,
            warm_hit: false,
            deadline: Some(12.0),
        };
        assert_eq!(base.slo_miss(), Some(false));
        assert_eq!(base.lateness_seconds(), Some(0.0));
        let late = JobRecord {
            deadline: Some(7.5),
            ..base
        };
        assert_eq!(late.slo_miss(), Some(true));
        assert_eq!(late.lateness_seconds(), Some(2.5));
    }
}
