//! # sx-cluster — a discrete-event datacenter simulator for QUBO job streams
//!
//! The source paper models a *single* split-execution machine and finds
//! that stage-1 pre-processing (minor embedding) dominates time-to-solution.
//! This crate scales that performance model up to the ROADMAP's target
//! shape: a *stream* of QUBO jobs contending for a *fleet* of annealers,
//! served by a scheduler.  It is a deterministic discrete-event simulator
//! in the style of dslab:
//!
//! * [`event`] — a binary-heap future-event list on a virtual clock; no
//!   wall time anywhere, so runs replay bit-identically from their seeds.
//! * [`fleet`] — each simulated QPU carries its own
//!   [`chimera_graph::FaultModel`] (fault maps differ per device, so
//!   capacity and stage-1 cost differ per device) plus a per-device warm
//!   embedding set mirroring [`split_exec::EmbeddingCache`].  Fleets may be
//!   *heterogeneous* ([`FleetConfig::heterogeneous`]): DW2X- and
//!   Vesuvius-class devices differ in lattice size, and therefore in both
//!   embedding capacity and per-stage timing.
//! * [`cache`] — finite embedding-table capacity: each device's warm set is
//!   a bounded [`WarmCache`] behind the [`EvictionPolicy`] trait, with
//!   [`Lru`] and [`CostAware`] (evict the topology cheapest to re-embed,
//!   priced by [`split_exec::CostModel`]) shipping.  Warm hits refresh
//!   recency; capacity below the workload's topology diversity produces the
//!   hit-rate cliff the `cache_cliff` bench sweep maps.
//! * [`workload`] — seeded open workloads (Poisson, bursty) over real
//!   problem families from [`qubo_ising::problems`]; topology keys come
//!   from the actual QUBO → Ising reduction.  Jobs can carry completion
//!   *deadlines*, stamped by a per-spec [`DeadlinePolicy`] (fixed slack,
//!   or slack proportional to predicted service).  Specs are validated up
//!   front ([`WorkloadSpec::validate`]) so degenerate parameters surface
//!   as [`WorkloadError`]s instead of NaN arrival times or panics.
//! * [`tenant`] — multi-tenancy: every job carries a [`TenantId`], and
//!   [`MultiTenantSpec`] composes N tenants (each with its own arrival
//!   process, topology mix, fair-share weight and deadline policy) into
//!   one deterministic stream.
//! * [`admission`] — the gate between arrival and the scheduler: an
//!   [`AdmissionController`] accepts, sheds or defers each arriving job
//!   against per-tenant budgets; [`TokenBucket`] ships (rate budget, burst
//!   cap, queue-depth limit, bounded deferral, and optional
//!   deadline-infeasibility shedding: a job whose deadline is already
//!   unreachable under the engine's best-case completion estimate is shed
//!   instead of queueing doomed work).
//! * [`scheduler`] — pluggable policies behind the [`Scheduler`] trait:
//!   FIFO, shortest-predicted-job-first (the paper's analytic model as the
//!   cost oracle, via [`split_exec::CostModel`], with arrival-time aging so
//!   sustained short-job streams cannot starve large jobs),
//!   embedding-cache-affinity routing that weighs device speed against
//!   warmth on heterogeneous fleets, [`EarliestDeadlineFirst`] (global
//!   EDF, the deadline yardstick), and [`WeightedFairQueue`] —
//!   virtual-time weighted fair queueing over per-tenant lanes (EDF order
//!   inside each lane by default, [`LaneOrder`]), so a tenant within its
//!   fair share keeps its latency no matter how hard another tenant floods
//!   the fleet, while tight-deadline jobs still jump their own lane.
//! * [`sim`] — the engine; [`metrics`] — latency percentiles
//!   (via [`quantum_anneal::stats::percentile`]), per-stage breakdown,
//!   per-QPU utilization and cache behavior (hit rate, evictions),
//!   queue-depth and hit-rate-vs-capacity series ([`CacheCliffSeries`]),
//!   per-tenant percentiles/shed/deferral counts ([`TenantStats`]) with
//!   Jain's fairness index and max-min share, per-tenant and global
//!   SLO-miss counts, miss-rates and lateness percentiles, and export to
//!   the shared [`split_exec::BatchSummary`] report format.
//! * [`json`] — deterministic hand-rolled JSON emission ([`JsonValue`],
//!   `SimReport::to_json`) so sweeps are machine-readable without a
//!   registry serde, plus a real RFC 8259 parser ([`json::parse`]) used to
//!   validate every emitted document.
//! * [`telemetry`] — the observability layer (`docs/OBSERVABILITY.md`):
//!   pluggable [`TraceSink`]s (null / retained / JSONL streaming /
//!   Perfetto export) so trace retention is a policy instead of a default,
//!   a [`MetricsRegistry`] sampling queue depth, utilization, hit-rate and
//!   lane depth on the virtual clock, [`StreamingHistogram`] quantile
//!   sketches (mergeable, documented error bound) for percentiles without
//!   record retention, and host-side engine profiling
//!   ([`telemetry::EnginePerf`]) feeding the `BENCH_cluster.json` perf
//!   baseline.
//!
//! Service times are the paper's own stage models ([`split_exec::cost`]),
//! so the simulator is the paper's performance model instantiated at fleet
//! scale — and its aggregate breakdown reproduces the headline
//! (stage 1 ≫ stage 2) for every policy.
//!
//! ```
//! use sx_cluster::prelude::*;
//! use split_exec::SplitExecConfig;
//!
//! let workload = WorkloadSpec::repeated_topologies(30, 0.05, 7).generate();
//! let fleet = Fleet::new(FleetConfig::default(), SplitExecConfig::with_seed(7));
//! let mut policy = PolicyKind::CacheAffinity.build();
//! let report = simulate(fleet, &workload, policy.as_mut(), SimConfig::default());
//! assert_eq!(report.completed + report.rejected, 30);
//! assert!(report.stage1_fraction() > 0.9); // the paper's headline, fleet-scale
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code reports through `Display`/`to_json`, never the terminal —
// stray prints would corrupt the machine-readable sweep output.
#![warn(clippy::print_stdout)]

pub mod admission;
pub mod cache;
pub mod event;
pub mod fleet;
pub mod job;
pub mod json;
pub mod metrics;
pub mod replay;
pub mod scheduler;
pub mod sim;
pub mod sweep;
pub mod telemetry;
pub mod tenant;
pub mod workload;

pub use admission::{
    AdmissionContext, AdmissionController, AdmissionDecision, AdmitAll, TokenBucket,
    TokenBucketConfig,
};
pub use cache::{AdmissionPolicy, CostAware, EvictionPolicy, EvictionPolicyKind, Lru, WarmCache};
pub use event::{Event, EventKind, EventQueue};
pub use fleet::{Fleet, FleetConfig, QpuDevice};
pub use job::{Job, JobRecord};
pub use json::JsonValue;
pub use metrics::{
    jains_index, CacheCliffSeries, CachePoint, LatencyStats, QpuStats, SimReport, TenantStats,
};
pub use replay::{
    check_replay, fleet_fingerprint, parse_arrival_trace, parse_flight_record,
    render_arrival_trace, replay_run, workload_digest, FlightHeader, FlightRecord, RecordedRun,
    RecordedTrace, RecorderSink, ReplayCheck, ReplayError, SchedulerSpec, TraceReader,
    ARRIVAL_SCHEMA, FLIGHT_SCHEMA,
};
pub use scheduler::{
    CacheAffinity, EarliestDeadlineFirst, Fifo, LaneOrder, PolicyKind, Scheduler,
    ShortestPredictedFirst, WeightedFairQueue,
};
pub use sim::{
    simulate, simulate_with_admission, simulate_with_telemetry, PercentileMode, SimConfig,
    TraceRecord, WorkloadMode,
};
pub use sweep::{
    run_cell, run_sweep, AdmissionSpec, CellResult, CellSpec, MergedAggregates, RateCalibration,
    SweepOutcome, SweepPlan,
};
pub use telemetry::{
    time_host, EnginePerf, FanoutSink, HostStopwatch, JsonlSink, MetricsRegistry, NullSink,
    PerfettoSink, SimSeries, StreamingHistogram, TraceSink, VecSink,
};
pub use tenant::{MultiTenantSpec, TenantId, TenantMeta, TenantSpec};
pub use workload::{
    ArrivalProcess, DeadlinePolicy, FamilySpec, Workload, WorkloadError, WorkloadSpec,
};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::admission::{
        AdmissionContext, AdmissionController, AdmissionDecision, AdmitAll, TokenBucket,
        TokenBucketConfig,
    };
    pub use crate::cache::{
        AdmissionPolicy, CostAware, EvictionPolicy, EvictionPolicyKind, Lru, WarmCache,
    };
    pub use crate::event::{Event, EventKind, EventQueue};
    pub use crate::fleet::{Fleet, FleetConfig, QpuDevice};
    pub use crate::job::{Job, JobRecord};
    pub use crate::json::JsonValue;
    pub use crate::metrics::{
        jains_index, CacheCliffSeries, CachePoint, LatencyStats, QpuStats, SimReport, TenantStats,
    };
    pub use crate::replay::{
        check_replay, fleet_fingerprint, parse_arrival_trace, parse_flight_record,
        render_arrival_trace, replay_run, workload_digest, FlightHeader, FlightRecord, RecordedRun,
        RecordedTrace, RecorderSink, ReplayCheck, ReplayError, SchedulerSpec, TraceReader,
        ARRIVAL_SCHEMA, FLIGHT_SCHEMA,
    };
    pub use crate::scheduler::{
        CacheAffinity, EarliestDeadlineFirst, Fifo, LaneOrder, PolicyKind, Scheduler,
        ShortestPredictedFirst, WeightedFairQueue,
    };
    pub use crate::sim::{
        simulate, simulate_with_admission, simulate_with_telemetry, PercentileMode, SimConfig,
        TraceRecord, WorkloadMode,
    };
    pub use crate::sweep::{
        run_cell, run_sweep, AdmissionSpec, CellResult, CellSpec, MergedAggregates,
        RateCalibration, SweepOutcome, SweepPlan,
    };
    pub use crate::telemetry::{
        time_host, EnginePerf, FanoutSink, HostStopwatch, JsonlSink, MetricsRegistry, NullSink,
        PerfettoSink, SimSeries, StreamingHistogram, TraceSink, VecSink,
    };
    pub use crate::tenant::{MultiTenantSpec, TenantId, TenantMeta, TenantSpec};
    pub use crate::workload::{
        ArrivalProcess, DeadlinePolicy, FamilySpec, Workload, WorkloadError, WorkloadSpec,
    };
}

#[cfg(test)]
mod determinism_tests {
    //! The subsystem's core guarantee: a run is a pure function of its
    //! seeds.  Same seed + workload ⇒ bit-identical event trace and
    //! metrics.

    use crate::prelude::*;
    use split_exec::SplitExecConfig;

    fn run(policy: PolicyKind, seed: u64) -> SimReport {
        // Rate ~1 job/s against ~1–4 s services keeps several devices busy,
        // so policies genuinely differ (at negligible load every policy
        // collapses onto device 0).
        let workload = WorkloadSpec::repeated_topologies(35, 1.0, seed).generate();
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 3,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        );
        let mut scheduler = policy.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    }

    #[test]
    fn same_seed_gives_bit_identical_trace_and_metrics() {
        for policy in PolicyKind::all() {
            let a = run(policy, 17);
            let b = run(policy, 17);
            // PartialEq over the full report covers the trace, every f64
            // metric and every per-job record; equality of f64s produced by
            // the same deterministic computation is bit-identity.
            assert_eq!(a, b, "policy {policy} diverged across identical runs");
            for (ta, tb) in a.trace.iter().zip(&b.trace) {
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(PolicyKind::Fifo, 1);
        let b = run(PolicyKind::Fifo, 2);
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn bounded_caches_keep_runs_bit_identical() {
        // Eviction is part of the deterministic state machine: with finite
        // capacity under either policy, same seed ⇒ same trace.
        for eviction in EvictionPolicyKind::all() {
            let run = |seed: u64| {
                let workload = WorkloadSpec::repeated_topologies(35, 1.0, seed).generate();
                let fleet = Fleet::new(
                    FleetConfig {
                        qpus: 3,
                        seed,
                        ..FleetConfig::default()
                    }
                    .with_cache(1, eviction),
                    SplitExecConfig::with_seed(seed),
                );
                // FIFO routes by queue position alone, so every device sees
                // every topology: at capacity 1 the bound must bind.
                let mut scheduler = PolicyKind::Fifo.build();
                simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
            };
            let a = run(29);
            let b = run(29);
            assert_eq!(a, b, "{eviction} eviction broke determinism");
            assert!(a.evictions() > 0, "{eviction}: no evictions at capacity 1");
            for qpu in &a.per_qpu {
                assert!(qpu.warm_topologies <= 1);
            }
        }
    }

    #[test]
    fn multi_tenant_runs_replay_bit_identically() {
        // The tentpole's determinism claim: tenancy, WFQ virtual time and
        // token-bucket admission are all part of the deterministic state
        // machine — same seed ⇒ bit-identical report, trace included.
        let run = |seed: u64| {
            let workload = MultiTenantSpec::aggressor_victim(10, 0.6, 5.0, 2.0, seed).generate();
            let fleet = Fleet::new(
                FleetConfig {
                    qpus: 3,
                    seed,
                    ..FleetConfig::default()
                },
                SplitExecConfig::with_seed(seed),
            );
            let mut scheduler = WeightedFairQueue::for_workload(&workload);
            let mut admission = TokenBucket::new(TokenBucketConfig {
                rate_hz: 2.0,
                burst: 3.0,
                max_queue_depth: 8,
                max_defer_seconds: 50.0,
                ..TokenBucketConfig::default()
            });
            simulate_with_admission(
                fleet,
                &workload,
                &mut scheduler,
                &mut admission,
                SimConfig::default(),
            )
        };
        let a = run(31);
        let b = run(31);
        assert_eq!(a, b, "multi-tenant run diverged across identical seeds");
        assert_ne!(a.trace, run(32).trace);
        // The scenario actually exercises the new machinery.
        assert_eq!(a.per_tenant.len(), 2);
        assert_eq!(a.admission, "token-bucket");
    }

    #[test]
    fn deadline_streams_replay_bit_identically() {
        // The PR 5 determinism claim: deadline stamping, EDF lane order,
        // the engine's best-case completion estimate and infeasibility
        // shedding are all part of the deterministic state machine.
        let run = |seed: u64| {
            let workload = MultiTenantSpec::aggressor_victim(12, 0.8, 4.0, 1.0, seed)
                .with_uniform_deadlines(DeadlinePolicy::ProportionalSlack { factor: 3.0 })
                .generate();
            let fleet = Fleet::new(
                FleetConfig {
                    qpus: 3,
                    seed,
                    ..FleetConfig::default()
                },
                SplitExecConfig::with_seed(seed),
            );
            let mut scheduler = WeightedFairQueue::for_workload(&workload);
            let mut admission = TokenBucket::new(TokenBucketConfig {
                shed_infeasible: true,
                ..TokenBucketConfig::default()
            });
            simulate_with_admission(
                fleet,
                &workload,
                &mut scheduler,
                &mut admission,
                SimConfig::default(),
            )
        };
        let a = run(41);
        assert_eq!(a, run(41), "deadline run diverged across identical seeds");
        assert_ne!(a.trace, run(42).trace);
        // The run exercises the new machinery: every completed job carries
        // a deadline and the lateness summary is populated.
        assert_eq!(a.slo_jobs(), a.completed);
        assert!(a.lateness.percentiles_ordered());
    }

    #[test]
    fn affinity_beats_fifo_on_repeated_topologies() {
        // The acceptance demo in miniature: on a repeated-topology mix the
        // cache-affinity policy completes the same workload with lower mean
        // latency than FIFO, because it pays ~one cold embed per topology
        // instead of ~one per (topology, device) pair.
        let fifo = run(PolicyKind::Fifo, 23);
        let affinity = run(PolicyKind::CacheAffinity, 23);
        assert_eq!(fifo.jobs, affinity.jobs);
        assert!(affinity.cold_misses() < fifo.cold_misses());
        assert!(
            affinity.latency.mean < fifo.latency.mean,
            "affinity mean {} !< fifo mean {}",
            affinity.latency.mean,
            fifo.latency.mean
        );
    }
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;
    use split_exec::SplitExecConfig;

    fn run_fifo(seed: u64, jobs: usize, qpus: usize) -> SimReport {
        let workload = WorkloadSpec::repeated_topologies(jobs, 0.05, seed).generate();
        let fleet = Fleet::new(
            FleetConfig {
                qpus,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        );
        let mut scheduler = PolicyKind::Fifo.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// FIFO never reorders jobs that land on the same QPU: for every
        /// device, the service-start order equals the arrival order of the
        /// jobs it served.  (FIFO is globally order-preserving, so the
        /// per-device projection must be too.)
        #[test]
        fn fifo_never_reorders_same_qpu_jobs(seed in 0u64..500, jobs in 5usize..25, qpus in 1usize..4) {
            let report = run_fifo(seed, jobs, qpus);
            for qpu in 0..qpus {
                let mut served: Vec<JobRecord> = report
                    .records
                    .iter()
                    .filter(|r| r.qpu == qpu)
                    .copied()
                    .collect();
                served.sort_by(|a, b| a.start.total_cmp(&b.start));
                for pair in served.windows(2) {
                    prop_assert!(
                        pair[0].arrival <= pair[1].arrival,
                        "device {} served job {} (arrived {}) before job {} (arrived {})",
                        qpu, pair[1].job, pair[1].arrival, pair[0].job, pair[0].arrival
                    );
                    // Start order also respects submission ids.
                    prop_assert!(pair[0].job < pair[1].job);
                }
            }
        }

        /// The tentpole's safety bound, end to end: under any seed, policy
        /// and capacity, no device's warm set ever exceeds its capacity,
        /// and bounded runs stay conserved.
        #[test]
        fn warm_sets_respect_capacity_under_any_dispatch_sequence(
            seed in 0u64..300,
            capacity in 0usize..4,
            cost_aware in 0u8..2,
        ) {
            let eviction = if cost_aware == 1 {
                EvictionPolicyKind::CostAware
            } else {
                EvictionPolicyKind::Lru
            };
            for policy in PolicyKind::all() {
                let workload = WorkloadSpec::repeated_topologies(20, 1.0, seed).generate();
                let fleet = Fleet::new(
                    FleetConfig { qpus: 2, seed, ..FleetConfig::default() }
                        .with_cache(capacity, eviction),
                    SplitExecConfig::with_seed(seed),
                );
                let mut scheduler = policy.build();
                let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
                prop_assert_eq!(report.completed + report.rejected, report.jobs);
                for qpu in &report.per_qpu {
                    prop_assert!(
                        qpu.warm_topologies <= capacity,
                        "device {} holds {} topologies with capacity {}",
                        qpu.qpu, qpu.warm_topologies, capacity
                    );
                }
            }
        }

        /// Conservation: every job completes or is rejected, exactly once,
        /// under every policy.
        #[test]
        fn jobs_are_conserved(seed in 0u64..200) {
            for policy in PolicyKind::all() {
                let workload = WorkloadSpec::mixed(12, 0.1, seed).generate();
                let fleet = Fleet::new(
                    FleetConfig { qpus: 2, seed, ..FleetConfig::default() },
                    SplitExecConfig::with_seed(seed),
                );
                let mut scheduler = policy.build();
                let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
                prop_assert_eq!(report.completed + report.rejected, report.jobs);
                prop_assert_eq!(report.records.len(), report.completed);
            }
        }

        /// The WFQ liveness guarantee: under any seed, arrival asymmetry
        /// and weight skew, every admitted job of every positive-weight
        /// tenant eventually dispatches — the aggressor cannot starve the
        /// victim's lane out of existence.
        #[test]
        fn wfq_never_starves_a_positive_weight_tenant(
            seed in 0u64..100,
            asymmetry in 2u8..12,
            victim_weight_tenths in 1u32..40,
        ) {
            let workload = MultiTenantSpec::aggressor_victim(
                6,
                0.8,
                asymmetry as f64,
                victim_weight_tenths as f64 / 10.0,
                seed,
            )
            .generate();
            let fleet = Fleet::new(
                FleetConfig { qpus: 2, seed, ..FleetConfig::default() },
                SplitExecConfig::with_seed(seed),
            );
            let mut scheduler = WeightedFairQueue::for_workload(&workload);
            let report = simulate(fleet, &workload, &mut scheduler, SimConfig::default());
            // No admission gate and feasible sizes: everything completes.
            prop_assert_eq!(report.rejected, 0);
            prop_assert_eq!(report.completed, report.jobs);
            for tenant in &report.per_tenant {
                prop_assert_eq!(
                    tenant.completed, tenant.submitted,
                    "tenant {} finished {}/{} jobs (weight {})",
                    tenant.name, tenant.completed, tenant.submitted, tenant.weight
                );
            }
        }

        /// Per-tenant percentile invariants: on every simulated run, each
        /// tenant's latency and wait summaries satisfy
        /// `min ≤ p50 ≤ p95 ≤ p99 ≤ max`.
        #[test]
        fn per_tenant_percentiles_are_ordered(seed in 0u64..150, asymmetry in 1u8..8) {
            let workload = MultiTenantSpec::aggressor_victim(
                5,
                0.7,
                asymmetry as f64,
                1.0,
                seed,
            )
            .generate();
            for policy in [PolicyKind::Fifo, PolicyKind::WeightedFair] {
                let fleet = Fleet::new(
                    FleetConfig { qpus: 2, seed, ..FleetConfig::default() },
                    SplitExecConfig::with_seed(seed),
                );
                let mut scheduler = policy.build();
                let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
                prop_assert!(report.latency.percentiles_ordered());
                prop_assert!(report.wait.percentiles_ordered());
                for tenant in &report.per_tenant {
                    prop_assert!(
                        tenant.latency.percentiles_ordered(),
                        "tenant {} latency percentiles disordered: {:?}",
                        tenant.name, tenant.latency
                    );
                    prop_assert!(
                        tenant.wait.percentiles_ordered(),
                        "tenant {} wait percentiles disordered: {:?}",
                        tenant.name, tenant.wait
                    );
                }
            }
        }
    }
}
