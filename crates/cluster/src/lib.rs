//! # sx-cluster — a discrete-event datacenter simulator for QUBO job streams
//!
//! The source paper models a *single* split-execution machine and finds
//! that stage-1 pre-processing (minor embedding) dominates time-to-solution.
//! This crate scales that performance model up to the ROADMAP's target
//! shape: a *stream* of QUBO jobs contending for a *fleet* of annealers,
//! served by a scheduler.  It is a deterministic discrete-event simulator
//! in the style of dslab:
//!
//! * [`event`] — a binary-heap future-event list on a virtual clock; no
//!   wall time anywhere, so runs replay bit-identically from their seeds.
//! * [`fleet`] — each simulated QPU carries its own
//!   [`chimera_graph::FaultModel`] (fault maps differ per device, so
//!   capacity and stage-1 cost differ per device) plus a per-device warm
//!   embedding set mirroring [`split_exec::EmbeddingCache`].
//! * [`workload`] — seeded open workloads (Poisson, bursty) over real
//!   problem families from [`qubo_ising::problems`]; topology keys come
//!   from the actual QUBO → Ising reduction.
//! * [`scheduler`] — pluggable policies behind the [`Scheduler`] trait:
//!   FIFO, shortest-predicted-job-first (the paper's analytic model as the
//!   cost oracle, via [`split_exec::CostModel`]) and
//!   embedding-cache-affinity routing.
//! * [`sim`] — the engine; [`metrics`] — latency percentiles
//!   (via [`quantum_anneal::stats::percentile`]), per-stage breakdown,
//!   per-QPU utilization, queue-depth series, and export to the shared
//!   [`split_exec::BatchSummary`] report format.
//!
//! Service times are the paper's own stage models ([`split_exec::cost`]),
//! so the simulator is the paper's performance model instantiated at fleet
//! scale — and its aggregate breakdown reproduces the headline
//! (stage 1 ≫ stage 2) for every policy.
//!
//! ```
//! use sx_cluster::prelude::*;
//! use split_exec::SplitExecConfig;
//!
//! let workload = WorkloadSpec::repeated_topologies(30, 0.05, 7).generate();
//! let fleet = Fleet::new(FleetConfig::default(), SplitExecConfig::with_seed(7));
//! let mut policy = PolicyKind::CacheAffinity.build();
//! let report = simulate(fleet, &workload, policy.as_mut(), SimConfig::default());
//! assert_eq!(report.completed + report.rejected, 30);
//! assert!(report.stage1_fraction() > 0.9); // the paper's headline, fleet-scale
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod fleet;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod sim;
pub mod workload;

pub use event::{Event, EventKind, EventQueue};
pub use fleet::{Fleet, FleetConfig, QpuDevice};
pub use job::{Job, JobRecord};
pub use metrics::{LatencyStats, QpuStats, SimReport};
pub use scheduler::{CacheAffinity, Fifo, PolicyKind, Scheduler, ShortestPredictedFirst};
pub use sim::{simulate, SimConfig, TraceRecord, WorkloadMode};
pub use workload::{ArrivalProcess, FamilySpec, Workload, WorkloadSpec};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::event::{Event, EventKind, EventQueue};
    pub use crate::fleet::{Fleet, FleetConfig, QpuDevice};
    pub use crate::job::{Job, JobRecord};
    pub use crate::metrics::{LatencyStats, QpuStats, SimReport};
    pub use crate::scheduler::{
        CacheAffinity, Fifo, PolicyKind, Scheduler, ShortestPredictedFirst,
    };
    pub use crate::sim::{simulate, SimConfig, TraceRecord, WorkloadMode};
    pub use crate::workload::{ArrivalProcess, FamilySpec, Workload, WorkloadSpec};
}

#[cfg(test)]
mod determinism_tests {
    //! The subsystem's core guarantee: a run is a pure function of its
    //! seeds.  Same seed + workload ⇒ bit-identical event trace and
    //! metrics.

    use crate::prelude::*;
    use split_exec::SplitExecConfig;

    fn run(policy: PolicyKind, seed: u64) -> SimReport {
        // Rate ~1 job/s against ~1–4 s services keeps several devices busy,
        // so policies genuinely differ (at negligible load every policy
        // collapses onto device 0).
        let workload = WorkloadSpec::repeated_topologies(35, 1.0, seed).generate();
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 3,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        );
        let mut scheduler = policy.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    }

    #[test]
    fn same_seed_gives_bit_identical_trace_and_metrics() {
        for policy in PolicyKind::all() {
            let a = run(policy, 17);
            let b = run(policy, 17);
            // PartialEq over the full report covers the trace, every f64
            // metric and every per-job record; equality of f64s produced by
            // the same deterministic computation is bit-identity.
            assert_eq!(a, b, "policy {policy} diverged across identical runs");
            for (ta, tb) in a.trace.iter().zip(&b.trace) {
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(PolicyKind::Fifo, 1);
        let b = run(PolicyKind::Fifo, 2);
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn affinity_beats_fifo_on_repeated_topologies() {
        // The acceptance demo in miniature: on a repeated-topology mix the
        // cache-affinity policy completes the same workload with lower mean
        // latency than FIFO, because it pays ~one cold embed per topology
        // instead of ~one per (topology, device) pair.
        let fifo = run(PolicyKind::Fifo, 23);
        let affinity = run(PolicyKind::CacheAffinity, 23);
        assert_eq!(fifo.jobs, affinity.jobs);
        assert!(affinity.cold_misses() < fifo.cold_misses());
        assert!(
            affinity.latency.mean < fifo.latency.mean,
            "affinity mean {} !< fifo mean {}",
            affinity.latency.mean,
            fifo.latency.mean
        );
    }
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;
    use split_exec::SplitExecConfig;

    fn run_fifo(seed: u64, jobs: usize, qpus: usize) -> SimReport {
        let workload = WorkloadSpec::repeated_topologies(jobs, 0.05, seed).generate();
        let fleet = Fleet::new(
            FleetConfig {
                qpus,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        );
        let mut scheduler = PolicyKind::Fifo.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// FIFO never reorders jobs that land on the same QPU: for every
        /// device, the service-start order equals the arrival order of the
        /// jobs it served.  (FIFO is globally order-preserving, so the
        /// per-device projection must be too.)
        #[test]
        fn fifo_never_reorders_same_qpu_jobs(seed in 0u64..500, jobs in 5usize..25, qpus in 1usize..4) {
            let report = run_fifo(seed, jobs, qpus);
            for qpu in 0..qpus {
                let mut served: Vec<JobRecord> = report
                    .records
                    .iter()
                    .filter(|r| r.qpu == qpu)
                    .copied()
                    .collect();
                served.sort_by(|a, b| a.start.total_cmp(&b.start));
                for pair in served.windows(2) {
                    prop_assert!(
                        pair[0].arrival <= pair[1].arrival,
                        "device {} served job {} (arrived {}) before job {} (arrived {})",
                        qpu, pair[1].job, pair[1].arrival, pair[0].job, pair[0].arrival
                    );
                    // Start order also respects submission ids.
                    prop_assert!(pair[0].job < pair[1].job);
                }
            }
        }

        /// Conservation: every job completes or is rejected, exactly once,
        /// under every policy.
        #[test]
        fn jobs_are_conserved(seed in 0u64..200) {
            for policy in PolicyKind::all() {
                let workload = WorkloadSpec::mixed(12, 0.1, seed).generate();
                let fleet = Fleet::new(
                    FleetConfig { qpus: 2, seed, ..FleetConfig::default() },
                    SplitExecConfig::with_seed(seed),
                );
                let mut scheduler = policy.build();
                let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
                prop_assert_eq!(report.completed + report.rejected, report.jobs);
                prop_assert_eq!(report.records.len(), report.completed);
            }
        }
    }
}
