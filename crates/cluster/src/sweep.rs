//! Deterministic parallel experiment runner: fan independent simulation
//! cells across threads, bit-identical to serial.
//!
//! A [`CellSpec`] is a complete, serializable-shaped description of one
//! independent run — seed, generated workload, fleet config, scheduler
//! spec, admission spec, engine config.  [`SweepPlan`] expands a cartesian
//! grid of axes (seed × fleet × load × workload variant × scheduler) into
//! cells, with capacity-derived arrival-rate calibration
//! ([`RateCalibration`]) hoisted out of the per-cell loop so a cell's rate
//! depends only on its `(fleet, load)` coordinates, never on axis order.
//! [`run_sweep`] executes the cells across threads via the compat `rayon`
//! joiner and collects [`CellResult`]s in index order; cross-cell
//! aggregates are merged through [`StreamingHistogram::merge`].
//!
//! # Parallelism is invisible
//!
//! Every cell is a pure function of its [`CellSpec`]: the fleet (and its
//! per-device RNGs) is rebuilt from the cell's seed, the scheduler and
//! admission controller are rebuilt from their specs, and the engine runs
//! with a [`NullSink`] plus a per-cell sketch [`MetricsRegistry`] — the
//! production-shaped telemetry configuration.  No state is shared between
//! cells, results are collected in cell-index order, and merges walk that
//! order, so the per-cell reports *and* the merged aggregates are
//! bit-identical whether the sweep ran on 1 thread or N.  `threads == 1`
//! is the serial oracle the determinism suite compares against
//! (`tests/sweep_determinism.rs`).
//!
//! Only [`SweepOutcome::wall_seconds`] and [`CellResult::wall_seconds`]
//! are host-side wall-clock measurements; they are excluded from every
//! determinism comparison and from the deterministic `sx-sweep/v1` JSON.

use std::sync::Arc;

use rayon::prelude::*;
use split_exec::SplitExecConfig;

use crate::admission::{AdmissionController, AdmitAll, TokenBucket, TokenBucketConfig};
use crate::fleet::{Fleet, FleetConfig};
use crate::json::JsonValue;
use crate::metrics::SimReport;
use crate::replay::SchedulerSpec;
use crate::scheduler::Scheduler;
use crate::sim::{simulate_with_telemetry, SimConfig};
use crate::telemetry::{HostStopwatch, MetricsRegistry, NullSink, StreamingHistogram, TraceSink};
use crate::tenant::TenantId;
use crate::workload::Workload;

/// Serializable-shaped admission description: how a cell's
/// [`AdmissionController`] is rebuilt, the way [`SchedulerSpec`] rebuilds
/// its scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionSpec {
    /// [`AdmitAll`]: every arrival admitted.
    AdmitAll,
    /// [`TokenBucket`] with a default budget and per-tenant overrides.
    TokenBucket {
        /// The budget applied to tenants without an override.
        default: TokenBucketConfig,
        /// `(tenant, budget)` overrides, applied in order.
        per_tenant: Vec<(TenantId, TokenBucketConfig)>,
    },
}

impl AdmissionSpec {
    /// The name the rebuilt controller reports
    /// ([`AdmissionController::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionSpec::AdmitAll => "admit-all",
            AdmissionSpec::TokenBucket { .. } => "token-bucket",
        }
    }

    /// Instantiate the described controller with fresh state.
    pub fn build(&self) -> Box<dyn AdmissionController> {
        match self {
            AdmissionSpec::AdmitAll => Box::new(AdmitAll),
            AdmissionSpec::TokenBucket {
                default,
                per_tenant,
            } => {
                let mut bucket = TokenBucket::new(*default);
                for &(tenant, config) in per_tenant {
                    bucket = bucket.with_tenant_budget(tenant, config);
                }
                Box::new(bucket)
            }
        }
    }
}

/// One independent simulation cell: everything [`run_cell`] needs to
/// execute a run from scratch.  Cells share their (read-only) workload via
/// `Arc`, exactly as the serial sweep modes shared one generated workload
/// across a scheduler axis.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Display label, e.g. `s7/uniform/load0.7/fifo`.
    pub label: String,
    /// Seed for the cell's fleet (device fault draws and sub-RNGs).
    pub seed: u64,
    /// Fleet shape; the fleet is rebuilt per cell from this config.
    pub fleet: FleetConfig,
    /// Scheduler, rebuilt per cell with fresh state.
    pub scheduler: SchedulerSpec,
    /// Admission controller, rebuilt per cell with fresh state.
    pub admission: AdmissionSpec,
    /// Engine configuration (open/closed mode, percentile summarization).
    pub config: SimConfig,
    /// Virtual-time sampling cadence of the cell's metrics registry.
    pub sample_interval: f64,
    /// The generated workload this cell replays.
    pub workload: Arc<Workload>,
}

/// The result of one cell, collected in cell-index order.
///
/// Everything here except [`Self::wall_seconds`] is a deterministic
/// function of the cell's [`CellSpec`].
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's index in its sweep's expansion order.
    pub index: usize,
    /// The cell's display label.
    pub label: String,
    /// The engine's report for the cell.
    pub report: SimReport,
    /// End-to-end latency sketch from the cell's registry (seconds).
    pub latency_sketch: StreamingHistogram,
    /// Queueing-delay sketch from the cell's registry (seconds).
    pub wait_sketch: StreamingHistogram,
    /// Host-side wall clock spent executing the cell (setup + dispatch
    /// loop + report assembly).  Not deterministic; excluded from every
    /// bit-identity comparison.
    pub wall_seconds: f64,
}

/// Once-per-cell setup: rebuild the fleet, scheduler, admission controller
/// and metrics registry from the cell's specs.
#[allow(clippy::type_complexity)]
// sx-lint: hot-exempt -- once-per-cell construction before the dispatch loop; the loop itself only touches pre-built state
fn cell_runtime(
    spec: &CellSpec,
) -> (
    Fleet,
    Box<dyn Scheduler>,
    Box<dyn AdmissionController>,
    MetricsRegistry,
) {
    (
        Fleet::new(spec.fleet.clone(), SplitExecConfig::with_seed(spec.seed)),
        spec.scheduler.build(),
        spec.admission.build(),
        MetricsRegistry::new(spec.sample_interval),
    )
}

/// Once-per-cell teardown: lift the registry's standard sketches into the
/// [`CellResult`].
// sx-lint: hot-exempt -- once per cell, after the event loop drains; nothing here is per-event
fn assemble_cell(
    index: usize,
    spec: &CellSpec,
    report: SimReport,
    registry: &MetricsRegistry,
    wall_seconds: f64,
) -> CellResult {
    let sketch = |name: &str| {
        registry.histogram(name).cloned().unwrap_or_default() // sim_series always registers both; empty workloads still get an empty sketch
    };
    CellResult {
        index,
        label: spec.label.clone(),
        report,
        latency_sketch: sketch("latency_seconds"),
        wait_sketch: sketch("wait_seconds"),
        wall_seconds,
    }
}

/// Execute one cell: the sweep runner's per-cell body.
///
/// The cell is a pure function of `spec` — see the module docs — so the
/// result is identical no matter which thread runs it or in what order.
/// `sink` is normally [`NullSink`] (the production-shaped config);
/// `cluster_sim`'s observer passes its recording chain here when a flight
/// record or Perfetto trace was requested, which cannot perturb the report
/// (sinks are pure observers).
// sx-lint: hot-root -- the sweep runner's per-cell body: between setup and assembly this IS the dispatch loop, and must stay allocation-free in steady state
pub fn run_cell(index: usize, spec: &CellSpec, sink: &mut dyn TraceSink) -> CellResult {
    let stopwatch = HostStopwatch::start();
    let (fleet, mut scheduler, mut admission, mut registry) = cell_runtime(spec);
    let report = simulate_with_telemetry(
        fleet,
        &spec.workload,
        scheduler.as_mut(),
        admission.as_mut(),
        spec.config,
        sink,
        Some(&mut registry),
    );
    assemble_cell(index, spec, report, &registry, stopwatch.elapsed_seconds())
}

/// Cross-cell aggregates, merged in cell-index order through
/// [`StreamingHistogram::merge`] — deterministic because bucket counts and
/// extremes merge losslessly and the walk order is fixed.
#[derive(Debug, Clone)]
pub struct MergedAggregates {
    /// Cells merged.
    pub cells: usize,
    /// Summed submitted jobs.
    pub jobs: usize,
    /// Summed completed jobs.
    pub completed: usize,
    /// Summed shed jobs.
    pub shed: usize,
    /// Summed events popped across every cell's dispatch loop.
    pub events: usize,
    /// All cells' end-to-end latency observations, one merged sketch.
    pub latency: StreamingHistogram,
    /// All cells' queueing-delay observations, one merged sketch.
    pub wait: StreamingHistogram,
}

impl MergedAggregates {
    /// Merge `results` (walked in index order).
    pub fn merge(results: &[CellResult]) -> MergedAggregates {
        let mut merged = MergedAggregates {
            cells: results.len(),
            jobs: 0,
            completed: 0,
            shed: 0,
            events: 0,
            latency: StreamingHistogram::default(),
            wait: StreamingHistogram::default(),
        };
        for cell in results {
            merged.jobs += cell.report.jobs;
            merged.completed += cell.report.completed;
            merged.shed += cell.report.shed;
            merged.events += cell.report.events;
            // Every cell sketch comes from a MetricsRegistry with the
            // default resolution, so the γ-mismatch arm is unreachable.
            merged
                .latency
                .merge(&cell.latency_sketch)
                // sx-lint: allow(H003) -- γ is uniform by construction: every cell registry uses the default resolution
                .expect("cell registries share the default sketch resolution");
            merged
                .wait
                .merge(&cell.wait_sketch)
                // sx-lint: allow(H003) -- γ is uniform by construction: every cell registry uses the default resolution
                .expect("cell registries share the default sketch resolution");
        }
        merged
    }

    /// The deterministic JSON form used by `sx-sweep/v1`'s `merged`
    /// section.
    pub fn to_json(&self) -> JsonValue {
        let quantiles = |h: &StreamingHistogram, prefix: &str| {
            [
                (
                    format!("{prefix}_count"),
                    JsonValue::from(h.count() as usize),
                ),
                (format!("{prefix}_p50_seconds"), JsonValue::from(h.p50())),
                (format!("{prefix}_p95_seconds"), JsonValue::from(h.p95())),
                (format!("{prefix}_p99_seconds"), JsonValue::from(h.p99())),
            ]
        };
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("cells".to_string(), JsonValue::from(self.cells)),
            ("jobs".to_string(), JsonValue::from(self.jobs)),
            ("completed".to_string(), JsonValue::from(self.completed)),
            ("shed".to_string(), JsonValue::from(self.shed)),
            ("events".to_string(), JsonValue::from(self.events)),
            (
                "relative_error_bound".to_string(),
                JsonValue::from(self.latency.relative_error_bound()),
            ),
        ];
        fields.extend(quantiles(&self.latency, "latency"));
        fields.extend(quantiles(&self.wait, "wait"));
        JsonValue::Object(fields)
    }
}

/// Everything a sweep produced: per-cell results in index order, the
/// merged aggregates, and the host-side wall clock for the whole sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-cell results, in cell-index order.
    pub cells: Vec<CellResult>,
    /// Cross-cell aggregates merged in index order.
    pub merged: MergedAggregates,
    /// Host wall clock for the whole sweep (not deterministic).
    pub wall_seconds: f64,
}

impl SweepOutcome {
    /// Assemble an outcome from already-executed cells (used by the serial
    /// observer path in `cluster_sim`, which must produce the same shape
    /// the parallel runner does).
    pub fn collect(cells: Vec<CellResult>, wall_seconds: f64) -> SweepOutcome {
        let merged = MergedAggregates::merge(&cells);
        SweepOutcome {
            cells,
            merged,
            wall_seconds,
        }
    }

    /// Summed events per host second across the sweep — the host-side
    /// throughput figure `--mode bench`'s parallel-scaling section
    /// records.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.merged.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Execute `cells` across `threads` worker threads (`0` = available
/// parallelism) and collect results in cell-index order.
///
/// `threads == 1` runs the cells serially on the calling thread — the
/// serial oracle.  Any other count fans the index range over the compat
/// `rayon` joiner, which chunks it across scoped threads and concatenates
/// results in index order; because every cell is pure (see module docs)
/// the outcome is bit-identical for every thread count.
pub fn run_sweep(cells: &[CellSpec], threads: usize) -> SweepOutcome {
    let stopwatch = HostStopwatch::start();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        // sx-lint: allow(H003) -- the facade's build is infallible (no pool-size or resource validation can fail)
        .expect("the rayon facade's pool build cannot fail");
    let results: Vec<CellResult> = pool.install(|| {
        (0..cells.len())
            .into_par_iter()
            .map(|i| {
                let mut sink = NullSink;
                run_cell(i, &cells[i], &mut sink)
            })
            .collect()
    });
    SweepOutcome::collect(results, stopwatch.elapsed_seconds())
}

/// Capacity-derived arrival-rate calibration, hoisted out of the per-cell
/// loop.
///
/// The sweep modes size their offered load against what the fleet can
/// actually serve: `load` is the ratio of offered warm work to fleet
/// capacity, so the same nominal load means the same queueing regime on
/// every fleet shape.  Before this type, each mode probed a fleet and
/// recomputed the warm-service mean inline, per sweep arm — so a
/// reordering of the axes could silently move which probe produced a
/// cell's rate.  A `RateCalibration` is computed once per fleet axis entry
/// at plan-construction time ([`SweepPlan::calibrated`]) and every cell's
/// rate is derived from that stored value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateCalibration {
    warm_mean_seconds: f64,
}

impl RateCalibration {
    /// Probe `config`'s first device and average the warm service time
    /// over `sizes` (logical spins per topology).  Errors when the service
    /// model cannot produce a breakdown for a size (too large for the
    /// device) — a plan bug, surfaced eagerly rather than per cell.
    pub fn for_fleet(config: &FleetConfig, sizes: &[usize]) -> Result<RateCalibration, String> {
        if sizes.is_empty() {
            return Err("calibration needs at least one topology size".to_string());
        }
        let probe = Fleet::new(config.clone(), SplitExecConfig::with_seed(config.seed));
        let mut total = 0.0;
        for &lps in sizes {
            let (s1, s2, s3) = probe.devices[0]
                .service_breakdown(lps, true)
                .map_err(|err| format!("no warm service model for lps {lps}: {err}"))?;
            total += s1 + s2 + s3;
        }
        Ok(RateCalibration {
            warm_mean_seconds: total / sizes.len() as f64,
        })
    }

    /// The calibrated mean warm service time (seconds per job).
    pub fn warm_mean_seconds(&self) -> f64 {
        self.warm_mean_seconds
    }

    /// The cell arrival rate for `load` on a fleet of `qpus` devices:
    /// `base_rate_hz × load × qpus / warm_mean_seconds` — offered warm
    /// work as a fraction `load` of fleet capacity, scaled by the CLI's
    /// base rate.
    pub fn rate_hz(&self, base_rate_hz: f64, load: f64, qpus: usize) -> f64 {
        base_rate_hz * load * qpus as f64 / self.warm_mean_seconds
    }
}

/// A cartesian grid of sweep axes: seed × fleet × load × workload variant
/// × scheduler, expanded into [`CellSpec`]s in that fixed nesting order.
///
/// The plan owns the per-fleet [`RateCalibration`]s (computed once, in
/// fleet-axis order, by [`Self::calibrated`]); [`Self::rate_for`] derives
/// every cell's arrival rate from the stored calibration so rates cannot
/// drift when axes are added or reordered.  Workload and scheduler
/// construction stay with the caller as closures — tenant compositions and
/// lane weights are mode-specific — but each workload is generated exactly
/// once per `(seed, fleet, load, variant)` coordinate and shared across
/// the scheduler axis via `Arc`.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    seeds: Vec<u64>,
    fleets: Vec<(String, FleetConfig)>,
    loads: Vec<f64>,
    base_rate_hz: f64,
    qpus: usize,
    config: SimConfig,
    sample_interval: f64,
    calibrations: Option<Vec<RateCalibration>>,
}

/// Default virtual-time sampling cadence of per-cell metrics registries
/// (matches `--mode bench`'s default `--sample-interval`).
pub const DEFAULT_SAMPLE_INTERVAL: f64 = 5.0;

impl SweepPlan {
    /// A plan with the given base arrival rate, fleet size and engine
    /// config, and empty axes.
    pub fn new(base_rate_hz: f64, qpus: usize, config: SimConfig) -> SweepPlan {
        SweepPlan {
            seeds: Vec::new(),
            fleets: Vec::new(),
            loads: Vec::new(),
            base_rate_hz,
            qpus,
            config,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
            calibrations: None,
        }
    }

    /// Set the seed axis.
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> SweepPlan {
        self.seeds = seeds.into();
        self
    }

    /// Set the fleet axis (labelled configs).  Invalidates any previous
    /// calibration: call [`Self::calibrated`] after the axis is final.
    pub fn fleets(mut self, fleets: Vec<(String, FleetConfig)>) -> SweepPlan {
        self.fleets = fleets;
        self.calibrations = None;
        self
    }

    /// Set the load axis.
    pub fn loads(mut self, loads: impl Into<Vec<f64>>) -> SweepPlan {
        self.loads = loads.into();
        self
    }

    /// Set the per-cell registry sampling cadence.
    pub fn sample_interval(mut self, sample_interval: f64) -> SweepPlan {
        self.sample_interval = sample_interval;
        self
    }

    /// Compute one [`RateCalibration`] per fleet-axis entry from `sizes`,
    /// hoisting the capacity probes out of the cell loop.  Until this is
    /// called, [`Self::rate_for`] treats `load` as a plain multiplier on
    /// the base rate (the uncalibrated modes' behavior).
    pub fn calibrated(mut self, sizes: &[usize]) -> Result<SweepPlan, String> {
        let mut calibrations = Vec::with_capacity(self.fleets.len());
        for (name, config) in &self.fleets {
            let calibration = RateCalibration::for_fleet(config, sizes)
                .map_err(|err| format!("fleet '{name}': {err}"))?;
            calibrations.push(calibration);
        }
        self.calibrations = Some(calibrations);
        Ok(self)
    }

    /// The stored calibration for fleet-axis entry `fleet_index`, if the
    /// plan was calibrated.
    pub fn calibration(&self, fleet_index: usize) -> Option<&RateCalibration> {
        self.calibrations.as_ref().and_then(|c| c.get(fleet_index))
    }

    /// The arrival rate for a cell at `(fleet_index, load)` — from the
    /// hoisted calibration when present, else `base_rate_hz × load`.
    pub fn rate_for(&self, fleet_index: usize, load: f64) -> f64 {
        match self.calibration(fleet_index) {
            Some(calibration) => calibration.rate_hz(self.base_rate_hz, load, self.qpus),
            None => self.base_rate_hz * load,
        }
    }

    /// Expand the grid into cells, in the fixed nesting order
    /// seed → fleet → load → variant → scheduler.
    ///
    /// `make_workload(seed, rate_hz, variant)` is called once per
    /// `(seed, fleet, load, variant)` coordinate; the returned workload is
    /// shared across the scheduler axis.  `make_scheduler(name, workload)`
    /// resolves a scheduler-axis name against the workload (weighted-fair
    /// specs need its lane weights).
    pub fn expand<V>(
        &self,
        variants: &[(String, V)],
        schedulers: &[&str],
        mut make_workload: impl FnMut(u64, f64, &V) -> Arc<Workload>,
        mut make_scheduler: impl FnMut(&str, &Workload) -> SchedulerSpec,
    ) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for &seed in &self.seeds {
            for (fleet_index, (fleet_name, fleet)) in self.fleets.iter().enumerate() {
                // A cell's fleet must carry the cell's seed, not the
                // axis-template's: device fault draws derive from it.
                let fleet = FleetConfig {
                    seed,
                    ..fleet.clone()
                };
                for &load in &self.loads {
                    let rate_hz = self.rate_for(fleet_index, load);
                    for (variant_name, variant) in variants {
                        let workload = make_workload(seed, rate_hz, variant);
                        for scheduler_name in schedulers {
                            let scheduler = make_scheduler(scheduler_name, &workload);
                            let label = [
                                format!("s{seed}"),
                                fleet_name.clone(),
                                format!("load{load}"),
                                variant_name.clone(),
                                (*scheduler_name).to_string(),
                            ]
                            .into_iter()
                            .filter(|part| !part.is_empty())
                            .collect::<Vec<_>>()
                            .join("/");
                            cells.push(CellSpec {
                                label,
                                seed,
                                fleet: fleet.clone(),
                                scheduler,
                                admission: AdmissionSpec::AdmitAll,
                                config: self.config,
                                sample_interval: self.sample_interval,
                                workload: Arc::clone(&workload),
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::PolicyKind;
    use crate::sim::{PercentileMode, SimConfig, WorkloadMode};
    use crate::workload::WorkloadSpec;

    fn test_config() -> SimConfig {
        SimConfig {
            mode: WorkloadMode::Open,
            percentiles: PercentileMode::Sketch,
        }
    }

    fn small_cells(seed: u64) -> Vec<CellSpec> {
        let plan = SweepPlan::new(1.0, 2, test_config())
            .seeds(vec![seed])
            .fleets(vec![(
                "uniform".to_string(),
                FleetConfig {
                    qpus: 2,
                    seed,
                    ..FleetConfig::default()
                },
            )])
            .loads(vec![1.0]);
        plan.expand(
            &[(String::new(), ())],
            &["fifo", "affinity"],
            |seed, rate_hz, ()| {
                Arc::new(
                    WorkloadSpec::repeated_topologies(30, rate_hz, seed)
                        .try_generate()
                        .expect("valid test workload"),
                )
            },
            |name, _workload| match name {
                "fifo" => SchedulerSpec::Fifo,
                _ => SchedulerSpec::CacheAffinity,
            },
        )
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bit_identical() {
        let cells = small_cells(11);
        let serial = run_sweep(&cells, 1);
        let parallel = run_sweep(&cells, 3);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.report, b.report);
            assert_eq!(a.latency_sketch, b.latency_sketch);
            assert_eq!(a.wait_sketch, b.wait_sketch);
        }
        assert_eq!(
            format!("{}", serial.merged.to_json()),
            format!("{}", parallel.merged.to_json())
        );
    }

    #[test]
    fn merged_aggregates_sum_cell_counts() {
        let cells = small_cells(5);
        let outcome = run_sweep(&cells, 2);
        let completed: usize = outcome.cells.iter().map(|c| c.report.completed).sum();
        assert_eq!(outcome.merged.completed, completed);
        assert_eq!(outcome.merged.latency.count(), completed as u64);
        assert_eq!(outcome.merged.cells, cells.len());
    }

    #[test]
    fn expansion_order_is_seed_fleet_load_variant_scheduler() {
        let plan = SweepPlan::new(2.0, 2, test_config())
            .seeds(vec![1, 2])
            .fleets(vec![
                ("a".to_string(), FleetConfig::default()),
                ("b".to_string(), FleetConfig::default()),
            ])
            .loads(vec![0.5, 1.5]);
        let cells = plan.expand(
            &[(String::new(), ())],
            &["fifo"],
            |seed, rate_hz, ()| {
                Arc::new(
                    WorkloadSpec::repeated_topologies(4, rate_hz, seed)
                        .try_generate()
                        .expect("valid test workload"),
                )
            },
            |_, _| SchedulerSpec::Fifo,
        );
        let labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "s1/a/load0.5/fifo",
                "s1/a/load1.5/fifo",
                "s1/b/load0.5/fifo",
                "s1/b/load1.5/fifo",
                "s2/a/load0.5/fifo",
                "s2/a/load1.5/fifo",
                "s2/b/load0.5/fifo",
                "s2/b/load1.5/fifo",
            ]
        );
        // The uncalibrated plan treats load as a plain rate multiplier.
        assert_eq!(plan.rate_for(0, 0.5), 1.0);
        assert_eq!(plan.rate_for(1, 1.5), 3.0);
        // Every cell's fleet carries the cell seed.
        assert!(cells.iter().take(4).all(|c| c.fleet.seed == 1));
        assert!(cells.iter().skip(4).all(|c| c.fleet.seed == 2));
    }

    #[test]
    fn calibrated_rates_are_positive_and_fleet_dependent() {
        let uniform = FleetConfig {
            qpus: 2,
            seed: 3,
            ..FleetConfig::default()
        };
        let hetero = FleetConfig::heterogeneous(2, 3);
        let plan = SweepPlan::new(1.0, 2, test_config())
            .fleets(vec![
                ("uniform".to_string(), uniform.clone()),
                ("hetero".to_string(), hetero),
            ])
            .calibrated(&[16, 20, 24])
            .expect("calibration succeeds for the bench mix sizes");
        let direct = RateCalibration::for_fleet(&uniform, &[16, 20, 24])
            .expect("calibration succeeds for the bench mix sizes");
        assert_eq!(plan.calibration(0), Some(&direct));
        assert!(plan.rate_for(0, 1.0) > 0.0);
        // rate is linear in load given one calibration.
        let r1 = plan.rate_for(0, 0.5);
        let r2 = plan.rate_for(0, 1.0);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn admission_spec_rebuilds_named_controllers() {
        assert_eq!(AdmissionSpec::AdmitAll.build().name(), "admit-all");
        let spec = AdmissionSpec::TokenBucket {
            default: TokenBucketConfig::default(),
            per_tenant: vec![(
                TenantId(1),
                TokenBucketConfig {
                    max_queue_depth: 3,
                    ..TokenBucketConfig::default()
                },
            )],
        };
        assert_eq!(spec.build().name(), "token-bucket");
    }

    #[test]
    fn policy_kind_axis_resolves_through_scheduler_specs() {
        // Guard the idiom the CLI uses: every PolicyKind has a SchedulerSpec form.
        for policy in PolicyKind::all() {
            let spec = SchedulerSpec::from(policy);
            assert!(!spec.name().is_empty());
        }
    }
}
