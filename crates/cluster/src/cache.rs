//! Bounded per-device warm-embedding caches with pluggable eviction.
//!
//! PR 2 modeled each device's embedding cache as an unbounded `HashSet`,
//! which silently assumes infinite embedding-table memory: the simulator
//! could never exhibit the hit-rate cliff that appears when the working set
//! of topologies outgrows what a device can hold.  [`WarmCache`] makes the
//! capacity finite and delegates the victim choice to an
//! [`EvictionPolicy`]:
//!
//! * [`Lru`] — evict the least-recently-used topology, the classic default.
//! * [`CostAware`] — evict the topology with the *smallest* predicted
//!   re-embed cost (the cheapest entry to re-warm, as priced by
//!   [`split_exec::CostModel`] at insertion time).  When topologies differ
//!   in logical problem size, the embed cost spans orders of magnitude
//!   (∝ LPS³), so protecting the expensive entries beats pure recency.
//!
//! Determinism: the cache keeps its entries in a plain `Vec` in insertion
//! order, recency is a monotone counter bumped on every touch, and every
//! policy breaks ties by `(recency, key)` — so a seeded simulation replays
//! bit-identically with eviction enabled.

use serde::{Deserialize, Serialize};

/// One resident embedding, as the eviction policies see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// Canonical interaction-topology key
    /// ([`split_exec::offline_cache::graph_key`]).
    pub key: u64,
    /// Logical problem size of the cached topology.
    pub lps: usize,
    /// Recency stamp: the cache's logical clock at the last hit or insert.
    pub last_use: u64,
    /// Predicted seconds to re-embed this topology on the owning device if
    /// it were evicted (embed share × the device's fault difficulty).
    pub reembed_seconds: f64,
}

/// Chooses which resident entry a full cache sacrifices.
///
/// Implementations must be deterministic: given the same entries (in the
/// same order) they must return the same victim index.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Stable policy name used in reports and CLI surfaces.
    fn name(&self) -> &'static str;

    /// Index of the entry to evict; `entries` is never empty.
    fn victim(&self, entries: &[CacheEntry]) -> usize;
}

/// Least-recently-used eviction.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victim(&self, entries: &[CacheEntry]) -> usize {
        entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.last_use, e.key))
            .map(|(i, _)| i)
            // sx-lint: allow(A002) -- same contract as the H003 allow below: unreachable on a non-empty cache
            // sx-lint: allow(H003) -- EvictionPolicy::victim contract: `entries` is never empty
            .expect("victim() called on an empty cache")
    }
}

/// Cost-aware eviction: sacrifice the entry that is cheapest to re-warm.
///
/// Ties (identical predicted re-embed cost, e.g. equal-sized topologies on
/// one device) fall back to LRU order.
#[derive(Debug, Default, Clone, Copy)]
pub struct CostAware;

impl EvictionPolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn victim(&self, entries: &[CacheEntry]) -> usize {
        entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.reembed_seconds
                    .total_cmp(&b.reembed_seconds)
                    .then(a.last_use.cmp(&b.last_use))
                    .then(a.key.cmp(&b.key))
            })
            .map(|(i, _)| i)
            // sx-lint: allow(A002) -- same contract as the H003 allow below: unreachable on a non-empty cache
            // sx-lint: allow(H003) -- EvictionPolicy::victim contract: `entries` is never empty
            .expect("victim() called on an empty cache")
    }
}

/// Eviction-policy selection by name, for configuration and CLI surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionPolicyKind {
    /// [`Lru`].
    #[default]
    Lru,
    /// [`CostAware`].
    CostAware,
}

impl EvictionPolicyKind {
    /// All eviction policies, in comparison-table order.
    pub fn all() -> [EvictionPolicyKind; 2] {
        [EvictionPolicyKind::Lru, EvictionPolicyKind::CostAware]
    }

    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionPolicyKind::Lru => Box::new(Lru),
            EvictionPolicyKind::CostAware => Box::new(CostAware),
        }
    }

    /// The policy's stable name.
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::CostAware => "cost-aware",
        }
    }
}

impl std::str::FromStr for EvictionPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lru" => Ok(EvictionPolicyKind::Lru),
            "cost" | "cost-aware" | "costaware" => Ok(EvictionPolicyKind::CostAware),
            other => Err(format!(
                "unknown eviction policy '{other}' (expected lru or cost-aware)"
            )),
        }
    }
}

impl std::fmt::Display for EvictionPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cache *admission*: whether a freshly computed embedding is worth caching
/// at all.  Eviction decides who leaves a full cache; admission decides who
/// enters — on low-repetition mixes, unconditionally caching every one-shot
/// topology churns the cache and evicts the hot entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Cache every cold embedding (the pre-admission behavior).
    #[default]
    Always,
    /// TinyLFU-style doorkeeper: a topology is only admitted to the cache
    /// on its *second* cold occurrence on this device.  One-shot topologies
    /// never enter, so they cannot evict recurring ones.
    SecondChance,
}

impl AdmissionPolicy {
    /// All admission policies, in comparison-table order.
    pub fn all() -> [AdmissionPolicy; 2] {
        [AdmissionPolicy::Always, AdmissionPolicy::SecondChance]
    }

    /// The policy's stable name.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Always => "always",
            AdmissionPolicy::SecondChance => "second-chance",
        }
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" => Ok(AdmissionPolicy::Always),
            "second-chance" | "secondchance" | "second" | "doorkeeper" => {
                Ok(AdmissionPolicy::SecondChance)
            }
            other => Err(format!(
                "unknown cache admission policy '{other}' (expected always or second-chance)"
            )),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A bounded set of warm topologies with pluggable eviction.
///
/// `capacity = None` reproduces PR 2's unbounded behavior; `Some(0)`
/// disables caching entirely (every job embeds cold, nothing is ever
/// resident).
///
/// ```
/// use sx_cluster::prelude::*;
///
/// // Two slots, LRU eviction.
/// let mut cache = WarmCache::new(Some(2), EvictionPolicyKind::Lru);
/// cache.insert(101, 24, 5.0); // (topology key, lps, re-embed seconds)
/// cache.insert(102, 30, 9.0);
///
/// // A warm hit refreshes recency, so key 102 is now the LRU victim.
/// assert!(cache.touch(101));
/// assert_eq!(cache.insert(103, 36, 14.0), Some(102));
/// assert!(cache.contains(101) && cache.contains(103) && !cache.contains(102));
/// assert_eq!(cache.evictions(), 1);
/// ```
#[derive(Debug)]
pub struct WarmCache {
    capacity: Option<usize>,
    policy: Box<dyn EvictionPolicy>,
    admission: AdmissionPolicy,
    entries: Vec<CacheEntry>,
    /// Mirror of the resident keys: `contains` is on the schedulers' hot
    /// path (every queue × idle-device pairing queries warmth), so
    /// membership must not scan `entries`.
    resident: std::collections::HashSet<u64>,
    /// The doorkeeper: keys seen cold exactly once under
    /// [`AdmissionPolicy::SecondChance`].  Unbounded — a key is 8 bytes and
    /// a simulated run sees a bounded topology universe; a production cache
    /// would use a Bloom filter with periodic reset here.
    doorkeeper: std::collections::HashSet<u64>,
    clock: u64,
    evictions: usize,
    bypassed: usize,
}

impl WarmCache {
    /// A cache holding at most `capacity` topologies (`None` = unbounded),
    /// admitting every cold embedding ([`AdmissionPolicy::Always`]).
    pub fn new(capacity: Option<usize>, policy: EvictionPolicyKind) -> Self {
        // Bounded caches pre-size both the entry list and the residency
        // mirror so steady-state inserts never grow them (unbounded caches
        // still grow, amortized over distinct topologies, not events).
        let slots = capacity.unwrap_or(0);
        Self {
            capacity,
            policy: policy.build(),
            admission: AdmissionPolicy::default(),
            entries: Vec::with_capacity(slots),
            resident: std::collections::HashSet::with_capacity(slots),
            doorkeeper: std::collections::HashSet::new(),
            clock: 0,
            evictions: 0,
            bypassed: 0,
        }
    }

    /// Gate insertions behind the given admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// An unbounded cache (PR 2 semantics).
    pub fn unbounded() -> Self {
        Self::new(None, EvictionPolicyKind::Lru)
    }

    /// Whether `key` is resident (O(1)).
    // sx-lint: hot-root -- warmth probe: every queue × idle-device pairing asks this
    pub fn contains(&self, key: u64) -> bool {
        self.resident.contains(&key)
    }

    /// Number of resident topologies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Insertions the admission gate bypassed (first occurrences under
    /// [`AdmissionPolicy::SecondChance`]).
    pub fn bypassed(&self) -> usize {
        self.bypassed
    }

    /// The active admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// The active eviction policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The resident entries, in insertion order.
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Refresh the recency of a resident `key` (a warm hit).  Returns
    /// whether the key was resident.
    // sx-lint: hot-root -- warm-hit bookkeeping: called once per dispatched warm job
    pub fn touch(&mut self, key: u64) -> bool {
        self.clock += 1;
        if !self.resident.contains(&key) {
            return false;
        }
        let clock = self.clock;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(entry) => {
                entry.last_use = clock;
                true
            }
            None => false,
        }
    }

    /// Insert a freshly embedded topology, evicting if the cache is full.
    /// Returns the evicted key, if any.
    ///
    /// Inserting a key that is already resident only refreshes its recency
    /// (and re-prices it), so residency never exceeds one entry per key.
    // sx-lint: hot-root -- cold-embed bookkeeping: called once per dispatched cold job
    pub fn insert(&mut self, key: u64, lps: usize, reembed_seconds: f64) -> Option<u64> {
        self.clock += 1;
        if self.resident.contains(&key) {
            if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
                entry.last_use = self.clock;
                entry.lps = lps;
                entry.reembed_seconds = reembed_seconds;
            }
            return None;
        }
        if self.capacity == Some(0) {
            return None;
        }
        // The doorkeeper: a first cold occurrence is remembered but not
        // cached; only a repeat offender earns a cache slot.
        // sx-lint: allow(A001) -- one 8-byte key per distinct topology ever seen, bounded by the topology universe, not the event rate
        if self.admission == AdmissionPolicy::SecondChance && self.doorkeeper.insert(key) {
            self.bypassed += 1;
            return None;
        }
        let mut evicted = None;
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                let victim = self.policy.victim(&self.entries);
                let victim_key = self.entries.remove(victim).key;
                self.resident.remove(&victim_key);
                self.evictions += 1;
                evicted = Some(victim_key);
            }
        }
        self.entries.push(CacheEntry {
            key,
            lps,
            last_use: self.clock,
            reembed_seconds,
        });
        self.resident.insert(key);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(cap: usize) -> WarmCache {
        WarmCache::new(Some(cap), EvictionPolicyKind::Lru)
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = WarmCache::unbounded();
        for key in 0..1000 {
            c.insert(key, 10, 1.0);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.capacity(), None);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c = lru(0);
        assert_eq!(c.insert(1, 10, 1.0), None);
        assert!(c.is_empty());
        assert!(!c.contains(1));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn lru_evicts_the_least_recent_entry() {
        let mut c = lru(2);
        c.insert(1, 10, 1.0);
        c.insert(2, 10, 1.0);
        // Touch 1 so 2 is now the coldest.
        assert!(c.touch(1));
        assert_eq!(c.insert(3, 10, 1.0), Some(2));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinserting_a_resident_key_does_not_evict() {
        let mut c = lru(2);
        c.insert(1, 10, 1.0);
        c.insert(2, 10, 1.0);
        assert_eq!(c.insert(1, 10, 2.0), None);
        assert_eq!(c.len(), 2);
        // The reinsert refreshed recency: 2 is now the LRU victim.
        assert_eq!(c.insert(3, 10, 1.0), Some(2));
    }

    #[test]
    fn cost_aware_protects_the_expensive_entry() {
        let mut c = WarmCache::new(Some(2), EvictionPolicyKind::CostAware);
        c.insert(1, 36, 100.0); // expensive to re-warm
        c.insert(2, 8, 0.5); // cheap
                             // Even though 1 is older, the cheap entry is sacrificed.
        assert_eq!(c.insert(3, 20, 10.0), Some(2));
        assert!(c.contains(1));
        assert_eq!(c.policy_name(), "cost-aware");
    }

    #[test]
    fn cost_aware_falls_back_to_lru_on_cost_ties() {
        let mut c = WarmCache::new(Some(2), EvictionPolicyKind::CostAware);
        c.insert(1, 10, 1.0);
        c.insert(2, 10, 1.0);
        c.touch(1);
        assert_eq!(c.insert(3, 10, 1.0), Some(2));
    }

    #[test]
    fn touch_of_a_missing_key_reports_false() {
        let mut c = lru(2);
        assert!(!c.touch(99));
        c.insert(1, 10, 1.0);
        assert!(c.touch(1));
    }

    #[test]
    fn second_chance_admits_only_on_the_second_occurrence() {
        let mut c = lru(4).with_admission(AdmissionPolicy::SecondChance);
        assert_eq!(c.insert(1, 10, 1.0), None);
        assert!(!c.contains(1), "first occurrence must be bypassed");
        assert_eq!(c.bypassed(), 1);
        assert_eq!(c.insert(1, 10, 1.0), None);
        assert!(c.contains(1), "second occurrence must be admitted");
        assert_eq!(c.bypassed(), 1);
        // A resident key's re-insert refreshes, not bypasses.
        assert_eq!(c.insert(1, 10, 2.0), None);
        assert!(c.contains(1));
        assert_eq!(c.admission(), AdmissionPolicy::SecondChance);
    }

    #[test]
    fn second_chance_keeps_one_shot_keys_from_evicting_hot_ones() {
        // Capacity 2, two hot keys resident; a stream of one-shot keys must
        // not displace them under second-chance, while it churns everything
        // under always-admit.
        let run = |admission: AdmissionPolicy| {
            let mut c = lru(2).with_admission(admission);
            c.insert(100, 10, 1.0);
            c.insert(100, 10, 1.0);
            c.insert(101, 10, 1.0);
            c.insert(101, 10, 1.0);
            for key in 0..20 {
                c.insert(key, 10, 1.0);
            }
            (c.contains(100) && c.contains(101), c.evictions())
        };
        let (hot_survive, evictions) = run(AdmissionPolicy::SecondChance);
        assert!(hot_survive, "second-chance must protect the hot keys");
        assert_eq!(evictions, 0);
        let (hot_survive, evictions) = run(AdmissionPolicy::Always);
        assert!(!hot_survive, "always-admit churns the hot keys out");
        assert!(evictions > 0);
    }

    #[test]
    fn admission_policy_parses_and_displays() {
        assert_eq!(
            "always".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::Always
        );
        assert_eq!(
            "Second-Chance".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::SecondChance
        );
        assert_eq!(
            "doorkeeper".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::SecondChance
        );
        assert!("never".parse::<AdmissionPolicy>().is_err());
        for kind in AdmissionPolicy::all() {
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn policy_kind_parses_and_displays() {
        assert_eq!(
            "lru".parse::<EvictionPolicyKind>().unwrap(),
            EvictionPolicyKind::Lru
        );
        assert_eq!(
            "Cost-Aware".parse::<EvictionPolicyKind>().unwrap(),
            EvictionPolicyKind::CostAware
        );
        assert!("fancy".parse::<EvictionPolicyKind>().is_err());
        for kind in EvictionPolicyKind::all() {
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The safety bound of the tentpole: no operation sequence can push
        /// residency above the configured capacity, under either policy.
        #[test]
        fn residency_never_exceeds_capacity(
            cap in 0usize..6,
            keys in vec(0u64..12, 1..80),
            cost_aware in 0u8..2,
            second_chance in 0u8..2,
        ) {
            let kind = if cost_aware == 1 {
                EvictionPolicyKind::CostAware
            } else {
                EvictionPolicyKind::Lru
            };
            let admission = if second_chance == 1 {
                AdmissionPolicy::SecondChance
            } else {
                AdmissionPolicy::Always
            };
            let mut cache = WarmCache::new(Some(cap), kind).with_admission(admission);
            for (i, &key) in keys.iter().enumerate() {
                // Alternate hits and inserts the way the simulator does.
                if cache.contains(key) {
                    cache.touch(key);
                } else {
                    // Vary lps/cost with the key so cost-aware has signal.
                    cache.insert(key, key as usize + 4, (key as f64 + 1.0) * (i as f64 + 1.0));
                }
                prop_assert!(cache.len() <= cap, "len {} > capacity {cap}", cache.len());
            }
        }

        /// LRU ordering: a just-touched entry is never the victim while an
        /// untouched, colder entry is resident.
        #[test]
        fn lru_never_evicts_a_fresh_hit_over_a_colder_entry(
            cap in 2usize..6,
            keys in vec(0u64..10, 2..60),
        ) {
            let mut cache = WarmCache::new(Some(cap), EvictionPolicyKind::Lru);
            // Shadow model of recency: key -> logical time of last use.
            let mut last_use = std::collections::HashMap::new();
            let mut tick = 0u64;
            for &key in &keys {
                tick += 1;
                let resident_before: Vec<u64> =
                    cache.entries().iter().map(|e| e.key).collect();
                let evicted = if cache.contains(key) {
                    cache.touch(key);
                    None
                } else {
                    cache.insert(key, 10, 1.0)
                };
                last_use.insert(key, tick);
                if let Some(victim) = evicted {
                    // Every other previously resident entry must be at least
                    // as recent as the victim.
                    let victim_use = last_use.get(&victim).copied().unwrap_or(0);
                    for other in resident_before {
                        if other == victim {
                            continue;
                        }
                        let other_use = last_use.get(&other).copied().unwrap_or(0);
                        prop_assert!(
                            other_use >= victim_use,
                            "evicted {victim} (last use {victim_use}) before colder {other} (last use {other_use})"
                        );
                    }
                }
            }
        }
    }
}
