//! Workload generation: job streams drawn from the paper's problem families.
//!
//! A workload is a seeded, deterministic stream of [`Job`]s: each job is a
//! real problem instance from [`qubo_ising::problems`] (MAX-CUT, number
//! partitioning, vertex cover) reduced to the simulator's view — logical
//! problem size plus canonical interaction-topology key — and stamped with
//! an arrival time from an open arrival process (Poisson or bursty).  The
//! topology keys are computed through the *actual* QUBO → Ising reduction,
//! so "two jobs share an embedding" in the simulator means exactly what it
//! means in [`split_exec`]'s batch path.
//!
//! Mixes with few distinct topologies (re-solving a problem family with
//! fresh coefficients — the production shape the ROADMAP targets) are where
//! embedding-cache-affinity scheduling pays off; mixes of all-distinct
//! topologies degenerate to every job being cold.

use crate::job::Job;
use crate::tenant::{TenantId, TenantMeta};
use chimera_graph::generators;
use qubo_ising::problems::maxcut::MaxCut;
use qubo_ising::problems::partition::NumberPartition;
use qubo_ising::problems::vertex_cover::VertexCover;
use qubo_ising::{qubo_to_ising, Qubo};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use split_exec::cost::CostModel;
use split_exec::offline_cache::graph_key;
use split_exec::{SplitExecConfig, SplitMachine};

/// Why a [`WorkloadSpec`] is invalid.
///
/// Degenerate specs used to surface as panics deep inside generation
/// (`rng.gen_range(0..0)` for an empty family, NaN/∞ arrival times from a
/// zero-rate or zero-burst process); [`WorkloadSpec::validate`] rejects
/// them up front with a description of the offending field.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The arrival rate is zero, negative or non-finite.
    InvalidRate {
        /// The offending rate.
        rate_hz: f64,
    },
    /// A bursty process with zero jobs per burst.
    ZeroBurst,
    /// The family mix is empty.
    EmptyMix,
    /// A mix weight is negative or non-finite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// All mix weights are zero.
    NoPositiveWeight,
    /// A family spec cannot produce instances.
    DegenerateFamily {
        /// The family's debug label.
        family: String,
        /// What is wrong with it.
        problem: &'static str,
    },
    /// A deadline policy with a non-positive or non-finite parameter.
    InvalidDeadlinePolicy {
        /// The offending parameter value (slack seconds or slack factor).
        value: f64,
    },
    /// A multi-tenant composition with no tenants.
    NoTenants,
    /// A tenant's fair-share weight is non-positive or non-finite.
    InvalidTenantWeight {
        /// The tenant's name.
        tenant: String,
        /// The offending weight.
        weight: f64,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::InvalidRate { rate_hz } => {
                write!(f, "arrival rate must be positive and finite, got {rate_hz}")
            }
            WorkloadError::ZeroBurst => {
                write!(f, "bursty arrivals need at least one job per burst")
            }
            WorkloadError::EmptyMix => write!(f, "workload mix must contain at least one family"),
            WorkloadError::InvalidWeight { weight } => {
                write!(
                    f,
                    "mix weights must be non-negative and finite, got {weight}"
                )
            }
            WorkloadError::NoPositiveWeight => {
                write!(
                    f,
                    "workload mix must contain at least one positively weighted family"
                )
            }
            WorkloadError::DegenerateFamily { family, problem } => {
                write!(f, "family {family} is degenerate: {problem}")
            }
            WorkloadError::InvalidDeadlinePolicy { value } => {
                write!(f, "deadline slack must be positive and finite, got {value}")
            }
            WorkloadError::NoTenants => {
                write!(f, "a multi-tenant composition needs at least one tenant")
            }
            WorkloadError::InvalidTenantWeight { tenant, weight } => {
                write!(
                    f,
                    "tenant {tenant} weight must be positive and finite, got {weight}"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// How jobs arrive in an open workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival times with the given
    /// mean rate.
    Poisson {
        /// Mean arrival rate in jobs per (virtual) second.
        rate_hz: f64,
    },
    /// Bursty arrivals: bursts of `burst` back-to-back jobs, with the
    /// bursts themselves Poisson at `rate_hz / burst` so the long-run rate
    /// matches the Poisson process of the same `rate_hz`.
    Bursty {
        /// Long-run mean arrival rate in jobs per second.
        rate_hz: f64,
        /// Jobs per burst.
        burst: usize,
    },
}

/// How a generated job's completion deadline is derived from its arrival.
///
/// A deadline is an *absolute* virtual time: the latest finish the
/// submitting tenant considers acceptable.  The generator stamps it as
/// `arrival + slack`, where the slack comes from the policy:
///
/// * [`DeadlinePolicy::None`] — jobs carry no deadline (the pre-SLO
///   behavior, and the default); EDF ordering degrades to FIFO and the SLO
///   metrics stay empty.
/// * [`DeadlinePolicy::FixedSlack`] — every job gets the same slack,
///   regardless of size.  Small jobs are loose, big jobs are tight: the
///   shape of a customer-facing latency promise.
/// * [`DeadlinePolicy::ProportionalSlack`] — the slack is `factor` times
///   the job's predicted *cold* service time on the paper's reference
///   machine ([`split_exec::CostModel`] over `SplitMachine::paper_default`).
///   A factor of 1.0 is only feasible on an idle fleet with a cold cache;
///   production SLOs live around 2–10.  The prediction is analytic and
///   memoized, so stamping stays deterministic and cheap.
///
/// Like everything else about a workload, deadlines are a pure function of
/// the spec — two generations of the same spec stamp bit-identical
/// deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum DeadlinePolicy {
    /// No deadlines (the default).
    #[default]
    None,
    /// `deadline = arrival + slack_seconds` for every job.
    FixedSlack {
        /// The uniform slack in virtual seconds (must be positive, finite).
        slack_seconds: f64,
    },
    /// `deadline = arrival + factor × predicted cold service` on the
    /// reference machine.
    ProportionalSlack {
        /// Multiplier on the predicted cold service time (must be positive,
        /// finite).
        factor: f64,
    },
}

impl DeadlinePolicy {
    /// Reject non-positive or non-finite slack parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let value = match self {
            DeadlinePolicy::None => return Ok(()),
            DeadlinePolicy::FixedSlack { slack_seconds } => *slack_seconds,
            DeadlinePolicy::ProportionalSlack { factor } => *factor,
        };
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(WorkloadError::InvalidDeadlinePolicy { value })
        }
    }

    /// The deadline of a job arriving at `arrival` with logical problem
    /// size `lps`, consulting `reference` for predicted service when the
    /// slack is proportional.
    fn deadline_for(&self, arrival: f64, lps: usize, reference: &CostModel) -> Option<f64> {
        match self {
            DeadlinePolicy::None => None,
            DeadlinePolicy::FixedSlack { slack_seconds } => Some(arrival + slack_seconds),
            DeadlinePolicy::ProportionalSlack { factor } => {
                // An analytic-model failure cannot happen for sizes the
                // generator produces; fall back to deadline-free rather
                // than poisoning the stream with NaN.
                let predicted = reference.costs(lps).ok()?.total_cold_seconds();
                Some(arrival + factor * predicted)
            }
        }
    }
}

/// One problem family in a workload mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FamilySpec {
    /// MAX-CUT over a cycle of `n` vertices with random edge weights: every
    /// job of the same `n` shares one interaction topology.
    MaxCutCycle {
        /// Cycle sizes to draw from (uniformly).
        sizes: Vec<usize>,
    },
    /// MAX-CUT over Erdős–Rényi graphs: `variants` distinct topologies of
    /// `n` vertices, drawn uniformly per job.
    MaxCutGnp {
        /// Vertex count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Number of distinct graph variants in circulation.
        variants: usize,
    },
    /// Number partitioning of `n` random values — the interaction graph is
    /// the complete graph `K_n`, so all jobs of one `n` share a topology.
    Partition {
        /// Set size.
        n: usize,
    },
    /// Minimum vertex cover over a fixed grid — one topology for the whole
    /// family.
    VertexCoverGrid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

impl FamilySpec {
    /// Reject fields that would make [`Self::instantiate`] panic or emit
    /// size-zero problems.
    fn validate(&self) -> Result<(), WorkloadError> {
        let degenerate = |problem| {
            Err(WorkloadError::DegenerateFamily {
                family: format!("{self:?}"),
                problem,
            })
        };
        match self {
            FamilySpec::MaxCutCycle { sizes } => {
                if sizes.is_empty() {
                    return degenerate("no cycle sizes to draw from");
                }
                if sizes.iter().any(|&n| n < 3) {
                    return degenerate("a cycle needs at least 3 vertices");
                }
            }
            FamilySpec::MaxCutGnp { n, p, variants } => {
                if *n < 2 {
                    return degenerate("a Gnp graph needs at least 2 vertices");
                }
                if !(0.0..=1.0).contains(p) {
                    return degenerate("edge probability must lie in [0, 1]");
                }
                if *variants == 0 {
                    return degenerate("no graph variants to draw from");
                }
            }
            FamilySpec::Partition { n } => {
                if *n < 2 {
                    return degenerate("partitioning needs at least 2 numbers");
                }
            }
            FamilySpec::VertexCoverGrid { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    return degenerate("a grid needs at least one row and column");
                }
            }
        }
        Ok(())
    }

    /// Generate one concrete instance: a label and the QUBO.
    fn instantiate(&self, rng: &mut ChaCha8Rng, base_seed: u64) -> (String, Qubo) {
        match self {
            FamilySpec::MaxCutCycle { sizes } => {
                let n = sizes[rng.gen_range(0..sizes.len())];
                let graph = generators::cycle(n);
                let weights: Vec<((usize, usize), f64)> = graph
                    .edges()
                    .map(|(u, v)| ((u, v), rng.gen_range(0.5..2.0)))
                    .collect();
                (
                    format!("maxcut-cycle-{n}"),
                    MaxCut::weighted(graph.clone(), &weights).to_qubo(),
                )
            }
            FamilySpec::MaxCutGnp { n, p, variants } => {
                let variant = rng.gen_range(0..*variants);
                // The graph seed depends only on the workload seed and the
                // variant index, so variant k is the same topology in every
                // job that draws it.
                let graph = generators::gnp(*n, *p, base_seed ^ (0xA5A5 + variant as u64));
                let weights: Vec<((usize, usize), f64)> = graph
                    .edges()
                    .map(|(u, v)| ((u, v), rng.gen_range(0.5..2.0)))
                    .collect();
                (
                    format!("maxcut-gnp-{n}-v{variant}"),
                    MaxCut::weighted(graph.clone(), &weights).to_qubo(),
                )
            }
            FamilySpec::Partition { n } => {
                let numbers: Vec<f64> = (0..*n).map(|_| rng.gen_range(1.0..50.0)).collect();
                (
                    format!("partition-{n}"),
                    NumberPartition::new(numbers).to_qubo(),
                )
            }
            FamilySpec::VertexCoverGrid { rows, cols } => (
                format!("vcover-grid-{rows}x{cols}"),
                VertexCover::new(generators::grid(*rows, *cols)).to_qubo(),
            ),
        }
    }
}

/// Specification of a workload: how many jobs, how they arrive, and the
/// weighted mix of problem families they are drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// RNG seed — the workload is a pure function of this spec.
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// `(weight, family)` pairs; weights need not be normalized.
    pub mix: Vec<(f64, FamilySpec)>,
    /// How each job's completion deadline is stamped
    /// ([`DeadlinePolicy::None`] = no deadlines).
    pub deadlines: DeadlinePolicy,
}

impl WorkloadSpec {
    /// The repeated-topology mix used by the acceptance demo: three cycle
    /// sizes re-solved with fresh coefficients plus a partition family —
    /// few topologies, many jobs, the shape an embedding cache loves.  The
    /// sizes are large enough that the modeled embedding cost (∝ LPS³)
    /// dwarfs the fixed programming constant, so warm and cold service
    /// times differ by an order of magnitude.
    pub fn repeated_topologies(jobs: usize, rate_hz: f64, seed: u64) -> Self {
        Self {
            jobs,
            seed,
            arrivals: ArrivalProcess::Poisson { rate_hz },
            mix: vec![
                (
                    3.0,
                    FamilySpec::MaxCutCycle {
                        sizes: vec![24, 30, 36],
                    },
                ),
                (1.0, FamilySpec::Partition { n: 28 }),
            ],
            deadlines: DeadlinePolicy::None,
        }
    }

    /// A diverse mix with many distinct topologies (caches help less).
    pub fn mixed(jobs: usize, rate_hz: f64, seed: u64) -> Self {
        Self {
            jobs,
            seed,
            arrivals: ArrivalProcess::Poisson { rate_hz },
            mix: vec![
                (
                    2.0,
                    FamilySpec::MaxCutGnp {
                        n: 14,
                        p: 0.3,
                        variants: 12,
                    },
                ),
                (
                    1.0,
                    FamilySpec::MaxCutCycle {
                        sizes: vec![8, 12, 16, 20],
                    },
                ),
                (1.0, FamilySpec::VertexCoverGrid { rows: 4, cols: 4 }),
            ],
            deadlines: DeadlinePolicy::None,
        }
    }

    /// The repeated-topology mix under bursty arrivals.
    pub fn bursty(jobs: usize, rate_hz: f64, burst: usize, seed: u64) -> Self {
        Self {
            arrivals: ArrivalProcess::Bursty { rate_hz, burst },
            ..Self::repeated_topologies(jobs, rate_hz, seed)
        }
    }

    /// The same spec with every job's deadline stamped by `deadlines`.
    pub fn with_deadlines(mut self, deadlines: DeadlinePolicy) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Check the spec for fields that would produce NaN/∞ arrival times or
    /// panic during generation: non-positive rates, zero-job bursts, empty
    /// mixes, and degenerate family parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let rate_hz = match self.arrivals {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Bursty { rate_hz, burst } => {
                if burst == 0 {
                    return Err(WorkloadError::ZeroBurst);
                }
                rate_hz
            }
        };
        if !(rate_hz.is_finite() && rate_hz > 0.0) {
            return Err(WorkloadError::InvalidRate { rate_hz });
        }
        if self.mix.is_empty() {
            return Err(WorkloadError::EmptyMix);
        }
        for (weight, family) in &self.mix {
            if !(weight.is_finite() && *weight >= 0.0) {
                return Err(WorkloadError::InvalidWeight { weight: *weight });
            }
            family.validate()?;
        }
        if self.mix.iter().map(|(w, _)| w).sum::<f64>() <= 0.0 {
            return Err(WorkloadError::NoPositiveWeight);
        }
        self.deadlines.validate()
    }

    /// Generate the job stream, rejecting invalid specs with a
    /// [`WorkloadError`] instead of panicking mid-generation.
    pub fn try_generate(&self) -> Result<Workload, WorkloadError> {
        self.validate()?;
        Ok(self.generate_unchecked())
    }

    /// Generate the job stream.
    ///
    /// # Panics
    /// Panics on an invalid spec; use [`Self::try_generate`] to get the
    /// validation error instead.
    pub fn generate(&self) -> Workload {
        self.try_generate()
            .unwrap_or_else(|err| panic!("invalid workload spec: {err}"))
    }

    /// The generation pass proper; assumes [`Self::validate`] succeeded.
    fn generate_unchecked(&self) -> Workload {
        Workload::single_tenant(self.generate_unchecked_jobs())
    }

    /// Generate the raw job stream (default tenant) without wrapping it in
    /// a [`Workload`]; the multi-tenant composition
    /// ([`crate::tenant::MultiTenantSpec`]) re-stamps tenant ids and merges
    /// several of these streams.  Assumes [`Self::validate`] succeeded.
    pub(crate) fn generate_unchecked_jobs(&self) -> Vec<Job> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let total_weight: f64 = self.mix.iter().map(|(w, _)| w.max(0.0)).sum();
        // Reference oracle for proportional deadline slack: the paper's
        // default machine with the default application config — a fixed,
        // fleet-independent yardstick, so the same spec stamps the same
        // deadlines no matter which fleet later serves it.
        let reference = CostModel::new(SplitMachine::paper_default(), SplitExecConfig::default());

        let mut jobs = Vec::with_capacity(self.jobs);
        let mut clock = 0.0_f64;
        let mut burst_remaining = 0usize;
        for id in 0..self.jobs {
            // Advance the arrival clock.
            match self.arrivals {
                ArrivalProcess::Poisson { rate_hz } => {
                    clock += exponential(&mut rng, rate_hz);
                }
                ArrivalProcess::Bursty { rate_hz, burst } => {
                    if burst_remaining == 0 {
                        clock += exponential(&mut rng, rate_hz / burst as f64);
                        burst_remaining = burst;
                    }
                    burst_remaining -= 1;
                }
            }

            // Draw a family by weight.
            let mut draw = rng.gen_range(0.0..total_weight);
            let mut chosen = &self.mix[0].1;
            for (weight, family) in &self.mix {
                let weight = weight.max(0.0);
                if draw < weight {
                    chosen = family;
                    break;
                }
                draw -= weight;
            }

            let (family, qubo) = chosen.instantiate(&mut rng, self.seed);
            let interaction = qubo_to_ising(&qubo).ising.interaction_graph();
            let lps = qubo.num_variables();
            jobs.push(Job {
                id,
                tenant: TenantId::DEFAULT,
                family: family.into(),
                lps,
                topology_key: graph_key(&interaction),
                arrival: clock,
                deadline: self.deadlines.deadline_for(clock, lps, &reference),
            });
        }
        jobs
    }
}

/// An exponential draw with the given rate (inverse-CDF of a uniform).
fn exponential(rng: &mut ChaCha8Rng, rate_hz: f64) -> f64 {
    assert!(rate_hz > 0.0, "arrival rate must be positive");
    let u: f64 = rng.gen::<f64>();
    // 1 - u is in (0, 1]; ln of it is finite and non-positive.
    -(1.0 - u).ln() / rate_hz
}

/// A generated job stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Jobs in arrival order.
    pub jobs: Vec<Job>,
    /// The tenants the jobs belong to, in id order.  Single-tenant
    /// workloads carry the one default tenant.
    pub tenants: Vec<TenantMeta>,
}

impl Workload {
    /// Wrap a raw job stream as a single-tenant workload (every job is
    /// expected to carry [`TenantId::DEFAULT`]).
    pub fn single_tenant(jobs: Vec<Job>) -> Self {
        Self {
            jobs,
            tenants: vec![TenantMeta::single()],
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The largest logical problem size in the stream.
    pub fn max_lps(&self) -> usize {
        self.jobs.iter().map(|j| j.lps).max().unwrap_or(0)
    }

    /// Number of jobs in the stream carrying a completion deadline.
    pub fn deadline_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.deadline.is_some()).count()
    }

    /// Number of distinct interaction topologies in the stream.
    pub fn distinct_topologies(&self) -> usize {
        let keys: std::collections::HashSet<u64> =
            self.jobs.iter().map(|j| j.topology_key).collect();
        keys.len()
    }

    /// The fair-share weight of `tenant` (1.0 for tenants without
    /// metadata, so hand-built workloads behave uniformly).
    pub fn tenant_weight(&self, tenant: TenantId) -> f64 {
        self.tenants
            .iter()
            .find(|t| t.id == tenant)
            .map(|t| t.weight)
            .unwrap_or(1.0)
    }

    /// Number of tenant lanes the workload spans: one past the highest
    /// tenant id appearing in either the jobs or the tenant metadata.
    /// Both the per-tenant accounting arrays in the engine and the
    /// weighted-fair scheduler's weight vector are sized by this.
    pub fn lane_count(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.tenant.index() + 1)
            .chain(self.tenants.iter().map(|t| t.id.index() + 1))
            .max()
            .unwrap_or(0)
    }

    /// The per-tenant fair-share weights indexed by tenant id — the vector
    /// [`crate::scheduler::WeightedFairQueue::with_weights`] consumes.
    pub fn weights(&self) -> Vec<f64> {
        (0..self.lane_count())
            .map(|id| self.tenant_weight(TenantId(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = WorkloadSpec::repeated_topologies(40, 0.05, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        let c = WorkloadSpec::repeated_topologies(40, 0.05, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotone_and_ids_sequential() {
        let w = WorkloadSpec::mixed(60, 0.1, 3).generate();
        assert_eq!(w.len(), 60);
        for (i, job) in w.jobs.iter().enumerate() {
            assert_eq!(job.id, i);
            assert!(job.lps > 0);
        }
        assert!(w.jobs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn repeated_mix_has_few_topologies() {
        let w = WorkloadSpec::repeated_topologies(80, 0.05, 11).generate();
        // Three cycle sizes + one partition size = four distinct topologies.
        assert_eq!(w.distinct_topologies(), 4);
        assert!(w.max_lps() <= 36);
    }

    #[test]
    fn same_family_same_size_shares_a_topology_key() {
        let spec = WorkloadSpec {
            jobs: 30,
            seed: 5,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
            mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes: vec![12] })],
            deadlines: DeadlinePolicy::None,
        };
        let w = spec.generate();
        assert_eq!(w.distinct_topologies(), 1);
        assert!(w.jobs.iter().all(|j| j.lps == 12));
    }

    #[test]
    fn gnp_variants_produce_distinct_topologies() {
        let spec = WorkloadSpec {
            jobs: 60,
            seed: 9,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
            mix: vec![(
                1.0,
                FamilySpec::MaxCutGnp {
                    n: 12,
                    p: 0.4,
                    variants: 5,
                },
            )],
            deadlines: DeadlinePolicy::None,
        };
        let w = spec.generate();
        assert!(w.distinct_topologies() > 1);
        assert!(w.distinct_topologies() <= 5);
    }

    #[test]
    fn bursty_arrivals_cluster() {
        let w = WorkloadSpec::bursty(40, 0.1, 8, 3).generate();
        // Within a burst, consecutive arrival gaps are exactly zero.
        let zero_gaps = w
            .jobs
            .windows(2)
            .filter(|p| p[1].arrival == p[0].arrival)
            .count();
        assert!(zero_gaps >= 30, "only {zero_gaps} back-to-back arrivals");
    }

    fn spec_with(arrivals: ArrivalProcess, mix: Vec<(f64, FamilySpec)>) -> WorkloadSpec {
        WorkloadSpec {
            jobs: 4,
            seed: 0,
            arrivals,
            mix,
            deadlines: DeadlinePolicy::None,
        }
    }

    fn default_mix() -> Vec<(f64, FamilySpec)> {
        vec![(1.0, FamilySpec::Partition { n: 8 })]
    }

    #[test]
    fn empty_mix_is_rejected() {
        let spec = spec_with(ArrivalProcess::Poisson { rate_hz: 1.0 }, vec![]);
        assert_eq!(spec.try_generate().unwrap_err(), WorkloadError::EmptyMix);
    }

    #[test]
    fn zero_weight_mix_is_rejected() {
        let spec = spec_with(
            ArrivalProcess::Poisson { rate_hz: 1.0 },
            vec![(0.0, FamilySpec::Partition { n: 8 })],
        );
        assert_eq!(
            spec.try_generate().unwrap_err(),
            WorkloadError::NoPositiveWeight
        );
        let spec = spec_with(
            ArrivalProcess::Poisson { rate_hz: 1.0 },
            vec![(-1.0, FamilySpec::Partition { n: 8 })],
        );
        assert_eq!(
            spec.validate().unwrap_err(),
            WorkloadError::InvalidWeight { weight: -1.0 }
        );
    }

    #[test]
    fn zero_burst_is_rejected_not_nan() {
        // Regression: `Bursty { burst: 0 }` used to reach the arrival-time
        // division as `rate_hz / 0`, yielding NaN/∞ timestamps.
        let spec = spec_with(
            ArrivalProcess::Bursty {
                rate_hz: 1.0,
                burst: 0,
            },
            default_mix(),
        );
        assert_eq!(spec.try_generate().unwrap_err(), WorkloadError::ZeroBurst);
    }

    #[test]
    fn non_positive_rates_are_rejected() {
        for rate_hz in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let spec = spec_with(ArrivalProcess::Poisson { rate_hz }, default_mix());
            assert!(
                matches!(
                    spec.validate().unwrap_err(),
                    WorkloadError::InvalidRate { .. }
                ),
                "rate {rate_hz} should be rejected"
            );
        }
        let spec = spec_with(
            ArrivalProcess::Bursty {
                rate_hz: 0.0,
                burst: 4,
            },
            default_mix(),
        );
        assert!(matches!(
            spec.validate().unwrap_err(),
            WorkloadError::InvalidRate { .. }
        ));
    }

    #[test]
    fn degenerate_families_are_rejected() {
        // Regression: empty `sizes` used to panic in `rng.gen_range(0..0)`.
        let cases = [
            FamilySpec::MaxCutCycle { sizes: vec![] },
            FamilySpec::MaxCutCycle { sizes: vec![2] },
            FamilySpec::MaxCutGnp {
                n: 1,
                p: 0.5,
                variants: 3,
            },
            FamilySpec::MaxCutGnp {
                n: 10,
                p: 1.5,
                variants: 3,
            },
            FamilySpec::MaxCutGnp {
                n: 10,
                p: 0.5,
                variants: 0,
            },
            FamilySpec::Partition { n: 1 },
            FamilySpec::VertexCoverGrid { rows: 0, cols: 4 },
            FamilySpec::VertexCoverGrid { rows: 4, cols: 0 },
        ];
        for family in cases {
            let spec = spec_with(
                ArrivalProcess::Poisson { rate_hz: 1.0 },
                vec![(1.0, family.clone())],
            );
            let err = spec.try_generate().unwrap_err();
            assert!(
                matches!(err, WorkloadError::DegenerateFamily { .. }),
                "{family:?} should be degenerate, got {err:?}"
            );
            // The error names the offending family and renders as text.
            assert!(format!("{err}").contains("degenerate"));
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn generate_panics_with_the_validation_message() {
        spec_with(ArrivalProcess::Poisson { rate_hz: 1.0 }, vec![]).generate();
    }

    #[test]
    fn deadline_free_specs_stamp_no_deadlines() {
        let w = WorkloadSpec::repeated_topologies(10, 1.0, 3).generate();
        assert!(w.jobs.iter().all(|j| j.deadline.is_none()));
        assert_eq!(w.deadline_jobs(), 0);
    }

    #[test]
    fn fixed_slack_deadlines_sit_exactly_slack_past_arrival() {
        let spec = WorkloadSpec::repeated_topologies(12, 1.0, 5)
            .with_deadlines(DeadlinePolicy::FixedSlack { slack_seconds: 9.5 });
        let w = spec.generate();
        assert_eq!(w.deadline_jobs(), 12);
        for job in &w.jobs {
            let deadline = job.deadline.expect("fixed slack stamps every job");
            assert!((deadline - job.arrival - 9.5).abs() < 1e-12);
        }
    }

    #[test]
    fn proportional_slack_scales_with_predicted_service() {
        let spec = WorkloadSpec::repeated_topologies(30, 1.0, 7)
            .with_deadlines(DeadlinePolicy::ProportionalSlack { factor: 2.0 });
        let w = spec.generate();
        assert_eq!(w.deadline_jobs(), 30);
        // Bigger problems get more slack: group by lps and compare.
        let slack = |job: &Job| job.deadline.unwrap() - job.arrival;
        for a in &w.jobs {
            for b in &w.jobs {
                if a.lps < b.lps {
                    assert!(
                        slack(a) < slack(b),
                        "lps {} slack {} !< lps {} slack {}",
                        a.lps,
                        slack(a),
                        b.lps,
                        slack(b)
                    );
                }
                if a.lps == b.lps {
                    assert!((slack(a) - slack(b)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn deadline_stamping_is_deterministic() {
        let spec = WorkloadSpec::mixed(25, 0.8, 11)
            .with_deadlines(DeadlinePolicy::ProportionalSlack { factor: 3.0 });
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn degenerate_deadline_policies_are_rejected() {
        for value in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            for policy in [
                DeadlinePolicy::FixedSlack {
                    slack_seconds: value,
                },
                DeadlinePolicy::ProportionalSlack { factor: value },
            ] {
                let spec = WorkloadSpec::repeated_topologies(5, 1.0, 1).with_deadlines(policy);
                assert!(
                    matches!(
                        spec.validate().unwrap_err(),
                        WorkloadError::InvalidDeadlinePolicy { .. }
                    ),
                    "{policy:?} should be rejected"
                );
            }
        }
        assert_eq!(DeadlinePolicy::None.validate(), Ok(()));
    }

    #[test]
    fn valid_specs_pass_validation() {
        assert_eq!(
            WorkloadSpec::repeated_topologies(10, 0.5, 1).validate(),
            Ok(())
        );
        assert_eq!(WorkloadSpec::mixed(10, 0.5, 1).validate(), Ok(()));
        assert_eq!(WorkloadSpec::bursty(10, 0.5, 4, 1).validate(), Ok(()));
        // try_generate agrees with generate on a valid spec.
        let spec = WorkloadSpec::repeated_topologies(10, 0.5, 1);
        assert_eq!(spec.try_generate().unwrap(), spec.generate());
    }
}
