//! The simulation engine: replaying a workload against a fleet.
//!
//! [`simulate`] is the whole simulator: pop the earliest event, update
//! state, let the scheduler dispatch, repeat until the future-event list is
//! empty.  Everything runs on the virtual clock of [`crate::event`] — no
//! wall time, no global RNG — so the outcome (trace included) is a pure
//! function of `(fleet seed, workload, policy, mode)`.
//!
//! Two workload modes:
//!
//! * **Open** — jobs arrive at the timestamps the workload generator drew
//!   (Poisson/bursty); the queue grows when the fleet saturates.
//! * **Closed** — `clients` jobs circulate: each completion (or rejection)
//!   releases the next job from the stream immediately, the classic
//!   fixed-population throughput experiment.

use crate::event::{Event, EventKind, EventQueue};
use crate::fleet::Fleet;
use crate::job::{Job, JobRecord};
use crate::metrics::{LatencyStats, QpuStats, SimReport};
use crate::scheduler::Scheduler;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// How the workload's jobs are released into the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadMode {
    /// Use the generated arrival times (open system).
    Open,
    /// Keep a fixed population in flight: start `clients` jobs at time
    /// zero, release the next job whenever one finishes (closed system;
    /// generated arrival times are ignored).
    Closed {
        /// Number of concurrent clients.
        clients: usize,
    },
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Open or closed workload release.
    pub mode: WorkloadMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            mode: WorkloadMode::Open,
        }
    }
}

/// One entry of the deterministic event trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// An event fired.
    Fired(Event),
    /// The scheduler dispatched a job onto a device.
    Dispatched {
        /// Virtual time of the dispatch.
        time: f64,
        /// The job.
        job: usize,
        /// The device.
        qpu: usize,
        /// Whether the device's embedding cache was warm.
        warm: bool,
        /// When the job will finish.
        finish: f64,
    },
    /// A job was rejected (infeasible on every device).
    Rejected {
        /// Virtual time of the rejection.
        time: f64,
        /// The job.
        job: usize,
    },
}

/// Run `workload` against `fleet` under `scheduler`.
///
/// The fleet is consumed: its warm sets and occupancy are part of the run's
/// state, so policy comparisons must rebuild the fleet (same
/// [`crate::fleet::FleetConfig`], hence identical fault maps) per run.
pub fn simulate(
    mut fleet: Fleet,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    config: SimConfig,
) -> SimReport {
    let mut events = EventQueue::new();
    let mut trace: Vec<TraceRecord> = Vec::new();
    let mut queue: Vec<Job> = Vec::new();
    let mut queue_depth: Vec<(f64, usize)> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::with_capacity(workload.len());
    let mut in_flight: Vec<Option<JobRecord>> = vec![None; workload.len()];
    let mut rejected = 0usize;
    let mut clock = 0.0_f64;

    // Release the initial population.
    let mut next_release = match config.mode {
        WorkloadMode::Open => {
            for job in &workload.jobs {
                events.schedule(job.arrival, EventKind::JobArrival { job: job.id });
            }
            workload.len()
        }
        WorkloadMode::Closed { clients } => {
            let initial = clients.max(1).min(workload.len());
            for job in &workload.jobs[..initial] {
                events.schedule(0.0, EventKind::JobArrival { job: job.id });
            }
            initial
        }
    };

    while let Some(event) = events.pop() {
        clock = event.time;
        trace.push(TraceRecord::Fired(event));
        let mut release_next = false;

        match event.kind {
            EventKind::JobArrival { job } => {
                let mut job = workload.jobs[job].clone();
                // In closed mode the release time is the true arrival.
                job.arrival = clock;
                if fleet.devices.iter().any(|d| d.can_run(job.lps)) {
                    queue.push(job);
                } else {
                    rejected += 1;
                    trace.push(TraceRecord::Rejected {
                        time: clock,
                        job: job.id,
                    });
                    release_next = true;
                }
            }
            EventKind::JobCompletion { qpu: _, job } => {
                let record = in_flight[job]
                    .take()
                    .expect("completion event for a job that was never dispatched");
                records.push(record);
                release_next = true;
            }
        }

        // Closed mode: every departure (completion or rejection) admits the
        // next job of the stream.
        if release_next
            && matches!(config.mode, WorkloadMode::Closed { .. })
            && next_release < workload.len()
        {
            events.schedule(
                clock,
                EventKind::JobArrival {
                    job: workload.jobs[next_release].id,
                },
            );
            next_release += 1;
        }

        // Let the policy fill every idle device it wants to.
        while let Some((qi, d)) = scheduler.next_assignment(&queue, &fleet, clock) {
            let job = queue.remove(qi);
            let device = &mut fleet.devices[d];
            debug_assert!(device.is_idle(clock) && device.can_run(job.lps));
            let warm = device.is_warm(job.topology_key);
            let Ok((s1, s2, s3)) = device.service_breakdown(job.lps, warm) else {
                // An analytic-model failure is unreachable for feasible
                // sizes; account it as a rejection rather than crashing.
                rejected += 1;
                trace.push(TraceRecord::Rejected {
                    time: clock,
                    job: job.id,
                });
                // Closed mode: this departure, too, admits the next job —
                // otherwise the population silently shrinks.
                if matches!(config.mode, WorkloadMode::Closed { .. })
                    && next_release < workload.len()
                {
                    events.schedule(
                        clock,
                        EventKind::JobArrival {
                            job: workload.jobs[next_release].id,
                        },
                    );
                    next_release += 1;
                }
                continue;
            };
            let service = s1 + s2 + s3;
            let finish = clock + service;
            device.busy_until = finish;
            device.busy_seconds += service;
            device.jobs_served += 1;
            if warm {
                device.warm_hits += 1;
                // A hit must refresh recency, or LRU degenerates to FIFO
                // eviction and hot topologies get evicted under churn.
                device.touch_warm(job.topology_key);
            } else {
                device.cold_misses += 1;
                device.mark_warm(job.topology_key, job.lps);
            }
            in_flight[job.id] = Some(JobRecord {
                job: job.id,
                qpu: d,
                arrival: job.arrival,
                start: clock,
                finish,
                stage1_seconds: s1,
                stage2_seconds: s2,
                stage3_seconds: s3,
                warm_hit: warm,
            });
            events.schedule(
                finish,
                EventKind::JobCompletion {
                    qpu: d,
                    job: job.id,
                },
            );
            trace.push(TraceRecord::Dispatched {
                time: clock,
                job: job.id,
                qpu: d,
                warm,
                finish,
            });
        }

        queue_depth.push((clock, queue.len()));
    }

    debug_assert!(
        queue.is_empty(),
        "event list drained with jobs still queued"
    );

    let makespan = clock;
    let latencies: Vec<f64> = records.iter().map(|r| r.latency_seconds()).collect();
    let waits: Vec<f64> = records.iter().map(|r| r.wait_seconds()).collect();
    let per_qpu: Vec<QpuStats> = fleet
        .devices
        .iter()
        .map(|d| QpuStats {
            qpu: d.id,
            jobs: d.jobs_served,
            utilization: if makespan > 0.0 {
                d.busy_seconds / makespan
            } else {
                0.0
            },
            warm_hits: d.warm_hits,
            cold_misses: d.cold_misses,
            warm_topologies: d.warm_topologies(),
            evictions: d.evictions(),
            cache_capacity: d.cache_capacity(),
        })
        .collect();

    SimReport {
        policy: scheduler.name().to_string(),
        jobs: workload.len(),
        completed: records.len(),
        rejected,
        makespan_seconds: makespan,
        latency: LatencyStats::from_values(&latencies),
        wait: LatencyStats::from_values(&waits),
        stage1_seconds: records.iter().map(|r| r.stage1_seconds).sum(),
        stage2_seconds: records.iter().map(|r| r.stage2_seconds).sum(),
        stage3_seconds: records.iter().map(|r| r.stage3_seconds).sum(),
        per_qpu,
        queue_depth,
        records,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::scheduler::PolicyKind;
    use crate::workload::WorkloadSpec;
    use split_exec::SplitExecConfig;

    fn fleet(seed: u64) -> Fleet {
        Fleet::new(
            FleetConfig {
                qpus: 3,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        )
    }

    fn run(policy: PolicyKind, seed: u64, mode: WorkloadMode) -> SimReport {
        let workload = WorkloadSpec::repeated_topologies(40, 0.5, seed).generate();
        let mut scheduler = policy.build();
        simulate(
            fleet(seed),
            &workload,
            scheduler.as_mut(),
            SimConfig { mode },
        )
    }

    #[test]
    fn every_job_is_accounted_for() {
        for policy in PolicyKind::all() {
            let report = run(policy, 7, WorkloadMode::Open);
            assert_eq!(report.completed + report.rejected, report.jobs);
            assert_eq!(report.records.len(), report.completed);
            assert_eq!(
                report.per_qpu.iter().map(|q| q.jobs).sum::<usize>(),
                report.completed
            );
            assert!(report.makespan_seconds > 0.0);
        }
    }

    #[test]
    fn per_job_times_are_causal() {
        let report = run(PolicyKind::Fifo, 3, WorkloadMode::Open);
        for r in &report.records {
            assert!(r.start >= r.arrival, "job {} started before arrival", r.job);
            assert!(r.finish > r.start);
            let service = r.stage1_seconds + r.stage2_seconds + r.stage3_seconds;
            assert!((r.service_seconds() - service).abs() < 1e-9);
        }
    }

    #[test]
    fn devices_never_overlap_jobs() {
        let report = run(PolicyKind::ShortestPredictedFirst, 5, WorkloadMode::Open);
        for qpu in 0..3 {
            let mut spans: Vec<(f64, f64)> = report
                .records
                .iter()
                .filter(|r| r.qpu == qpu)
                .map(|r| (r.start, r.finish))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1 - 1e-12,
                    "device {qpu} overlapped: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn stage1_dominates_at_fleet_scale() {
        // The paper's single-machine headline must survive the move to a
        // fleet: summed stage-1 service far exceeds summed stage-2.
        for policy in PolicyKind::all() {
            let report = run(policy, 11, WorkloadMode::Open);
            assert!(
                report.stage1_fraction() > 0.9,
                "{}: stage-1 fraction {}",
                report.policy,
                report.stage1_fraction()
            );
            assert!(report.stage1_seconds > 100.0 * report.stage2_seconds);
        }
    }

    #[test]
    fn closed_mode_keeps_population_bounded() {
        let report = run(PolicyKind::Fifo, 9, WorkloadMode::Closed { clients: 2 });
        assert_eq!(report.completed + report.rejected, report.jobs);
        // With 2 clients, at most 2 jobs are ever queued or in service, so
        // the dispatch queue never exceeds the client count.
        assert!(report.max_queue_depth() <= 2);
    }

    #[test]
    fn warm_hits_accumulate_on_repeated_topologies() {
        let report = run(PolicyKind::CacheAffinity, 13, WorkloadMode::Open);
        assert!(report.warm_hits() > 0);
        // Cold embeds are bounded by topologies × devices.
        assert!(report.cold_misses() <= 4 * 3);
    }

    #[test]
    fn empty_workload_produces_an_empty_report() {
        let workload = Workload { jobs: vec![] };
        let mut scheduler = PolicyKind::Fifo.build();
        let report = simulate(
            fleet(1),
            &workload,
            scheduler.as_mut(),
            SimConfig::default(),
        );
        assert_eq!(report.jobs, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_seconds, 0.0);
        assert!(report.trace.is_empty());
    }
}
