//! The simulation engine: replaying a workload against a fleet.
//!
//! [`simulate`] is the whole simulator: pop the earliest event, update
//! state, let the scheduler dispatch, repeat until the future-event list is
//! empty.  Everything runs on the virtual clock of [`crate::event`] — no
//! wall time, no global RNG — so the outcome (trace included) is a pure
//! function of `(fleet seed, workload, policy, admission, mode)`.
//!
//! [`simulate_with_admission`] interposes an
//! [`AdmissionController`] between
//! arrival and the scheduler: accepted jobs queue as usual, shed jobs are
//! dropped and counted per tenant, deferred jobs re-arrive at the
//! controller's chosen virtual time (with their original arrival stamp in
//! open mode, so deferral shows up in the queueing delay).
//!
//! [`simulate_with_telemetry`] is the fully instrumented core the other
//! entry points wrap: the trace stream goes to a caller-chosen
//! [`TraceSink`] (retention is a *policy* — the legacy entry points attach
//! a [`crate::telemetry::VecSink`] so `SimReport.trace` keeps working,
//! large runs attach a [`crate::telemetry::NullSink`]), and an optional
//! [`MetricsRegistry`] samples queue depth, per-QPU utilization, cache
//! hit-rate, and per-tenant lane depth on the virtual clock.  Telemetry is
//! a pure observer: any sink/registry combination yields bit-identical
//! reports (asserted by the purity tests below).
//!
//! Two workload modes:
//!
//! * **Open** — jobs arrive at the timestamps the workload generator drew
//!   (Poisson/bursty); the queue grows when the fleet saturates.
//! * **Closed** — `clients` jobs circulate: each completion (or rejection)
//!   releases the next job from the stream immediately, the classic
//!   fixed-population throughput experiment.

use crate::admission::{AdmissionContext, AdmissionController, AdmissionDecision, AdmitAll};
use crate::event::{Event, EventKind, EventQueue};
use crate::fleet::Fleet;
use crate::job::{Job, JobRecord};
use crate::metrics::{LatencyStats, QpuStats, SimReport, TenantStats};
use crate::scheduler::Scheduler;
use crate::telemetry::{MetricsRegistry, SimSeries, StreamingHistogram, TraceSink, VecSink};
use crate::tenant::{TenantId, TenantMeta};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// How the workload's jobs are released into the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadMode {
    /// Use the generated arrival times (open system).
    Open,
    /// Keep a fixed population in flight: start `clients` jobs at time
    /// zero, release the next job whenever one finishes (closed system;
    /// generated arrival times are ignored).
    Closed {
        /// Number of concurrent clients.
        clients: usize,
    },
}

/// How [`crate::metrics::LatencyStats`] percentiles are computed when the
/// run is summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PercentileMode {
    /// Sort the full sample set and take exact rank statistics (the
    /// historical behavior; allocation per summary is proportional to the
    /// completed-job count).
    #[default]
    Exact,
    /// Stream samples through a [`StreamingHistogram`] sketch: constant
    /// memory regardless of run size, quantiles within the sketch's
    /// documented relative-error bound
    /// ([`StreamingHistogram::relative_error_bound`]), `min`/`max`/`mean`
    /// still exact.  The right choice for million-job runs.
    Sketch,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Open or closed workload release.
    pub mode: WorkloadMode,
    /// Exact or sketch-backed report percentiles.
    pub percentiles: PercentileMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            mode: WorkloadMode::Open,
            percentiles: PercentileMode::Exact,
        }
    }
}

/// One entry of the deterministic event trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// An event fired.
    Fired(Event),
    /// The scheduler dispatched a job onto a device.
    Dispatched {
        /// Virtual time of the dispatch.
        time: f64,
        /// The job.
        job: usize,
        /// The device.
        qpu: usize,
        /// The tenant that submitted the job.
        tenant: TenantId,
        /// Whether the device's embedding cache was warm.
        warm: bool,
        /// When the job will finish.
        finish: f64,
        /// Stage-1 (embedding) service seconds.
        stage1_seconds: f64,
        /// Stage-2 (anneal) service seconds.
        stage2_seconds: f64,
        /// Stage-3 (readout) service seconds.
        stage3_seconds: f64,
    },
    /// A job was rejected (infeasible on every device).
    Rejected {
        /// Virtual time of the rejection.
        time: f64,
        /// The job.
        job: usize,
    },
    /// The admission controller shed a job.
    Shed {
        /// Virtual time of the shed.
        time: f64,
        /// The job.
        job: usize,
        /// The tenant that submitted it.
        tenant: TenantId,
        /// Whether the shed was a deadline-infeasibility shed
        /// ([`crate::admission::AdmissionDecision::ShedInfeasible`]) rather
        /// than a budget/backlog shed.
        infeasible: bool,
    },
    /// The admission controller deferred a job to a later arrival.
    Deferred {
        /// Virtual time of the deferral.
        time: f64,
        /// The job.
        job: usize,
        /// When the job re-arrives.
        until: f64,
    },
}

/// Run `workload` against `fleet` under `scheduler`, admitting every
/// arrival ([`AdmitAll`]).
///
/// The fleet is consumed: its warm sets and occupancy are part of the run's
/// state, so policy comparisons must rebuild the fleet (same
/// [`crate::fleet::FleetConfig`], hence identical fault maps) per run.
pub fn simulate(
    fleet: Fleet,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    config: SimConfig,
) -> SimReport {
    simulate_with_admission(fleet, workload, scheduler, &mut AdmitAll, config)
}

/// [`simulate`], with an [`AdmissionController`] gating every arrival
/// before it reaches the scheduler: accepted jobs queue, shed jobs are
/// dropped (counted per tenant), deferred jobs re-arrive at the
/// controller's chosen virtual time.
///
/// Retains the full event trace in `SimReport.trace` via a
/// [`VecSink`] — the pre-telemetry behavior, kept for replay and
/// determinism tests.  Large runs should call
/// [`simulate_with_telemetry`] with a [`crate::telemetry::NullSink`]
/// instead, so retention is opt-in.
pub fn simulate_with_admission(
    fleet: Fleet,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    admission: &mut dyn AdmissionController,
    config: SimConfig,
) -> SimReport {
    let mut sink = VecSink::new();
    let mut report = simulate_with_telemetry(
        fleet, workload, scheduler, admission, config, &mut sink, None,
    );
    report.trace = sink.into_trace();
    report
}

/// Every buffer the dispatch loop writes to, sized for the whole run up
/// front.
///
/// This is the **hot path contract**'s allocation half (see
/// `docs/ARCHITECTURE.md`): the event loop in [`simulate_with_telemetry`]
/// only ever writes into these pre-sized buffers, so steady-state dispatch
/// performs zero heap allocations.  `sx_lint`'s A001 rule enforces the
/// shape statically (hot code may only `push`/`insert` into
/// `with_capacity`-backed receivers) and `tests/alloc_budget.rs` pins the
/// behavior dynamically with a counting allocator.
struct SimScratch {
    events: EventQueue,
    queue: Vec<Job>,
    queue_depth: Vec<(f64, usize)>,
    records: Vec<JobRecord>,
    in_flight: Vec<Option<JobRecord>>,
    /// When each job first entered the system (closed mode re-stamps
    /// arrivals with the release clock, but a deferred re-arrival must keep
    /// its original stamp or `now - arrival` — the controller's total-defer
    /// measure — is always zero and `max_defer_seconds` can never bind).
    released_at: Vec<Option<f64>>,
    tenant_depth: Vec<usize>,
    tenant_depth_max: Vec<usize>,
    tenant_shed: Vec<usize>,
    tenant_shed_infeasible: Vec<usize>,
    tenant_deferrals: Vec<usize>,
    tenant_rejected: Vec<usize>,
}

impl SimScratch {
    /// Allocate every per-run buffer once, before the event loop starts.
    ///
    /// Capacity arithmetic: the queue and the record list hold at most one
    /// entry per job; the future-event list holds the un-fired arrivals
    /// plus one in-flight completion per device; the depth series gets one
    /// sample per event, and a run without deferrals fires at most one
    /// arrival plus one completion per job (admission deferrals re-arrive
    /// and may grow the series past the estimate — amortized doubling,
    /// never per-event).
    // sx-lint: hot-exempt -- once-per-run setup: the dispatch loop only writes into buffers sized here
    fn for_run(workload: &Workload, fleet: &Fleet, lanes: usize) -> Self {
        let jobs = workload.len();
        Self {
            events: EventQueue::with_capacity(jobs + fleet.devices.len() + 1),
            queue: Vec::with_capacity(jobs),
            queue_depth: Vec::with_capacity(2 * jobs + 1),
            records: Vec::with_capacity(jobs),
            in_flight: vec![None; jobs],
            released_at: vec![None; jobs],
            tenant_depth: vec![0usize; lanes],
            tenant_depth_max: vec![0usize; lanes],
            tenant_shed: vec![0usize; lanes],
            tenant_shed_infeasible: vec![0usize; lanes],
            tenant_deferrals: vec![0usize; lanes],
            tenant_rejected: vec![0usize; lanes],
        }
    }
}

/// The fully instrumented engine core: every trace record goes to `sink`
/// (never retained by the engine itself — `SimReport.trace` comes back
/// empty; attach a [`VecSink`] and move its records in if retention is
/// wanted, as [`simulate_with_admission`] does), and when `registry` is
/// provided its standard instruments ([`MetricsRegistry::sim_series`]) are
/// fed and sampled on the virtual clock after every event.
///
/// Telemetry is a **pure observer**: for fixed simulation inputs, every
/// choice of `sink`/`registry` produces an identical report (the
/// `telemetry_is_a_pure_observer` tests assert bitwise equality).
///
/// This function is the simulator's hot path: all per-event work happens
/// in its event loop, which by contract performs no heap allocation in the
/// steady state (buffers come pre-sized from `SimScratch`, per-job
/// cloning is refcount-only, and report assembly is deferred to
/// `assemble_report` after the loop drains).
#[allow(clippy::too_many_arguments)]
// sx-lint: hot-root -- the dispatch loop: all per-event work happens in this body
pub fn simulate_with_telemetry(
    mut fleet: Fleet,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    admission: &mut dyn AdmissionController,
    config: SimConfig,
    sink: &mut dyn TraceSink,
    mut registry: Option<&mut MetricsRegistry>,
) -> SimReport {
    let mut event_count = 0usize;
    let mut rejected = 0usize;
    let mut clock = 0.0_f64;
    // Per-tenant accounting, indexed by tenant id.
    let lanes = workload.lane_count();
    // Standard instruments, registered once up front so two identical runs
    // produce identical registration order.
    let probes: Option<SimSeries> = registry
        .as_deref_mut()
        .map(|r| r.sim_series(fleet.devices.len(), lanes));
    let SimScratch {
        mut events,
        mut queue,
        mut queue_depth,
        mut records,
        mut in_flight,
        mut released_at,
        mut tenant_depth,
        mut tenant_depth_max,
        mut tenant_shed,
        mut tenant_shed_infeasible,
        mut tenant_deferrals,
        mut tenant_rejected,
    } = SimScratch::for_run(workload, &fleet, lanes);
    let mut shed = 0usize;
    let mut shed_infeasible = 0usize;
    let mut deferrals = 0usize;

    // Release the initial population.
    let mut next_release = match config.mode {
        WorkloadMode::Open => {
            for job in &workload.jobs {
                events.schedule(job.arrival, EventKind::JobArrival { job: job.id });
            }
            workload.len()
        }
        WorkloadMode::Closed { clients } => {
            let initial = clients.max(1).min(workload.len());
            for job in &workload.jobs[..initial] {
                events.schedule(0.0, EventKind::JobArrival { job: job.id });
            }
            initial
        }
    };

    while let Some(event) = events.pop() {
        clock = event.time;
        event_count += 1;
        sink.on_record(&TraceRecord::Fired(event), clock);
        let mut release_next = false;

        match event.kind {
            EventKind::JobArrival { job } => {
                let mut job = workload.jobs[job].clone();
                // In closed mode the *first* release time is the true
                // arrival; open mode keeps the generated stamp.  Either
                // way a deferred re-arrival keeps the original stamp, so
                // its queueing delay includes the defer time and the
                // admission controller can see how long it has deferred.
                // Deadlines are slack relative to arrival, so a re-stamped
                // arrival re-anchors the deadline by the same shift —
                // otherwise closed-mode deadlines would stay pinned to the
                // generated open-mode clock and every late release would
                // read as an SLO miss regardless of service quality.
                if matches!(config.mode, WorkloadMode::Closed { .. }) {
                    let released = *released_at[job.id].get_or_insert(clock);
                    if let Some(deadline) = job.deadline {
                        job.deadline = Some(released + (deadline - job.arrival));
                    }
                    job.arrival = released;
                }
                let lane = job.tenant.index();
                if !fleet.devices.iter().any(|d| d.can_run(job.lps)) {
                    rejected += 1;
                    tenant_rejected[lane] += 1;
                    sink.on_record(
                        &TraceRecord::Rejected {
                            time: clock,
                            job: job.id,
                        },
                        clock,
                    );
                    release_next = true;
                } else {
                    // The controller's best-case completion estimate: the
                    // earliest any feasible device could finish this job,
                    // priced *warm* (service can only be slower) and with no
                    // queueing ahead of it (waiting only adds delay).  A
                    // true lower bound, so `estimate > deadline` proves a
                    // miss and deadline-infeasibility shedding can never
                    // claim a feasible job.  Only deadline-carrying jobs
                    // pay for the estimate — it exists solely to be
                    // compared against a deadline.
                    let best_case = job.deadline.map(|_| {
                        fleet
                            .devices
                            .iter()
                            .filter(|d| d.can_run(job.lps))
                            .filter_map(|d| {
                                let (s1, s2, s3) = d.service_breakdown(job.lps, true).ok()?;
                                Some((d.busy_until - clock).max(0.0) + s1 + s2 + s3)
                            })
                            .fold(f64::INFINITY, f64::min)
                    });
                    let ctx = AdmissionContext {
                        tenant_queue_depth: tenant_depth[lane],
                        predicted_completion: best_case
                            .filter(|b| b.is_finite())
                            .map(|b| clock + b),
                    };
                    match admission.admit(&job, &ctx, clock) {
                        AdmissionDecision::Defer { until } if until > clock => {
                            deferrals += 1;
                            tenant_deferrals[lane] += 1;
                            sink.on_record(
                                &TraceRecord::Deferred {
                                    time: clock,
                                    job: job.id,
                                    until,
                                },
                                clock,
                            );
                            events.schedule(until, EventKind::JobArrival { job: job.id });
                        }
                        AdmissionDecision::Accept => {
                            tenant_depth[lane] += 1;
                            tenant_depth_max[lane] = tenant_depth_max[lane].max(tenant_depth[lane]);
                            queue.push(job);
                        }
                        // A defer that does not advance the clock would loop
                        // forever; shedding is the only safe fallback.
                        decision @ (AdmissionDecision::Shed
                        | AdmissionDecision::ShedInfeasible
                        | AdmissionDecision::Defer { .. }) => {
                            let infeasible = decision == AdmissionDecision::ShedInfeasible;
                            shed += 1;
                            tenant_shed[lane] += 1;
                            if infeasible {
                                shed_infeasible += 1;
                                tenant_shed_infeasible[lane] += 1;
                            }
                            sink.on_record(
                                &TraceRecord::Shed {
                                    time: clock,
                                    job: job.id,
                                    tenant: job.tenant,
                                    infeasible,
                                },
                                clock,
                            );
                            release_next = true;
                        }
                    }
                }
            }
            EventKind::JobCompletion { qpu: _, job } => {
                let record = in_flight[job]
                    .take()
                    // sx-lint: allow(A002) -- same engine invariant as the H003 allow below: the expect is unreachable
                    // sx-lint: allow(H003) -- engine invariant: a JobCompletion is scheduled exactly once, at dispatch
                    .expect("completion event for a job that was never dispatched");
                if let (Some(reg), Some(p)) = (registry.as_deref_mut(), probes.as_ref()) {
                    reg.inc_counter(p.completions, 1);
                    reg.observe(p.latency, record.latency_seconds());
                    reg.observe(p.wait, record.wait_seconds());
                }
                records.push(record);
                release_next = true;
            }
        }

        // Closed mode: every departure (completion or rejection) admits the
        // next job of the stream.
        if release_next
            && matches!(config.mode, WorkloadMode::Closed { .. })
            && next_release < workload.len()
        {
            events.schedule(
                clock,
                EventKind::JobArrival {
                    job: workload.jobs[next_release].id,
                },
            );
            next_release += 1;
        }

        // Let the policy fill every idle device it wants to.
        while let Some((qi, d)) = scheduler.next_assignment(&queue, &fleet, clock) {
            let job = queue.remove(qi);
            tenant_depth[job.tenant.index()] -= 1;
            let device = &mut fleet.devices[d];
            debug_assert!(device.is_idle(clock) && device.can_run(job.lps));
            let warm = device.is_warm(job.topology_key);
            let Ok((s1, s2, s3)) = device.service_breakdown(job.lps, warm) else {
                // An analytic-model failure is unreachable for feasible
                // sizes; account it as a rejection rather than crashing.
                rejected += 1;
                tenant_rejected[job.tenant.index()] += 1;
                sink.on_record(
                    &TraceRecord::Rejected {
                        time: clock,
                        job: job.id,
                    },
                    clock,
                );
                // Closed mode: this departure, too, admits the next job —
                // otherwise the population silently shrinks.
                if matches!(config.mode, WorkloadMode::Closed { .. })
                    && next_release < workload.len()
                {
                    events.schedule(
                        clock,
                        EventKind::JobArrival {
                            job: workload.jobs[next_release].id,
                        },
                    );
                    next_release += 1;
                }
                continue;
            };
            let service = s1 + s2 + s3;
            let finish = clock + service;
            device.busy_until = finish;
            device.busy_seconds += service;
            device.jobs_served += 1;
            if warm {
                device.warm_hits += 1;
                // A hit must refresh recency, or LRU degenerates to FIFO
                // eviction and hot topologies get evicted under churn.
                device.touch_warm(job.topology_key);
            } else {
                device.cold_misses += 1;
                device.mark_warm(job.topology_key, job.lps);
            }
            in_flight[job.id] = Some(JobRecord {
                job: job.id,
                tenant: job.tenant,
                qpu: d,
                arrival: job.arrival,
                start: clock,
                finish,
                stage1_seconds: s1,
                stage2_seconds: s2,
                stage3_seconds: s3,
                warm_hit: warm,
                deadline: job.deadline,
            });
            events.schedule(
                finish,
                EventKind::JobCompletion {
                    qpu: d,
                    job: job.id,
                },
            );
            sink.on_record(
                &TraceRecord::Dispatched {
                    time: clock,
                    job: job.id,
                    qpu: d,
                    tenant: job.tenant,
                    warm,
                    finish,
                    stage1_seconds: s1,
                    stage2_seconds: s2,
                    stage3_seconds: s3,
                },
                clock,
            );
            if let (Some(reg), Some(p)) = (registry.as_deref_mut(), probes.as_ref()) {
                reg.inc_counter(p.dispatches, 1);
            }
        }

        queue_depth.push((clock, queue.len()));

        // Feed and sample the registry after the dispatch loop settles, so
        // every sample boundary sees a consistent post-event state.
        if let (Some(reg), Some(p)) = (registry.as_deref_mut(), probes.as_ref()) {
            reg.inc_counter(p.events, 1);
            reg.set_gauge(p.queue_depth, queue.len() as f64);
            let warm: usize = fleet.devices.iter().map(|d| d.warm_hits).sum();
            let cold: usize = fleet.devices.iter().map(|d| d.cold_misses).sum();
            let embeds = warm + cold;
            let hit_rate = if embeds > 0 {
                warm as f64 / embeds as f64
            } else {
                0.0
            };
            reg.set_gauge(p.hit_rate, hit_rate);
            for (q, d) in fleet.devices.iter().enumerate() {
                let util = if clock > 0.0 {
                    d.busy_seconds / clock
                } else {
                    0.0
                };
                if let Some(&id) = p.qpu_utilization.get(q) {
                    reg.set_gauge(id, util);
                }
            }
            for (lane, &depth) in tenant_depth.iter().enumerate() {
                if let Some(&id) = p.lane_depth.get(lane) {
                    reg.set_gauge(id, depth as f64);
                }
            }
            reg.tick(clock);
        }
    }

    debug_assert!(
        queue.is_empty(),
        "event list drained with jobs still queued"
    );

    assemble_report(
        &fleet,
        workload,
        scheduler.name(),
        admission.name(),
        lanes,
        config.percentiles,
        RunOutcome {
            event_count,
            rejected,
            shed,
            shed_infeasible,
            deferrals,
            makespan: clock,
            records,
            queue_depth,
            tenant_depth_max,
            tenant_shed,
            tenant_shed_infeasible,
            tenant_deferrals,
            tenant_rejected,
        },
    )
}

/// Everything the post-run summarization needs out of the drained event
/// loop: the counters and the buffers that move into the [`SimReport`].
struct RunOutcome {
    event_count: usize,
    rejected: usize,
    shed: usize,
    shed_infeasible: usize,
    deferrals: usize,
    makespan: f64,
    records: Vec<JobRecord>,
    queue_depth: Vec<(f64, usize)>,
    tenant_depth_max: Vec<usize>,
    tenant_shed: Vec<usize>,
    tenant_shed_infeasible: Vec<usize>,
    tenant_deferrals: Vec<usize>,
    tenant_rejected: Vec<usize>,
}

/// Summarize a drained run into a [`SimReport`].
///
/// Runs once per simulation, after the event loop: the percentile sweeps,
/// per-tenant regroupings and label formatting below allocate freely and
/// deliberately stay off the hot path.
/// Summarize one value stream under the configured percentile mode.
///
/// Exact mode materializes the values into one pre-sized buffer (capacity
/// from the caller, so the allocation count is independent of how many
/// values actually arrive — the alloc-budget test's N-vs-2N comparison
/// depends on that) and takes exact rank statistics.  Sketch mode streams
/// the values through a [`StreamingHistogram`] and never materializes
/// them.
// sx-lint: hot-exempt -- once per run, after the event loop drains; nothing here is per-event
fn summarize(
    percentiles: PercentileMode,
    capacity: usize,
    values: impl Iterator<Item = f64>,
) -> LatencyStats {
    match percentiles {
        PercentileMode::Exact => {
            let mut buf: Vec<f64> = Vec::with_capacity(capacity);
            buf.extend(values);
            LatencyStats::from_values(&buf)
        }
        PercentileMode::Sketch => {
            let mut sketch = StreamingHistogram::default();
            for v in values {
                sketch.observe(v);
            }
            LatencyStats::from_sketch(&sketch)
        }
    }
}

// sx-lint: hot-exempt -- once per run, after the event loop drains; nothing here is per-event
fn assemble_report(
    fleet: &Fleet,
    workload: &Workload,
    policy: &str,
    admission: &str,
    lanes: usize,
    percentiles: PercentileMode,
    run: RunOutcome,
) -> SimReport {
    let RunOutcome {
        event_count,
        rejected,
        shed,
        shed_infeasible,
        deferrals,
        makespan,
        records,
        queue_depth,
        tenant_depth_max,
        tenant_shed,
        tenant_shed_infeasible,
        tenant_deferrals,
        tenant_rejected,
    } = run;
    let per_qpu: Vec<QpuStats> = fleet
        .devices
        .iter()
        .map(|d| QpuStats {
            qpu: d.id,
            jobs: d.jobs_served,
            utilization: if makespan > 0.0 {
                d.busy_seconds / makespan
            } else {
                0.0
            },
            warm_hits: d.warm_hits,
            cold_misses: d.cold_misses,
            warm_topologies: d.warm_topologies(),
            evictions: d.evictions(),
            cache_bypassed: d.cache_bypassed(),
            cache_capacity: d.cache_capacity(),
        })
        .collect();

    let per_tenant: Vec<TenantStats> = (0..lanes)
        .map(|lane| {
            let id = TenantId(lane);
            let meta = workload
                .tenants
                .iter()
                .find(|t| t.id == id)
                .cloned()
                .unwrap_or(TenantMeta {
                    id,
                    name: format!("{id}"),
                    weight: 1.0,
                });
            // Pre-sized so the per-tenant regrouping's allocation count is
            // independent of the record count — keeps the alloc-budget
            // test's N-vs-2N comparison exact.
            let mut tenant_records: Vec<&JobRecord> = Vec::with_capacity(records.len());
            tenant_records.extend(records.iter().filter(|r| r.tenant == id));
            TenantStats {
                tenant: id,
                name: meta.name,
                weight: meta.weight,
                submitted: workload.jobs.iter().filter(|j| j.tenant == id).count(),
                completed: tenant_records.len(),
                shed: tenant_shed[lane],
                shed_infeasible: tenant_shed_infeasible[lane],
                deferrals: tenant_deferrals[lane],
                rejected: tenant_rejected[lane],
                max_queue_depth: tenant_depth_max[lane],
                latency: summarize(
                    percentiles,
                    tenant_records.len(),
                    tenant_records.iter().map(|r| r.latency_seconds()),
                ),
                wait: summarize(
                    percentiles,
                    tenant_records.len(),
                    tenant_records.iter().map(|r| r.wait_seconds()),
                ),
                slo_jobs: tenant_records
                    .iter()
                    .filter(|r| r.deadline.is_some())
                    .count(),
                slo_misses: tenant_records
                    .iter()
                    .filter(|r| r.slo_miss() == Some(true))
                    .count(),
                lateness: summarize(
                    percentiles,
                    tenant_records.len(),
                    tenant_records.iter().filter_map(|r| r.lateness_seconds()),
                ),
                service_seconds: tenant_records.iter().map(|r| r.service_seconds()).sum(),
            }
        })
        .collect();

    SimReport {
        policy: policy.to_string(),
        admission: admission.to_string(),
        jobs: workload.len(),
        events: event_count,
        completed: records.len(),
        shed,
        shed_infeasible,
        deferrals,
        rejected,
        makespan_seconds: makespan,
        latency: summarize(
            percentiles,
            records.len(),
            records.iter().map(|r| r.latency_seconds()),
        ),
        wait: summarize(
            percentiles,
            records.len(),
            records.iter().map(|r| r.wait_seconds()),
        ),
        lateness: summarize(
            percentiles,
            records.len(),
            records.iter().filter_map(|r| r.lateness_seconds()),
        ),
        stage1_seconds: records.iter().map(|r| r.stage1_seconds).sum(),
        stage2_seconds: records.iter().map(|r| r.stage2_seconds).sum(),
        stage3_seconds: records.iter().map(|r| r.stage3_seconds).sum(),
        per_qpu,
        per_tenant,
        queue_depth,
        records,
        // The engine never retains the trace; callers that want one attach
        // a `VecSink` and move its records in (see `simulate_with_admission`).
        trace: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::scheduler::PolicyKind;
    use crate::workload::WorkloadSpec;
    use split_exec::SplitExecConfig;

    fn fleet(seed: u64) -> Fleet {
        Fleet::new(
            FleetConfig {
                qpus: 3,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        )
    }

    fn run(policy: PolicyKind, seed: u64, mode: WorkloadMode) -> SimReport {
        let workload = WorkloadSpec::repeated_topologies(40, 0.5, seed).generate();
        let mut scheduler = policy.build();
        simulate(
            fleet(seed),
            &workload,
            scheduler.as_mut(),
            SimConfig {
                mode,
                ..SimConfig::default()
            },
        )
    }

    /// The sketch's own rank rule (1-based nearest rank ⌈q·n⌉), applied to
    /// the exact sorted samples — the value the sketch approximates.
    fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    #[test]
    fn sketch_percentiles_agree_with_exact_within_the_documented_bound() {
        let workload = WorkloadSpec::repeated_topologies(60, 0.8, 21).generate();
        let mut exact_sched = PolicyKind::CacheAffinity.build();
        let exact = simulate(
            fleet(21),
            &workload,
            exact_sched.as_mut(),
            SimConfig::default(),
        );
        let sketch_config = SimConfig {
            percentiles: PercentileMode::Sketch,
            ..SimConfig::default()
        };
        let mut sketch_sched = PolicyKind::CacheAffinity.build();
        let sketch = simulate(fleet(21), &workload, sketch_sched.as_mut(), sketch_config);

        // The percentile mode only changes how the report summarizes; the
        // simulation itself is bit-identical.
        assert_eq!(exact.records, sketch.records);
        assert_eq!(exact.makespan_seconds, sketch.makespan_seconds);
        assert_eq!(exact.events, sketch.events);

        // And the sketch path is itself deterministic.
        let mut again_sched = PolicyKind::CacheAffinity.build();
        let again = simulate(fleet(21), &workload, again_sched.as_mut(), sketch_config);
        assert_eq!(again, sketch);

        let bound = StreamingHistogram::default().relative_error_bound();
        for (what, values, exact_stats, sketch_stats) in [
            (
                "latency",
                exact
                    .records
                    .iter()
                    .map(|r| r.latency_seconds())
                    .collect::<Vec<f64>>(),
                &exact.latency,
                &sketch.latency,
            ),
            (
                "wait",
                exact
                    .records
                    .iter()
                    .map(|r| r.wait_seconds())
                    .collect::<Vec<f64>>(),
                &exact.wait,
                &sketch.wait,
            ),
        ] {
            let mut sorted = values;
            sorted.sort_unstable_by(f64::total_cmp);
            assert!(sketch_stats.percentiles_ordered(), "{what}: order holds");
            // min/max/mean are tracked exactly by the sketch (mean may
            // differ by summation order only).
            assert_eq!(exact_stats.min, sketch_stats.min, "{what}: exact min");
            assert_eq!(exact_stats.max, sketch_stats.max, "{what}: exact max");
            assert!(
                (exact_stats.mean - sketch_stats.mean).abs()
                    <= 1e-9 * exact_stats.mean.abs().max(1.0),
                "{what}: mean {} vs {}",
                exact_stats.mean,
                sketch_stats.mean
            );
            // Quantiles: within the documented relative-error bound of the
            // nearest-rank sample the sketch targets.
            for (name, q, got) in [
                ("p50", 0.50, sketch_stats.p50),
                ("p95", 0.95, sketch_stats.p95),
                ("p99", 0.99, sketch_stats.p99),
            ] {
                let target = nearest_rank(&sorted, q);
                assert!(
                    (got - target).abs() <= bound * target.abs() + 1e-12,
                    "{what}/{name}: sketch {got} vs nearest-rank {target} (bound {bound})"
                );
            }
        }
        // No deadlines in this workload: both lateness summaries are the
        // all-zero empty summary.
        assert_eq!(exact.lateness, sketch.lateness);
    }

    #[test]
    fn every_job_is_accounted_for() {
        for policy in PolicyKind::all() {
            let report = run(policy, 7, WorkloadMode::Open);
            assert_eq!(report.completed + report.rejected, report.jobs);
            assert_eq!(report.records.len(), report.completed);
            assert_eq!(
                report.per_qpu.iter().map(|q| q.jobs).sum::<usize>(),
                report.completed
            );
            assert!(report.makespan_seconds > 0.0);
        }
    }

    #[test]
    fn per_job_times_are_causal() {
        let report = run(PolicyKind::Fifo, 3, WorkloadMode::Open);
        for r in &report.records {
            assert!(r.start >= r.arrival, "job {} started before arrival", r.job);
            assert!(r.finish > r.start);
            let service = r.stage1_seconds + r.stage2_seconds + r.stage3_seconds;
            assert!((r.service_seconds() - service).abs() < 1e-9);
        }
    }

    #[test]
    fn devices_never_overlap_jobs() {
        let report = run(PolicyKind::ShortestPredictedFirst, 5, WorkloadMode::Open);
        for qpu in 0..3 {
            let mut spans: Vec<(f64, f64)> = report
                .records
                .iter()
                .filter(|r| r.qpu == qpu)
                .map(|r| (r.start, r.finish))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1 - 1e-12,
                    "device {qpu} overlapped: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn stage1_dominates_at_fleet_scale() {
        // The paper's single-machine headline must survive the move to a
        // fleet: summed stage-1 service far exceeds summed stage-2.
        for policy in PolicyKind::all() {
            let report = run(policy, 11, WorkloadMode::Open);
            assert!(
                report.stage1_fraction() > 0.9,
                "{}: stage-1 fraction {}",
                report.policy,
                report.stage1_fraction()
            );
            assert!(report.stage1_seconds > 100.0 * report.stage2_seconds);
        }
    }

    #[test]
    fn closed_mode_keeps_population_bounded() {
        let report = run(PolicyKind::Fifo, 9, WorkloadMode::Closed { clients: 2 });
        assert_eq!(report.completed + report.rejected, report.jobs);
        // With 2 clients, at most 2 jobs are ever queued or in service, so
        // the dispatch queue never exceeds the client count.
        assert!(report.max_queue_depth() <= 2);
    }

    #[test]
    fn warm_hits_accumulate_on_repeated_topologies() {
        let report = run(PolicyKind::CacheAffinity, 13, WorkloadMode::Open);
        assert!(report.warm_hits() > 0);
        // Cold embeds are bounded by topologies × devices.
        assert!(report.cold_misses() <= 4 * 3);
    }

    #[test]
    fn admission_sheds_over_the_depth_limit_and_bounds_the_queue() {
        use crate::admission::{TokenBucket, TokenBucketConfig};

        // One slow device, a flood of arrivals: without admission the queue
        // grows with the flood; with a depth limit it cannot.
        let workload = WorkloadSpec::repeated_topologies(60, 50.0, 3).generate();
        let open = simulate(
            fleet(3),
            &workload,
            PolicyKind::Fifo.build().as_mut(),
            SimConfig::default(),
        );
        let depth_limit = 4;
        let mut gate = TokenBucket::new(TokenBucketConfig {
            rate_hz: 100.0, // tokens never bind; only the depth limit does
            burst: 100.0,
            max_queue_depth: depth_limit,
            max_defer_seconds: 1e6,
            ..TokenBucketConfig::default()
        });
        let gated = simulate_with_admission(
            fleet(3),
            &workload,
            PolicyKind::Fifo.build().as_mut(),
            &mut gate,
            SimConfig::default(),
        );
        assert!(open.max_queue_depth() > depth_limit);
        assert!(gated.max_queue_depth() <= depth_limit);
        assert!(gated.shed > 0);
        assert_eq!(gated.completed + gated.rejected + gated.shed, gated.jobs);
        assert_eq!(gated.admission, "token-bucket");
        assert_eq!(gated.per_tenant[0].shed, gated.shed);
        assert_eq!(gated.per_tenant[0].max_queue_depth, depth_limit);
    }

    #[test]
    fn deferred_jobs_complete_and_pay_the_defer_in_waiting_time() {
        use crate::admission::{TokenBucket, TokenBucketConfig};

        // A tight rate budget with room to defer: jobs trickle in at the
        // bucket's pace but all complete, and the defer time lands in the
        // queueing delay because the original arrival stamp is preserved.
        let workload = WorkloadSpec::repeated_topologies(12, 100.0, 5).generate();
        let mut gate = TokenBucket::new(TokenBucketConfig {
            rate_hz: 0.5,
            burst: 1.0,
            max_queue_depth: 100,
            max_defer_seconds: 1e6,
            ..TokenBucketConfig::default()
        });
        let report = simulate_with_admission(
            fleet(3),
            &workload,
            PolicyKind::Fifo.build().as_mut(),
            &mut gate,
            SimConfig::default(),
        );
        assert_eq!(report.completed, 12, "nothing sheds under a pure defer");
        assert!(report.deferrals > 0);
        assert_eq!(report.per_tenant[0].deferrals, report.deferrals);
        // 12 jobs at 0.5 Hz: the last admission is ~22s after arrival, and
        // that shows up as queueing delay.
        assert!(report.wait.max > 10.0);
    }

    #[test]
    fn closed_mode_defer_bound_sheds_instead_of_spinning() {
        use crate::admission::{TokenBucket, TokenBucketConfig};

        // Regression: closed mode used to re-stamp every arrival event —
        // including deferred re-arrivals — with the current clock, so the
        // controller's `now - arrival` defer measure was always zero and
        // `max_defer_seconds` could never bind.  With a glacial refill the
        // out-of-tokens jobs must shed at their bounded re-arrival, not
        // keep deferring on a fresh stamp.
        let workload = WorkloadSpec::repeated_topologies(6, 1.0, 3).generate();
        let mut gate = TokenBucket::new(TokenBucketConfig {
            rate_hz: 0.001,
            burst: 1.0,
            max_queue_depth: 100,
            max_defer_seconds: 10.0,
            ..TokenBucketConfig::default()
        });
        let report = simulate_with_admission(
            fleet(3),
            &workload,
            PolicyKind::Fifo.build().as_mut(),
            &mut gate,
            SimConfig {
                mode: WorkloadMode::Closed { clients: 2 },
                ..SimConfig::default()
            },
        );
        assert!(report.shed > 0, "defer bound never bound in closed mode");
        assert_eq!(
            report.completed + report.rejected + report.shed,
            report.jobs
        );
        // Whatever was deferred was deferred at most once before shedding.
        assert!(report.deferrals <= report.shed + report.completed);
    }

    #[test]
    fn closed_mode_reanchors_deadlines_to_the_release_clock() {
        use crate::workload::DeadlinePolicy;

        // Regression: closed mode re-stamps arrivals with the release
        // clock, but deadlines used to stay pinned to the generated
        // open-mode arrivals — so late releases read as SLO misses no
        // matter how fast they were served.  The slack must be preserved
        // relative to the *release* time.
        let slack = 10.0;
        let workload = WorkloadSpec::repeated_topologies(30, 5.0, 7)
            .with_deadlines(DeadlinePolicy::FixedSlack {
                slack_seconds: slack,
            })
            .generate();
        let report = simulate(
            fleet(7),
            &workload,
            PolicyKind::Fifo.build().as_mut(),
            SimConfig {
                mode: WorkloadMode::Closed { clients: 2 },
                ..SimConfig::default()
            },
        );
        assert_eq!(report.completed, 30);
        for r in &report.records {
            let deadline = r.deadline.expect("every job is deadline-stamped");
            assert!(
                (deadline - r.arrival - slack).abs() < 1e-9,
                "job {}: deadline {deadline} is not arrival {} + slack {slack}",
                r.job,
                r.arrival
            );
        }
        // With a 2-client closed loop and ~seconds-long services, a
        // 10-second slack is comfortably met — under the stale anchoring
        // this run reported ~100% misses.
        assert_eq!(report.slo_misses(), 0);
        // Releases genuinely happened after the generated arrivals, so
        // the re-anchoring was exercised.
        assert!(report
            .records
            .iter()
            .any(|r| r.arrival > workload.jobs[r.job].arrival));
    }

    #[test]
    fn multi_tenant_runs_report_per_tenant_stats() {
        use crate::tenant::MultiTenantSpec;

        let workload = MultiTenantSpec::aggressor_victim(8, 0.5, 3.0, 1.0, 11).generate();
        let report = simulate(
            fleet(9),
            &workload,
            PolicyKind::WeightedFair.build().as_mut(),
            SimConfig::default(),
        );
        assert_eq!(report.per_tenant.len(), 2);
        let victim = report.tenant_named("victim").unwrap();
        let aggressor = report.tenant_named("aggressor").unwrap();
        assert_eq!(victim.submitted, 8);
        assert_eq!(aggressor.submitted, 24);
        assert_eq!(
            victim.completed + aggressor.completed + report.rejected,
            report.jobs
        );
        assert!(victim.latency.percentiles_ordered());
        assert!(aggressor.latency.percentiles_ordered());
        // Per-tenant service sums to the fleet total.
        let total: f64 = report.per_tenant.iter().map(|t| t.service_seconds).sum();
        let expected = report.total_service_seconds();
        assert!((total - expected).abs() < 1e-6 * expected.max(1.0));
        assert!(report.jains_fairness_index() > 0.0);
    }

    #[test]
    fn empty_workload_produces_an_empty_report() {
        let workload = Workload::single_tenant(vec![]);
        let mut scheduler = PolicyKind::Fifo.build();
        let report = simulate(
            fleet(1),
            &workload,
            scheduler.as_mut(),
            SimConfig::default(),
        );
        assert_eq!(report.jobs, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_seconds, 0.0);
        assert_eq!(report.events, 0);
        assert!(report.trace.is_empty());
    }

    #[test]
    fn telemetry_is_a_pure_observer() {
        use crate::admission::AdmitAll;
        use crate::telemetry::{MetricsRegistry, NullSink, PerfettoSink, VecSink};

        // Across seeds and policies: sink on vs sink off (and registry on
        // vs off) must yield bit-identical reports.  The trace field is the
        // one deliberate difference — VecSink retains, NullSink drops — so
        // it is normalized before comparison.
        for seed in [3, 21, 77] {
            for policy in [PolicyKind::Fifo, PolicyKind::WeightedFair] {
                let workload = WorkloadSpec::repeated_topologies(30, 2.0, seed).generate();
                let mut null_sink = NullSink;
                let bare = simulate_with_telemetry(
                    fleet(seed),
                    &workload,
                    policy.build().as_mut(),
                    &mut AdmitAll,
                    SimConfig::default(),
                    &mut null_sink,
                    None,
                );
                let mut vec_sink = VecSink::new();
                let mut registry = MetricsRegistry::new(1.0);
                let observed = simulate_with_telemetry(
                    fleet(seed),
                    &workload,
                    policy.build().as_mut(),
                    &mut AdmitAll,
                    SimConfig::default(),
                    &mut vec_sink,
                    Some(&mut registry),
                );
                assert_eq!(
                    bare, observed,
                    "seed {seed}: attaching telemetry changed the simulation"
                );
                let mut perfetto = PerfettoSink::new();
                let exported = simulate_with_telemetry(
                    fleet(seed),
                    &workload,
                    policy.build().as_mut(),
                    &mut AdmitAll,
                    SimConfig::default(),
                    &mut perfetto,
                    None,
                );
                assert_eq!(
                    bare, exported,
                    "seed {seed}: Perfetto sink perturbed the run"
                );
                assert!(perfetto.event_count() > 0);
                // The legacy wrapper is exactly "core + VecSink retention".
                let mut legacy = simulate(
                    fleet(seed),
                    &workload,
                    policy.build().as_mut(),
                    SimConfig::default(),
                );
                assert_eq!(legacy.trace, vec_sink.records());
                legacy.trace = Vec::new();
                assert_eq!(bare, legacy);
            }
        }
    }

    #[test]
    fn events_count_the_fired_trace_records() {
        let report = run(PolicyKind::Fifo, 17, WorkloadMode::Open);
        let fired = report
            .trace
            .iter()
            .filter(|r| matches!(r, TraceRecord::Fired(_)))
            .count();
        assert!(report.events > 0);
        assert_eq!(report.events, fired);
    }

    #[test]
    fn attached_registry_samples_the_standard_instruments() {
        use crate::admission::AdmitAll;
        use crate::telemetry::{MetricsRegistry, NullSink};

        let workload = WorkloadSpec::repeated_topologies(25, 1.0, 5).generate();
        let mut sink = NullSink;
        let mut registry = MetricsRegistry::new(2.0);
        let report = simulate_with_telemetry(
            fleet(5),
            &workload,
            PolicyKind::CacheAffinity.build().as_mut(),
            &mut AdmitAll,
            SimConfig::default(),
            &mut sink,
            Some(&mut registry),
        );
        assert_eq!(registry.counter_value("events"), Some(report.events as u64));
        assert_eq!(
            registry.counter_value("completions"),
            Some(report.completed as u64)
        );
        let depth = registry.gauge_series("queue_depth").expect("registered");
        assert!(!depth.is_empty());
        // Samples land on exact interval multiples, in order.
        for (i, &(t, _)) in depth.iter().enumerate() {
            assert!((t - 2.0 * i as f64).abs() < 1e-9);
        }
        assert!(registry.gauge_series("qpu_utilization.q2").is_some());
        let latency = registry.histogram("latency_seconds").expect("registered");
        assert_eq!(latency.count(), report.completed as u64);
        // Sketch percentiles agree with the exact report percentiles to
        // within the sketch's documented bound (both are nearest-rank-ish
        // summaries of the same population; allow both tolerances).
        let exact_max = report.latency.max;
        assert!((latency.max() - exact_max).abs() < 1e-9);
    }
}
