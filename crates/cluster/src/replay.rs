//! Flight recorder: record any run, replay it bit-identically, diff two
//! runs to the first divergent event.
//!
//! The engine already guarantees that a run is a pure function of its
//! inputs — same seed, workload, policy and fleet ⇒ bit-identical
//! [`TraceRecord`] stream (the determinism tests in `lib.rs` pin this).
//! This module persists that guarantee: a **flight record** is a versioned
//! JSONL file holding, for every simulated run, one self-describing header
//! line (schema version, seed, policy, fleet fingerprint, workload digest,
//! and the full inputs needed to re-run) followed by the run's complete
//! trace, one record per line.  Anything that can be recorded can be
//! re-ingested ([`parse_flight_record`]), re-simulated ([`replay_run`]),
//! mechanically verified ([`check_replay`]) and compared run-to-run (the
//! `trace_diff` CLI in `crates/bench`) — every regression becomes a
//! replayable artifact.
//!
//! Three layers:
//!
//! * [`RecorderSink`] — a [`TraceSink`] that streams header + records to
//!   any `io::Write` using [`JsonlSink`]'s latched-error plumbing (an
//!   observability failure never aborts a simulation).
//! * [`TraceReader`] — workload *sources*: a recorded arrival trace
//!   ([`ARRIVAL_SCHEMA`]) is just another workload next to the synthetic
//!   generators ([`WorkloadSpec`] / [`MultiTenantSpec`] implement the same
//!   trait), so a captured job stream replays bit-identically against
//!   policy changes.
//! * [`replay_run`] / [`check_replay`] — rebuild the fleet and scheduler
//!   from a parsed header and re-run, optionally comparing the replayed
//!   stream element-wise against the recorded one.
//!
//! Parsing never panics: every malformed input — truncated JSONL,
//! unknown schema version, out-of-order arrivals, duplicate job ids — is a
//! typed [`ReplayError`].
//!
//! **Replay limitation:** only `admit-all` runs are replayable.  A
//! [`crate::admission::TokenBucket`]'s configuration and mid-run state are
//! not serialized into the header, so segments recorded under token-bucket
//! admission parse fine (and diff fine) but [`replay_run`] refuses them
//! with [`ReplayError::UnsupportedAdmission`].

use std::io;
use std::sync::Arc;

use split_exec::{QpuModel, SplitExecConfig};

use crate::admission::AdmitAll;
use crate::cache::{AdmissionPolicy, EvictionPolicyKind};
use crate::event::{Event, EventKind};
use crate::fleet::{Fleet, FleetConfig};
use crate::job::Job;
use crate::json::{self, JsonValue, ParseError};
use crate::metrics::SimReport;
use crate::scheduler::{
    LaneOrder, PolicyKind, Scheduler, ShortestPredictedFirst, WeightedFairQueue,
    DEFAULT_AGING_WEIGHT,
};
use crate::sim::{simulate_with_telemetry, PercentileMode, SimConfig, TraceRecord, WorkloadMode};
use crate::telemetry::{JsonlSink, TraceSink, VecSink};
use crate::tenant::{MultiTenantSpec, TenantId, TenantMeta};
use crate::workload::{Workload, WorkloadError, WorkloadSpec};

/// Schema tag carried by every flight-record header line.
pub const FLIGHT_SCHEMA: &str = "sx-flight-record/v1";

/// Schema tag carried by every arrival-trace header line.
pub const ARRIVAL_SCHEMA: &str = "sx-arrival-trace/v1";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a flight record or arrival trace could not be parsed or replayed.
///
/// Line numbers are 1-based positions in the input text.
#[derive(Debug)]
pub enum ReplayError {
    /// The input held no header and no records at all.
    Empty,
    /// A header line declared a schema this build does not understand.
    UnknownSchema {
        /// The schema tag found in the input.
        found: String,
        /// The schema tag this build expects.
        expected: &'static str,
    },
    /// A line was not valid JSON (e.g. a truncated final line).
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying JSON parse failure.
        source: ParseError,
    },
    /// A field was missing, had the wrong type, or held an invalid value.
    Field {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A trace record carried an unrecognized `"kind"`.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The unrecognized kind tag.
        kind: String,
    },
    /// A job arrived earlier than its predecessor in the trace.
    OutOfOrderArrival {
        /// 1-based line number of the offending job.
        line: usize,
        /// The previous job's arrival time.
        prev: f64,
        /// The offending (earlier) arrival time.
        next: f64,
    },
    /// A job id appeared twice.
    DuplicateJobId {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated id.
        id: usize,
    },
    /// The recorded run used an admission controller whose state is not
    /// serialized, so the run cannot be reconstructed.
    UnsupportedAdmission {
        /// The controller's recorded name.
        admission: String,
    },
    /// A replayed workload failed the generator's own validation.
    Workload(WorkloadError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "no flight-record or trace content found"),
            ReplayError::UnknownSchema { found, expected } => {
                write!(f, "unknown schema {found:?} (this build reads {expected:?})")
            }
            ReplayError::Json { line, source } => {
                write!(f, "line {line}: invalid JSON: {source}")
            }
            ReplayError::Field {
                line,
                field,
                reason,
            } => write!(f, "line {line}: field {field:?}: {reason}"),
            ReplayError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown record kind {kind:?}")
            }
            ReplayError::OutOfOrderArrival { line, prev, next } => write!(
                f,
                "line {line}: out-of-order arrival {next} after {prev} (arrivals must be non-decreasing)"
            ),
            ReplayError::DuplicateJobId { line, id } => {
                write!(f, "line {line}: duplicate job id {id}")
            }
            ReplayError::UnsupportedAdmission { admission } => write!(
                f,
                "admission {admission:?} cannot be replayed: controller state is not recorded (only admit-all runs replay)"
            ),
            ReplayError::Workload(err) => write!(f, "replayed workload is invalid: {err}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Json { source, .. } => Some(source),
            ReplayError::Workload(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WorkloadError> for ReplayError {
    fn from(err: WorkloadError) -> Self {
        ReplayError::Workload(err)
    }
}

// ---------------------------------------------------------------------------
// Typed field access over the hand-rolled JSON tree
// ---------------------------------------------------------------------------

/// Human label for a JSON value's type, for error messages.
fn type_name(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "bool",
        JsonValue::Num(_) => "number",
        JsonValue::Str(_) => "string",
        JsonValue::Array(_) => "array",
        JsonValue::Object(_) => "object",
    }
}

fn field_err(line: usize, field: &'static str, reason: impl Into<String>) -> ReplayError {
    ReplayError::Field {
        line,
        field,
        reason: reason.into(),
    }
}

fn req<'a>(
    line: usize,
    value: &'a JsonValue,
    field: &'static str,
) -> Result<&'a JsonValue, ReplayError> {
    value
        .get(field)
        .ok_or_else(|| field_err(line, field, "missing"))
}

fn num_field(line: usize, value: &JsonValue, field: &'static str) -> Result<f64, ReplayError> {
    match req(line, value, field)? {
        JsonValue::Num(n) => Ok(*n),
        other => Err(field_err(
            line,
            field,
            format!("expected number, found {}", type_name(other)),
        )),
    }
}

/// A number field that must also be finite (the event queue rejects
/// non-finite times, so letting one through would turn a malformed input
/// into a panic downstream).
fn finite_field(line: usize, value: &JsonValue, field: &'static str) -> Result<f64, ReplayError> {
    let n = num_field(line, value, field)?;
    if n.is_finite() {
        Ok(n)
    } else {
        Err(field_err(line, field, "must be finite"))
    }
}

fn usize_field(line: usize, value: &JsonValue, field: &'static str) -> Result<usize, ReplayError> {
    let n = num_field(line, value, field)?;
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
        Ok(n as usize)
    } else {
        Err(field_err(
            line,
            field,
            format!("expected non-negative integer, found {n}"),
        ))
    }
}

/// `u64` values (seeds, digests, topology keys) travel as decimal strings:
/// they exceed the 2^53 range a JSON number can carry exactly.
fn u64_field(line: usize, value: &JsonValue, field: &'static str) -> Result<u64, ReplayError> {
    match req(line, value, field)? {
        JsonValue::Str(s) => s
            .parse::<u64>()
            .map_err(|_| field_err(line, field, format!("expected u64 string, found {s:?}"))),
        other => Err(field_err(
            line,
            field,
            format!("expected u64 string, found {}", type_name(other)),
        )),
    }
}

fn bool_field(line: usize, value: &JsonValue, field: &'static str) -> Result<bool, ReplayError> {
    match req(line, value, field)? {
        JsonValue::Bool(b) => Ok(*b),
        other => Err(field_err(
            line,
            field,
            format!("expected bool, found {}", type_name(other)),
        )),
    }
}

fn str_field<'a>(
    line: usize,
    value: &'a JsonValue,
    field: &'static str,
) -> Result<&'a str, ReplayError> {
    match req(line, value, field)? {
        JsonValue::Str(s) => Ok(s.as_str()),
        other => Err(field_err(
            line,
            field,
            format!("expected string, found {}", type_name(other)),
        )),
    }
}

fn array_field<'a>(
    line: usize,
    value: &'a JsonValue,
    field: &'static str,
) -> Result<&'a [JsonValue], ReplayError> {
    match req(line, value, field)? {
        JsonValue::Array(items) => Ok(items.as_slice()),
        other => Err(field_err(
            line,
            field,
            format!("expected array, found {}", type_name(other)),
        )),
    }
}

/// `deadline`-style fields: `null` means absent, a finite number means set.
fn opt_finite_field(
    line: usize,
    value: &JsonValue,
    field: &'static str,
) -> Result<Option<f64>, ReplayError> {
    match req(line, value, field)? {
        JsonValue::Null => Ok(None),
        JsonValue::Num(n) if n.is_finite() => Ok(Some(*n)),
        JsonValue::Num(_) => Err(field_err(line, field, "must be finite")),
        other => Err(field_err(
            line,
            field,
            format!("expected number or null, found {}", type_name(other)),
        )),
    }
}

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

/// FNV-1a, 64-bit: dependency-free, deterministic across platforms.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A stable 64-bit fingerprint of a fleet configuration.
///
/// Two runs with equal fingerprints were simulated against identical racks
/// (same device count, generations, fault rates, cache bounds and fault
/// seed) — the quick header-level compatibility check `trace_diff` surfaces
/// before walking records.
pub fn fleet_fingerprint(config: &FleetConfig) -> u64 {
    let mut fnv = Fnv::new();
    // `FleetConfig`'s Debug form is deterministic and covers every field;
    // hashing it means a new field can never silently escape the
    // fingerprint.
    fnv.write(format!("{config:?}").as_bytes());
    fnv.finish()
}

/// A stable 64-bit digest of a workload: every tenant and every job field
/// participates (float fields by their exact bit patterns), so two equal
/// digests mean bit-identical job streams.
pub fn workload_digest(workload: &Workload) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write_u64(workload.tenants.len() as u64);
    for tenant in &workload.tenants {
        fnv.write_u64(tenant.id.index() as u64);
        fnv.write(tenant.name.as_bytes());
        fnv.write_f64(tenant.weight);
    }
    fnv.write_u64(workload.jobs.len() as u64);
    for job in &workload.jobs {
        fnv.write_u64(job.id as u64);
        fnv.write_u64(job.tenant.index() as u64);
        fnv.write(job.family.as_bytes());
        fnv.write_u64(job.lps as u64);
        fnv.write_u64(job.topology_key);
        fnv.write_f64(job.arrival);
        match job.deadline {
            Some(d) => {
                fnv.write_u64(1);
                fnv.write_f64(d);
            }
            None => fnv.write_u64(0),
        }
    }
    fnv.finish()
}

// ---------------------------------------------------------------------------
// Scheduler specs: a serializable recipe for rebuilding a policy
// ---------------------------------------------------------------------------

/// A serializable description of a scheduling policy — everything needed to
/// rebuild the exact scheduler a run used, including the knobs
/// [`PolicyKind`] cannot carry (aging weight, explicit lane weights, lane
/// ordering).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerSpec {
    /// [`crate::scheduler::Fifo`].
    Fifo,
    /// [`crate::scheduler::CacheAffinity`].
    CacheAffinity,
    /// [`crate::scheduler::EarliestDeadlineFirst`].
    EarliestDeadlineFirst,
    /// [`ShortestPredictedFirst`] with an explicit aging weight.
    ShortestPredictedFirst {
        /// Anti-starvation aging weight (seconds of credit per second
        /// queued).
        aging_weight: f64,
    },
    /// [`WeightedFairQueue`] with explicit lane weights and lane order.
    WeightedFair {
        /// Per-lane fair-share weights; missing lanes default to 1.0, so an
        /// empty vector is the uniform-weight queue.
        weights: Vec<f64>,
        /// How jobs are ordered within a lane.
        lane_order: LaneOrder,
    },
}

impl SchedulerSpec {
    /// The display name the rebuilt scheduler reports
    /// ([`Scheduler::name`]): `fifo`, `affinity`, `edf`, `spjf`, `wfq` or
    /// `wfq-fifo`.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::Fifo => "fifo",
            SchedulerSpec::CacheAffinity => "affinity",
            SchedulerSpec::EarliestDeadlineFirst => "edf",
            SchedulerSpec::ShortestPredictedFirst { .. } => "spjf",
            SchedulerSpec::WeightedFair { lane_order, .. } => match lane_order {
                LaneOrder::EarliestDeadline => "wfq",
                LaneOrder::Fifo => "wfq-fifo",
            },
        }
    }

    /// Instantiate the described scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Fifo => Box::new(crate::scheduler::Fifo),
            SchedulerSpec::CacheAffinity => Box::new(crate::scheduler::CacheAffinity),
            SchedulerSpec::EarliestDeadlineFirst => {
                Box::new(crate::scheduler::EarliestDeadlineFirst)
            }
            SchedulerSpec::ShortestPredictedFirst { aging_weight } => {
                Box::new(ShortestPredictedFirst::with_aging(*aging_weight))
            }
            SchedulerSpec::WeightedFair {
                weights,
                lane_order,
            } => Box::new(
                WeightedFairQueue::with_weights(weights.clone()).with_lane_order(*lane_order),
            ),
        }
    }

    /// The spec as a flat JSON object (the header's `"scheduler"` field).
    pub fn to_json(&self) -> JsonValue {
        match self {
            SchedulerSpec::Fifo => JsonValue::object([("policy", JsonValue::from("fifo"))]),
            SchedulerSpec::CacheAffinity => {
                JsonValue::object([("policy", JsonValue::from("affinity"))])
            }
            SchedulerSpec::EarliestDeadlineFirst => {
                JsonValue::object([("policy", JsonValue::from("edf"))])
            }
            SchedulerSpec::ShortestPredictedFirst { aging_weight } => JsonValue::object([
                ("policy", JsonValue::from("spjf")),
                ("aging_weight", JsonValue::from(*aging_weight)),
            ]),
            SchedulerSpec::WeightedFair {
                weights,
                lane_order,
            } => JsonValue::object([
                ("policy", JsonValue::from("wfq")),
                (
                    "weights",
                    JsonValue::array(weights.iter().map(|w| JsonValue::from(*w))),
                ),
                (
                    "lane_order",
                    JsonValue::from(match lane_order {
                        LaneOrder::EarliestDeadline => "edf",
                        LaneOrder::Fifo => "fifo",
                    }),
                ),
            ]),
        }
    }

    /// Parse a spec back out of the header's `"scheduler"` object.
    pub fn from_json(line: usize, value: &JsonValue) -> Result<Self, ReplayError> {
        match str_field(line, value, "policy")? {
            "fifo" => Ok(SchedulerSpec::Fifo),
            "affinity" => Ok(SchedulerSpec::CacheAffinity),
            "edf" => Ok(SchedulerSpec::EarliestDeadlineFirst),
            "spjf" => {
                let aging_weight = finite_field(line, value, "aging_weight")?;
                Ok(SchedulerSpec::ShortestPredictedFirst { aging_weight })
            }
            "wfq" => {
                let raw = array_field(line, value, "weights")?;
                let mut weights = Vec::with_capacity(raw.len());
                for item in raw {
                    match item {
                        JsonValue::Num(n) if n.is_finite() => weights.push(*n),
                        other => {
                            return Err(field_err(
                                line,
                                "weights",
                                format!("expected finite numbers, found {}", type_name(other)),
                            ))
                        }
                    }
                }
                let lane_order = match str_field(line, value, "lane_order")? {
                    "edf" => LaneOrder::EarliestDeadline,
                    "fifo" => LaneOrder::Fifo,
                    other => {
                        return Err(field_err(
                            line,
                            "lane_order",
                            format!("expected \"edf\" or \"fifo\", found {other:?}"),
                        ))
                    }
                };
                Ok(SchedulerSpec::WeightedFair {
                    weights,
                    lane_order,
                })
            }
            other => Err(field_err(
                line,
                "policy",
                format!("unknown policy {other:?}"),
            )),
        }
    }
}

impl From<PolicyKind> for SchedulerSpec {
    /// The spec describing exactly what [`PolicyKind::build`] constructs.
    fn from(kind: PolicyKind) -> Self {
        match kind {
            PolicyKind::Fifo => SchedulerSpec::Fifo,
            PolicyKind::CacheAffinity => SchedulerSpec::CacheAffinity,
            PolicyKind::EarliestDeadline => SchedulerSpec::EarliestDeadlineFirst,
            PolicyKind::ShortestPredictedFirst => SchedulerSpec::ShortestPredictedFirst {
                aging_weight: DEFAULT_AGING_WEIGHT,
            },
            PolicyKind::WeightedFair => SchedulerSpec::WeightedFair {
                weights: Vec::new(),
                lane_order: LaneOrder::default(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Config / workload <-> JSON
// ---------------------------------------------------------------------------

fn qpu_model_to_json(model: QpuModel) -> JsonValue {
    JsonValue::from(model.name())
}

fn qpu_model_from_name(
    line: usize,
    field: &'static str,
    name: &str,
) -> Result<QpuModel, ReplayError> {
    match name {
        "vesuvius" => Ok(QpuModel::Vesuvius),
        "dw2x" => Ok(QpuModel::Dw2x),
        other => Err(field_err(
            line,
            field,
            format!("unknown QPU model {other:?}"),
        )),
    }
}

fn fleet_to_json(config: &FleetConfig) -> JsonValue {
    JsonValue::object([
        ("qpus", JsonValue::from(config.qpus)),
        ("qpu_model", qpu_model_to_json(config.qpu_model)),
        (
            "models",
            JsonValue::array(config.models.iter().map(|m| qpu_model_to_json(*m))),
        ),
        (
            "cache_capacity",
            match config.cache_capacity {
                Some(n) => JsonValue::from(n),
                None => JsonValue::Null,
            },
        ),
        ("eviction", JsonValue::from(config.eviction.name())),
        (
            "cache_admission",
            JsonValue::from(config.cache_admission.name()),
        ),
        ("qubit_fault_rate", JsonValue::from(config.qubit_fault_rate)),
        (
            "coupler_fault_rate",
            JsonValue::from(config.coupler_fault_rate),
        ),
        ("seed", JsonValue::from(config.seed.to_string())),
    ])
}

fn fleet_from_json(line: usize, value: &JsonValue) -> Result<FleetConfig, ReplayError> {
    let qpus = usize_field(line, value, "qpus")?;
    let qpu_model = qpu_model_from_name(line, "qpu_model", str_field(line, value, "qpu_model")?)?;
    let raw_models = array_field(line, value, "models")?;
    let mut models = Vec::with_capacity(raw_models.len());
    for item in raw_models {
        match item {
            JsonValue::Str(s) => models.push(qpu_model_from_name(line, "models", s)?),
            other => {
                return Err(field_err(
                    line,
                    "models",
                    format!("expected strings, found {}", type_name(other)),
                ))
            }
        }
    }
    let cache_capacity = match req(line, value, "cache_capacity")? {
        JsonValue::Null => None,
        _ => Some(usize_field(line, value, "cache_capacity")?),
    };
    let eviction = match str_field(line, value, "eviction")? {
        "lru" => EvictionPolicyKind::Lru,
        "cost-aware" => EvictionPolicyKind::CostAware,
        other => {
            return Err(field_err(
                line,
                "eviction",
                format!("unknown eviction policy {other:?}"),
            ))
        }
    };
    let cache_admission = match str_field(line, value, "cache_admission")? {
        "always" => AdmissionPolicy::Always,
        "second-chance" => AdmissionPolicy::SecondChance,
        other => {
            return Err(field_err(
                line,
                "cache_admission",
                format!("unknown cache admission policy {other:?}"),
            ))
        }
    };
    Ok(FleetConfig {
        qpus,
        qpu_model,
        models,
        cache_capacity,
        eviction,
        cache_admission,
        qubit_fault_rate: finite_field(line, value, "qubit_fault_rate")?,
        coupler_fault_rate: finite_field(line, value, "coupler_fault_rate")?,
        seed: u64_field(line, value, "seed")?,
    })
}

fn sim_config_to_json(config: &SimConfig) -> JsonValue {
    let mut obj = match config.mode {
        WorkloadMode::Open => JsonValue::object([("mode", JsonValue::from("open"))]),
        WorkloadMode::Closed { clients } => JsonValue::object([
            ("mode", JsonValue::from("closed")),
            ("clients", JsonValue::from(clients)),
        ]),
    };
    obj.push(
        "percentiles",
        JsonValue::from(match config.percentiles {
            PercentileMode::Exact => "exact",
            PercentileMode::Sketch => "sketch",
        }),
    );
    obj
}

fn sim_config_from_json(line: usize, value: &JsonValue) -> Result<SimConfig, ReplayError> {
    let mode = match str_field(line, value, "mode")? {
        "open" => WorkloadMode::Open,
        "closed" => WorkloadMode::Closed {
            clients: usize_field(line, value, "clients")?,
        },
        other => {
            return Err(field_err(
                line,
                "mode",
                format!("expected \"open\" or \"closed\", found {other:?}"),
            ))
        }
    };
    let percentiles = match str_field(line, value, "percentiles")? {
        "exact" => PercentileMode::Exact,
        "sketch" => PercentileMode::Sketch,
        other => {
            return Err(field_err(
                line,
                "percentiles",
                format!("expected \"exact\" or \"sketch\", found {other:?}"),
            ))
        }
    };
    Ok(SimConfig { mode, percentiles })
}

fn tenant_to_json(tenant: &TenantMeta) -> JsonValue {
    JsonValue::object([
        ("id", JsonValue::from(tenant.id.index())),
        ("name", JsonValue::from(tenant.name.as_str())),
        ("weight", JsonValue::from(tenant.weight)),
    ])
}

fn tenant_from_json(line: usize, value: &JsonValue) -> Result<TenantMeta, ReplayError> {
    Ok(TenantMeta {
        id: TenantId(usize_field(line, value, "id")?),
        name: str_field(line, value, "name")?.to_string(),
        weight: finite_field(line, value, "weight")?,
    })
}

fn job_to_json(job: &Job) -> JsonValue {
    JsonValue::object([
        ("id", JsonValue::from(job.id)),
        ("tenant", JsonValue::from(job.tenant.index())),
        ("family", JsonValue::from(job.family.as_ref())),
        ("lps", JsonValue::from(job.lps)),
        (
            "topology_key",
            JsonValue::from(job.topology_key.to_string()),
        ),
        ("arrival", JsonValue::from(job.arrival)),
        (
            "deadline",
            match job.deadline {
                Some(d) => JsonValue::from(d),
                None => JsonValue::Null,
            },
        ),
    ])
}

fn job_from_json(line: usize, value: &JsonValue) -> Result<Job, ReplayError> {
    Ok(Job {
        id: usize_field(line, value, "id")?,
        tenant: TenantId(usize_field(line, value, "tenant")?),
        family: Arc::from(str_field(line, value, "family")?),
        lps: usize_field(line, value, "lps")?,
        topology_key: u64_field(line, value, "topology_key")?,
        arrival: finite_field(line, value, "arrival")?,
        deadline: opt_finite_field(line, value, "deadline")?,
    })
}

/// Append one parsed job, enforcing the trace invariants: ids dense and in
/// submission order, arrivals non-decreasing, tenant indices in range.
fn push_job(
    jobs: &mut Vec<Job>,
    tenant_count: usize,
    job: Job,
    line: usize,
) -> Result<(), ReplayError> {
    if job.tenant.index() >= tenant_count {
        return Err(field_err(
            line,
            "tenant",
            format!(
                "index {} out of range for {tenant_count} declared tenants",
                job.tenant.index()
            ),
        ));
    }
    if job.id < jobs.len() {
        return Err(ReplayError::DuplicateJobId { line, id: job.id });
    }
    if job.id > jobs.len() {
        return Err(field_err(
            line,
            "id",
            format!(
                "job ids must be dense and in submission order (expected {}, found {})",
                jobs.len(),
                job.id
            ),
        ));
    }
    if let Some(prev) = jobs.last() {
        if job.arrival < prev.arrival {
            return Err(ReplayError::OutOfOrderArrival {
                line,
                prev: prev.arrival,
                next: job.arrival,
            });
        }
    }
    jobs.push(job);
    Ok(())
}

fn workload_to_json(workload: &Workload) -> JsonValue {
    JsonValue::object([
        (
            "tenants",
            JsonValue::array(workload.tenants.iter().map(tenant_to_json)),
        ),
        (
            "jobs",
            JsonValue::array(workload.jobs.iter().map(job_to_json)),
        ),
    ])
}

fn workload_from_json(line: usize, value: &JsonValue) -> Result<Workload, ReplayError> {
    let raw_tenants = array_field(line, value, "tenants")?;
    let mut tenants = Vec::with_capacity(raw_tenants.len());
    for item in raw_tenants {
        tenants.push(tenant_from_json(line, item)?);
    }
    let raw_jobs = array_field(line, value, "jobs")?;
    let mut jobs = Vec::with_capacity(raw_jobs.len());
    for item in raw_jobs {
        let job = job_from_json(line, item)?;
        push_job(&mut jobs, tenants.len(), job, line)?;
    }
    Ok(Workload { jobs, tenants })
}

// ---------------------------------------------------------------------------
// Flight headers and flight records
// ---------------------------------------------------------------------------

/// The self-describing first line of a recorded run: schema version, the
/// run's identity (seed, policy, admission), integrity digests, and the
/// complete inputs ([`FleetConfig`], [`SimConfig`], [`Workload`],
/// [`SchedulerSpec`]) needed to re-simulate it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightHeader {
    /// The run's execution seed (`SplitExecConfig::with_seed`).
    pub seed: u64,
    /// The scheduler's display name (e.g. `wfq-fifo`) — always equal to
    /// `self.scheduler.name()`.
    pub policy: String,
    /// The admission controller's name (`admit-all`, `token-bucket`).
    pub admission: String,
    /// Recipe for rebuilding the exact scheduler.
    pub scheduler: SchedulerSpec,
    /// The fleet the run was simulated against.
    pub fleet: FleetConfig,
    /// Engine configuration (release mode, percentile mode).
    pub config: SimConfig,
    /// The full job stream, embedded so the record is self-contained.
    pub workload: Workload,
    /// [`fleet_fingerprint`] of `fleet` at record time.
    pub fleet_fingerprint: u64,
    /// [`workload_digest`] of `workload` at record time.
    pub workload_digest: u64,
}

impl FlightHeader {
    /// Describe a run about to be recorded; digests are computed here.
    pub fn new(
        seed: u64,
        scheduler: SchedulerSpec,
        admission: &str,
        fleet: FleetConfig,
        config: SimConfig,
        workload: Workload,
    ) -> Self {
        let fleet_fingerprint = fleet_fingerprint(&fleet);
        let workload_digest = workload_digest(&workload);
        Self {
            seed,
            policy: scheduler.name().to_string(),
            admission: admission.to_string(),
            scheduler,
            fleet,
            config,
            workload,
            fleet_fingerprint,
            workload_digest,
        }
    }

    /// Whether [`replay_run`] can reconstruct this run (only `admit-all`
    /// runs can — see the module docs).
    pub fn replayable(&self) -> bool {
        self.admission == "admit-all"
    }

    /// The header as one JSON object (the flight record's header line).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("schema", JsonValue::from(FLIGHT_SCHEMA)),
            ("seed", JsonValue::from(self.seed.to_string())),
            ("policy", JsonValue::from(self.policy.as_str())),
            ("admission", JsonValue::from(self.admission.as_str())),
            (
                "fleet_fingerprint",
                JsonValue::from(self.fleet_fingerprint.to_string()),
            ),
            (
                "workload_digest",
                JsonValue::from(self.workload_digest.to_string()),
            ),
            ("jobs", JsonValue::from(self.workload.jobs.len())),
            ("scheduler", self.scheduler.to_json()),
            ("config", sim_config_to_json(&self.config)),
            ("fleet", fleet_to_json(&self.fleet)),
            ("workload", workload_to_json(&self.workload)),
        ])
    }

    /// Parse a header line, verifying schema, digests and internal
    /// consistency (policy name matches the scheduler spec, job count
    /// matches the embedded workload).
    pub fn from_json(line: usize, value: &JsonValue) -> Result<Self, ReplayError> {
        let schema = str_field(line, value, "schema")?;
        if schema != FLIGHT_SCHEMA {
            return Err(ReplayError::UnknownSchema {
                found: schema.to_string(),
                expected: FLIGHT_SCHEMA,
            });
        }
        let seed = u64_field(line, value, "seed")?;
        let policy = str_field(line, value, "policy")?.to_string();
        let admission = str_field(line, value, "admission")?.to_string();
        let recorded_fleet_fp = u64_field(line, value, "fleet_fingerprint")?;
        let recorded_workload_digest = u64_field(line, value, "workload_digest")?;
        let jobs = usize_field(line, value, "jobs")?;
        let scheduler = SchedulerSpec::from_json(line, req(line, value, "scheduler")?)?;
        let config = sim_config_from_json(line, req(line, value, "config")?)?;
        let fleet = fleet_from_json(line, req(line, value, "fleet")?)?;
        let workload = workload_from_json(line, req(line, value, "workload")?)?;
        if policy != scheduler.name() {
            return Err(field_err(
                line,
                "policy",
                format!(
                    "{policy:?} does not match the scheduler spec ({:?})",
                    scheduler.name()
                ),
            ));
        }
        if jobs != workload.jobs.len() {
            return Err(field_err(
                line,
                "jobs",
                format!(
                    "header declares {jobs} jobs but the embedded workload has {}",
                    workload.jobs.len()
                ),
            ));
        }
        if recorded_fleet_fp != fleet_fingerprint(&fleet) {
            return Err(field_err(
                line,
                "fleet_fingerprint",
                "does not match the embedded fleet config (corrupt or hand-edited record)",
            ));
        }
        if recorded_workload_digest != workload_digest(&workload) {
            return Err(field_err(
                line,
                "workload_digest",
                "does not match the embedded workload (corrupt or hand-edited record)",
            ));
        }
        Ok(Self {
            seed,
            policy,
            admission,
            scheduler,
            fleet,
            config,
            workload,
            fleet_fingerprint: recorded_fleet_fp,
            workload_digest: recorded_workload_digest,
        })
    }
}

/// One recorded run: its header plus the complete trace that followed it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedRun {
    /// The run's self-describing header.
    pub header: FlightHeader,
    /// The run's trace records, in emission order.
    pub records: Vec<TraceRecord>,
}

/// A parsed flight record: one or more recorded runs (a single `--record`
/// file captures every primary run of a `cluster_sim` invocation — a
/// compare sweep records one segment per policy).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// The recorded runs, in file order.
    pub runs: Vec<RecordedRun>,
}

/// Parse a flight-record file: header lines (objects with a `"schema"`
/// key) open a new run, every other line is a trace record of the run in
/// progress.  Blank lines are ignored; anything else is a typed error.
pub fn parse_flight_record(text: &str) -> Result<FlightRecord, ReplayError> {
    let mut runs: Vec<RecordedRun> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value = json::parse(trimmed).map_err(|source| ReplayError::Json { line, source })?;
        if value.get("schema").is_some() {
            runs.push(RecordedRun {
                header: FlightHeader::from_json(line, &value)?,
                records: Vec::new(),
            });
        } else {
            let Some(run) = runs.last_mut() else {
                return Err(field_err(
                    line,
                    "schema",
                    "trace record before any flight-record header",
                ));
            };
            run.records.push(record_from_json(line, &value)?);
        }
    }
    if runs.is_empty() {
        return Err(ReplayError::Empty);
    }
    Ok(FlightRecord { runs })
}

/// Parse one trace-record line (the inverse of [`TraceRecord::to_json`]).
fn record_from_json(line: usize, value: &JsonValue) -> Result<TraceRecord, ReplayError> {
    let time = finite_field(line, value, "t")?;
    match str_field(line, value, "kind")? {
        "fired" => {
            let seq = usize_field(line, value, "seq")? as u64;
            let kind = match str_field(line, value, "event")? {
                "arrival" => EventKind::JobArrival {
                    job: usize_field(line, value, "job")?,
                },
                "completion" => EventKind::JobCompletion {
                    qpu: usize_field(line, value, "qpu")?,
                    job: usize_field(line, value, "job")?,
                },
                other => {
                    return Err(field_err(
                        line,
                        "event",
                        format!("expected \"arrival\" or \"completion\", found {other:?}"),
                    ))
                }
            };
            Ok(TraceRecord::Fired(Event { time, seq, kind }))
        }
        "dispatched" => Ok(TraceRecord::Dispatched {
            time,
            job: usize_field(line, value, "job")?,
            qpu: usize_field(line, value, "qpu")?,
            tenant: TenantId(usize_field(line, value, "tenant")?),
            warm: bool_field(line, value, "warm")?,
            finish: finite_field(line, value, "finish")?,
            stage1_seconds: finite_field(line, value, "stage1_seconds")?,
            stage2_seconds: finite_field(line, value, "stage2_seconds")?,
            stage3_seconds: finite_field(line, value, "stage3_seconds")?,
        }),
        "rejected" => Ok(TraceRecord::Rejected {
            time,
            job: usize_field(line, value, "job")?,
        }),
        "shed" => Ok(TraceRecord::Shed {
            time,
            job: usize_field(line, value, "job")?,
            tenant: TenantId(usize_field(line, value, "tenant")?),
            infeasible: bool_field(line, value, "infeasible")?,
        }),
        "deferred" => Ok(TraceRecord::Deferred {
            time,
            job: usize_field(line, value, "job")?,
            until: finite_field(line, value, "until")?,
        }),
        other => Err(ReplayError::UnknownKind {
            line,
            kind: other.to_string(),
        }),
    }
}

// ---------------------------------------------------------------------------
// RecorderSink
// ---------------------------------------------------------------------------

/// A [`TraceSink`] that streams a flight record to any [`io::Write`]:
/// call [`Self::begin_run`] with the run's header, then attach the sink to
/// the engine — every record becomes one JSONL line.  Reuses
/// [`JsonlSink`]'s latched-error plumbing: I/O failures are counted and
/// latched ([`Self::take_error`] / [`Self::finish`]), never raised into
/// the engine.
///
/// One sink can record many runs back-to-back (one `begin_run` per run);
/// [`parse_flight_record`] splits them back apart.
#[derive(Debug)]
pub struct RecorderSink<W: io::Write> {
    inner: JsonlSink<W>,
}

impl<W: io::Write> RecorderSink<W> {
    /// A recorder writing to `out`.
    pub fn new(out: W) -> Self {
        Self {
            inner: JsonlSink::new(out),
        }
    }

    /// Open a new run segment by writing its header line.  Must be called
    /// before the run's first record; may be called again for each
    /// subsequent run recorded into the same file.
    pub fn begin_run(&mut self, header: &FlightHeader) {
        self.inner.write_value(&header.to_json());
    }

    /// Lines (headers + records) successfully written.
    pub fn lines(&self) -> usize {
        self.inner.lines()
    }

    /// Write failures latched so far.
    pub fn write_errors(&self) -> usize {
        self.inner.write_errors()
    }

    /// The first latched write failure, if any, leaving the latch empty.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.inner.take_error()
    }

    /// Flush and return the underlying writer, discarding any latched
    /// error; use [`Self::finish`] to observe failures instead.
    pub fn into_inner(self) -> W {
        self.inner.into_inner()
    }

    /// Flush and dismantle the recorder, reporting the first latched
    /// failure: `Ok((writer, lines))` only if every line landed.
    pub fn finish(self) -> Result<(W, usize), io::Error> {
        self.inner.finish()
    }
}

impl<W: io::Write> TraceSink for RecorderSink<W> {
    // sx-lint: hot-exempt -- streaming serialization is this sink's whole policy; NullSink is the perf default
    fn on_record(&mut self, record: &TraceRecord, vclock: f64) {
        self.inner.on_record(record, vclock);
    }

    fn name(&self) -> &'static str {
        "recorder"
    }
}

// ---------------------------------------------------------------------------
// Arrival traces: recorded workloads as just another workload source
// ---------------------------------------------------------------------------

/// Render a workload as an arrival trace: one [`ARRIVAL_SCHEMA`] header
/// line (tenant table + job count), then one line per job in submission
/// order.  [`parse_arrival_trace`] inverts this bit-identically.
pub fn render_arrival_trace(workload: &Workload) -> String {
    let header = JsonValue::object([
        ("schema", JsonValue::from(ARRIVAL_SCHEMA)),
        ("jobs", JsonValue::from(workload.jobs.len())),
        (
            "tenants",
            JsonValue::array(workload.tenants.iter().map(tenant_to_json)),
        ),
    ]);
    let mut out = header.to_string();
    out.push('\n');
    for job in &workload.jobs {
        out.push_str(&job_to_json(job).to_string());
        out.push('\n');
    }
    out
}

/// Parse an arrival trace back into a [`Workload`], enforcing the trace
/// invariants: matching schema, dense in-order job ids, non-decreasing
/// arrivals, tenant indices within the declared tenant table, and a job
/// count matching the header's declaration (so a truncated file is a typed
/// error, not a silently shorter workload).
pub fn parse_arrival_trace(text: &str) -> Result<Workload, ReplayError> {
    let mut header: Option<(usize, Vec<TenantMeta>)> = None;
    let mut jobs: Vec<Job> = Vec::new();
    let mut last_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        last_line = line;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value = json::parse(trimmed).map_err(|source| ReplayError::Json { line, source })?;
        match &header {
            None => {
                let Some(schema) = value.get("schema") else {
                    return Err(field_err(
                        line,
                        "schema",
                        "first line must be the arrival-trace header",
                    ));
                };
                let schema = match schema {
                    JsonValue::Str(s) => s.as_str(),
                    other => {
                        return Err(field_err(
                            line,
                            "schema",
                            format!("expected string, found {}", type_name(other)),
                        ))
                    }
                };
                if schema != ARRIVAL_SCHEMA {
                    return Err(ReplayError::UnknownSchema {
                        found: schema.to_string(),
                        expected: ARRIVAL_SCHEMA,
                    });
                }
                let declared = usize_field(line, &value, "jobs")?;
                let raw_tenants = array_field(line, &value, "tenants")?;
                let mut tenants = Vec::with_capacity(raw_tenants.len());
                for item in raw_tenants {
                    tenants.push(tenant_from_json(line, item)?);
                }
                jobs.reserve(declared);
                header = Some((declared, tenants));
            }
            Some((_, tenants)) => {
                let job = job_from_json(line, &value)?;
                push_job(&mut jobs, tenants.len(), job, line)?;
            }
        }
    }
    let Some((declared, tenants)) = header else {
        return Err(ReplayError::Empty);
    };
    if jobs.len() != declared {
        return Err(field_err(
            last_line.max(1),
            "jobs",
            format!(
                "header declares {declared} jobs but the trace contains {} (truncated file?)",
                jobs.len()
            ),
        ));
    }
    Ok(Workload { jobs, tenants })
}

/// A source of workloads: recorded arrival traces and the synthetic
/// generators behind one interface, so the engine (and `cluster_sim`) can
/// treat "replay this capture" exactly like "generate me a workload".
pub trait TraceReader {
    /// Produce the workload.
    fn read(&self) -> Result<Workload, ReplayError>;
}

/// A recorded arrival trace held as text (read the file, hand it here).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    text: String,
}

impl RecordedTrace {
    /// Wrap the raw text of an arrival-trace file.
    pub fn new(text: impl Into<String>) -> Self {
        Self { text: text.into() }
    }
}

impl TraceReader for RecordedTrace {
    fn read(&self) -> Result<Workload, ReplayError> {
        parse_arrival_trace(&self.text)
    }
}

impl TraceReader for WorkloadSpec {
    fn read(&self) -> Result<Workload, ReplayError> {
        self.try_generate().map_err(ReplayError::Workload)
    }
}

impl TraceReader for MultiTenantSpec {
    fn read(&self) -> Result<Workload, ReplayError> {
        self.try_generate().map_err(ReplayError::Workload)
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Re-simulate a recorded run from its header: rebuild the fleet (same
/// config + seed ⇒ identical fault maps), rebuild the scheduler from its
/// spec, and run the engine with `sink` attached.  The determinism
/// contract guarantees the emitted stream is bit-identical to the recorded
/// one; [`check_replay`] asserts it.
///
/// Refuses runs whose admission controller cannot be reconstructed
/// ([`ReplayError::UnsupportedAdmission`]).
pub fn replay_run(run: &RecordedRun, sink: &mut dyn TraceSink) -> Result<SimReport, ReplayError> {
    if !run.header.replayable() {
        return Err(ReplayError::UnsupportedAdmission {
            admission: run.header.admission.clone(),
        });
    }
    let fleet = Fleet::new(
        run.header.fleet.clone(),
        SplitExecConfig::with_seed(run.header.seed),
    );
    let mut scheduler = run.header.scheduler.build();
    let mut admission = AdmitAll;
    Ok(simulate_with_telemetry(
        fleet,
        &run.header.workload,
        scheduler.as_mut(),
        &mut admission,
        run.header.config,
        sink,
        None,
    ))
}

/// The outcome of replaying a recorded run and comparing streams.
#[derive(Debug)]
pub struct ReplayCheck {
    /// Records compared (the shorter of the two streams).
    pub compared: usize,
    /// Index of the first divergent record, `None` when the replay is
    /// bit-identical.  A length mismatch diverges at the shorter length.
    pub divergence: Option<usize>,
    /// The replayed run's report.
    pub report: SimReport,
}

/// Replay `run` and compare the replayed stream element-wise against the
/// recorded one.
pub fn check_replay(run: &RecordedRun) -> Result<ReplayCheck, ReplayError> {
    let mut sink = VecSink::new();
    let report = replay_run(run, &mut sink)?;
    let replayed = sink.into_trace();
    let compared = run.records.len().min(replayed.len());
    let mut divergence = (0..compared).find(|&i| run.records[i] != replayed[i]);
    if divergence.is_none() && run.records.len() != replayed.len() {
        divergence = Some(compared);
    }
    Ok(ReplayCheck {
        compared,
        divergence,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload(n: usize) -> Workload {
        let jobs = (0..n)
            .map(|i| Job {
                id: i,
                tenant: TenantId(0),
                family: Arc::from(format!("fam-{}", i % 3).as_str()),
                lps: 8 + (i % 3),
                topology_key: (i % 3) as u64 + 17,
                arrival: i as f64 * 0.5,
                deadline: if i % 2 == 0 {
                    Some(i as f64 * 0.5 + 40.0)
                } else {
                    None
                },
            })
            .collect();
        Workload::single_tenant(jobs)
    }

    fn small_header(seed: u64, spec: SchedulerSpec) -> FlightHeader {
        FlightHeader::new(
            seed,
            spec,
            "admit-all",
            FleetConfig {
                qpus: 2,
                seed,
                ..FleetConfig::default()
            },
            SimConfig::default(),
            tiny_workload(8),
        )
    }

    fn record_run(header: &FlightHeader) -> String {
        let mut recorder = RecorderSink::new(Vec::<u8>::new());
        recorder.begin_run(header);
        let fleet = Fleet::new(
            header.fleet.clone(),
            SplitExecConfig::with_seed(header.seed),
        );
        let mut scheduler = header.scheduler.build();
        simulate_with_telemetry(
            fleet,
            &header.workload,
            scheduler.as_mut(),
            &mut AdmitAll,
            header.config,
            &mut recorder,
            None,
        );
        let (bytes, lines) = recorder.finish().expect("in-memory writes cannot fail");
        assert!(lines > 1, "header plus at least one record");
        String::from_utf8(bytes).expect("utf8")
    }

    #[test]
    fn scheduler_specs_round_trip_through_json() {
        let specs = [
            SchedulerSpec::Fifo,
            SchedulerSpec::CacheAffinity,
            SchedulerSpec::EarliestDeadlineFirst,
            SchedulerSpec::ShortestPredictedFirst { aging_weight: 0.25 },
            SchedulerSpec::WeightedFair {
                weights: vec![1.0, 3.5],
                lane_order: LaneOrder::Fifo,
            },
            SchedulerSpec::WeightedFair {
                weights: vec![],
                lane_order: LaneOrder::EarliestDeadline,
            },
        ];
        for spec in specs {
            let rendered = spec.to_json().to_string();
            let parsed = json::parse(&rendered).expect("valid JSON");
            let back = SchedulerSpec::from_json(1, &parsed).expect("round trip");
            assert_eq!(back, spec);
            assert_eq!(back.name(), spec.build().name(), "spec names its scheduler");
        }
    }

    #[test]
    fn policy_kind_specs_build_what_policy_kind_builds() {
        for kind in PolicyKind::all() {
            let spec = SchedulerSpec::from(kind);
            assert_eq!(spec.build().name(), kind.build().name());
        }
    }

    #[test]
    fn flight_header_round_trips_through_json() {
        let header = small_header(
            42,
            SchedulerSpec::WeightedFair {
                weights: vec![2.0, 1.0],
                lane_order: LaneOrder::Fifo,
            },
        );
        let rendered = header.to_json().to_string();
        let parsed = json::parse(&rendered).expect("valid JSON");
        let back = FlightHeader::from_json(1, &parsed).expect("round trip");
        assert_eq!(back, header);
        // Re-rendering is byte-identical: trace_diff can compare raw lines.
        assert_eq!(back.to_json().to_string(), rendered);
    }

    #[test]
    fn recorded_run_replays_bit_identically() {
        let header = small_header(7, SchedulerSpec::CacheAffinity);
        let text = record_run(&header);
        let flight = parse_flight_record(&text).expect("parses");
        assert_eq!(flight.runs.len(), 1);
        let run = &flight.runs[0];
        assert_eq!(run.header, header);
        assert!(!run.records.is_empty());
        let check = check_replay(run).expect("replayable");
        assert_eq!(check.divergence, None, "replay must be bit-identical");
        assert_eq!(check.compared, run.records.len());
    }

    #[test]
    fn multi_segment_records_split_into_runs() {
        let a = small_header(3, SchedulerSpec::Fifo);
        let b = small_header(4, SchedulerSpec::EarliestDeadlineFirst);
        let text = format!("{}{}", record_run(&a), record_run(&b));
        let flight = parse_flight_record(&text).expect("parses");
        assert_eq!(flight.runs.len(), 2);
        assert_eq!(flight.runs[0].header.seed, 3);
        assert_eq!(flight.runs[1].header.seed, 4);
        for run in &flight.runs {
            assert_eq!(check_replay(run).expect("replayable").divergence, None);
        }
    }

    #[test]
    fn a_perturbed_record_diverges_at_a_definite_index() {
        let header = small_header(11, SchedulerSpec::Fifo);
        let text = record_run(&header);
        let mut flight = parse_flight_record(&text).expect("parses");
        let run = &mut flight.runs[0];
        // Tamper with one mid-stream record.
        let mid = run.records.len() / 2;
        if let TraceRecord::Fired(event) = &mut run.records[mid] {
            event.time += 0.125;
        } else {
            run.records[mid] = TraceRecord::Rejected {
                time: 0.0,
                job: 9999,
            };
        }
        let check = check_replay(run).expect("replayable");
        assert_eq!(check.divergence, Some(mid));
    }

    #[test]
    fn truncated_records_diverge_at_the_missing_suffix() {
        let header = small_header(12, SchedulerSpec::Fifo);
        let text = record_run(&header);
        let mut flight = parse_flight_record(&text).expect("parses");
        let run = &mut flight.runs[0];
        let keep = run.records.len() - 2;
        run.records.truncate(keep);
        let check = check_replay(run).expect("replayable");
        assert_eq!(check.divergence, Some(keep));
    }

    #[test]
    fn token_bucket_segments_are_refused_not_panicked() {
        let mut header = small_header(5, SchedulerSpec::Fifo);
        header.admission = "token-bucket".to_string();
        assert!(!header.replayable());
        let run = RecordedRun {
            header,
            records: Vec::new(),
        };
        let mut sink = VecSink::new();
        match replay_run(&run, &mut sink) {
            Err(ReplayError::UnsupportedAdmission { admission }) => {
                assert_eq!(admission, "token-bucket");
            }
            other => panic!("expected UnsupportedAdmission, got {other:?}"),
        }
    }

    #[test]
    fn arrival_traces_round_trip_bit_identically() {
        let workload = tiny_workload(10);
        let text = render_arrival_trace(&workload);
        let back = RecordedTrace::new(text.as_str()).read().expect("parses");
        assert_eq!(back, workload);
        // Render → parse → render is byte-stable.
        assert_eq!(render_arrival_trace(&back), text);
    }

    #[test]
    fn generator_specs_are_trace_readers_too() {
        let spec = WorkloadSpec::repeated_topologies(12, 2.0, 9);
        let direct = spec.try_generate().expect("valid spec");
        let via_reader = TraceReader::read(&spec).expect("reader path");
        assert_eq!(via_reader, direct);
        // And the recorded form of a generated workload replays identically.
        let text = render_arrival_trace(&direct);
        assert_eq!(RecordedTrace::new(text).read().expect("parses"), direct);
    }

    #[test]
    fn workload_digest_separates_unequal_workloads() {
        let a = tiny_workload(8);
        let mut b = tiny_workload(8);
        b.jobs[3].arrival += 1e-9;
        assert_ne!(workload_digest(&a), workload_digest(&b));
        assert_eq!(workload_digest(&a), workload_digest(&tiny_workload(8)));
        let fa = FleetConfig::default();
        let fb = FleetConfig {
            seed: 1,
            ..FleetConfig::default()
        };
        assert_ne!(fleet_fingerprint(&fa), fleet_fingerprint(&fb));
    }

    // -- malformed inputs: typed errors, never panics --------------------

    #[test]
    fn truncated_jsonl_mid_record_is_a_json_error() {
        let header = small_header(6, SchedulerSpec::Fifo);
        let text = record_run(&header);
        // Chop the file mid-way through its final line.
        let cut = text.trim_end().len() - 10;
        let err = parse_flight_record(&text[..cut]).expect_err("must fail");
        match err {
            ReplayError::Json { line, .. } => assert!(line > 1),
            other => panic!("expected Json error, got {other}"),
        }
    }

    #[test]
    fn unknown_schema_versions_are_refused() {
        let err =
            parse_flight_record(r#"{"schema":"sx-flight-record/v999"}"#).expect_err("must fail");
        match err {
            ReplayError::UnknownSchema { found, expected } => {
                assert_eq!(found, "sx-flight-record/v999");
                assert_eq!(expected, FLIGHT_SCHEMA);
            }
            other => panic!("expected UnknownSchema, got {other}"),
        }
        let err = parse_arrival_trace(r#"{"schema":"sx-arrival-trace/v0","jobs":0,"tenants":[]}"#)
            .expect_err("must fail");
        assert!(matches!(err, ReplayError::UnknownSchema { .. }));
    }

    #[test]
    fn out_of_order_arrivals_are_a_typed_error() {
        let mut workload = tiny_workload(4);
        workload.jobs[2].arrival = 0.1; // earlier than job 1's 0.5
        let text = render_arrival_trace(&workload);
        let err = parse_arrival_trace(&text).expect_err("must fail");
        match err {
            ReplayError::OutOfOrderArrival { line, prev, next } => {
                assert_eq!(line, 4, "job 2 sits on line 4 (header + jobs 0..2)");
                assert_eq!(prev, 0.5);
                assert_eq!(next, 0.1);
            }
            other => panic!("expected OutOfOrderArrival, got {other}"),
        }
    }

    #[test]
    fn duplicate_job_ids_are_a_typed_error() {
        let mut workload = tiny_workload(4);
        workload.jobs[3].id = 1;
        workload.jobs[3].arrival = workload.jobs[2].arrival;
        let text = render_arrival_trace(&workload);
        let err = parse_arrival_trace(&text).expect_err("must fail");
        match err {
            ReplayError::DuplicateJobId { line, id } => {
                assert_eq!(line, 5);
                assert_eq!(id, 1);
            }
            other => panic!("expected DuplicateJobId, got {other}"),
        }
    }

    #[test]
    fn truncated_arrival_traces_are_caught_by_the_declared_count() {
        let workload = tiny_workload(6);
        let text = render_arrival_trace(&workload);
        // Drop the last complete line (a clean truncation: every remaining
        // line still parses, only the count betrays it).
        let trimmed = text.trim_end();
        let cut = trimmed.rfind('\n').expect("multi-line");
        let err = parse_arrival_trace(&trimmed[..cut]).expect_err("must fail");
        match err {
            ReplayError::Field { field, reason, .. } => {
                assert_eq!(field, "jobs");
                assert!(reason.contains("declares 6"), "got: {reason}");
            }
            other => panic!("expected Field error, got {other}"),
        }
    }

    #[test]
    fn records_before_any_header_are_refused() {
        let err =
            parse_flight_record(r#"{"t":0.0,"kind":"rejected","job":0}"#).expect_err("must fail");
        assert!(matches!(err, ReplayError::Field { .. }));
        assert!(matches!(parse_flight_record(""), Err(ReplayError::Empty)));
        assert!(matches!(
            parse_arrival_trace("\n\n"),
            Err(ReplayError::Empty)
        ));
    }

    #[test]
    fn unknown_record_kinds_are_a_typed_error() {
        let header = small_header(2, SchedulerSpec::Fifo);
        let mut text = record_run(&header);
        text.push_str("{\"t\":1.0,\"kind\":\"teleported\",\"job\":0}\n");
        let err = parse_flight_record(&text).expect_err("must fail");
        match err {
            ReplayError::UnknownKind { kind, .. } => assert_eq!(kind, "teleported"),
            other => panic!("expected UnknownKind, got {other}"),
        }
    }

    #[test]
    fn tampered_digests_are_an_integrity_error() {
        let header = small_header(13, SchedulerSpec::Fifo);
        let rendered = header.to_json().to_string();
        let tampered =
            rendered.replacen(&format!("\"{}\"", header.workload_digest), "\"12345\"", 1);
        assert_ne!(tampered, rendered, "digest must appear in the header");
        let parsed = json::parse(&tampered).expect("still valid JSON");
        let err = FlightHeader::from_json(1, &parsed).expect_err("must fail");
        match err {
            ReplayError::Field { field, .. } => assert_eq!(field, "workload_digest"),
            other => panic!("expected Field error, got {other}"),
        }
    }

    #[test]
    fn error_display_names_the_line() {
        let err = ReplayError::OutOfOrderArrival {
            line: 7,
            prev: 2.0,
            next: 1.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("line 7"), "got: {msg}");
        let err = ReplayError::Json {
            line: 3,
            source: json::parse("{").expect_err("invalid"),
        };
        assert!(err.to_string().contains("line 3"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
