//! Metrics: what the simulator reports about a run.
//!
//! Latency percentiles come from [`quantum_anneal::stats::percentile`] (the
//! shared order-statistics helper), the per-stage breakdown mirrors the
//! paper's three-stage accounting, and [`SimReport::batch_summary`] exports
//! the run in the same [`split_exec::BatchSummary`] format the batch
//! pipeline uses — one report shape whether jobs went through a single
//! pipeline or a simulated datacenter.

use crate::job::JobRecord;
use crate::sim::TraceRecord;
use crate::telemetry::StreamingHistogram;
use crate::tenant::TenantId;
use quantum_anneal::stats::{percentile_sorted, Histogram};
use serde::{Deserialize, Serialize};
use split_exec::offline_cache::CacheStats;
use split_exec::BatchSummary;
use std::fmt;

/// Latency distribution summary (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Compute the summary from raw per-job values (zeroes when empty).
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        // Unstable on purpose: equal f64 keys are indistinguishable, and the
        // in-place sort keeps the allocation count independent of the input
        // length (a stable sort's scratch buffer appears only past a length
        // threshold, which tests/alloc_budget.rs would see as a per-event
        // allocation).
        sorted.sort_unstable_by(f64::total_cmp);
        let pct = |p| percentile_sorted(&sorted, p).unwrap_or(0.0);
        Self {
            mean: if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<f64>() / sorted.len() as f64
            },
            min: sorted.first().copied().unwrap_or(0.0),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }

    /// Compute the summary from a streaming sketch instead of retained
    /// samples (zeroes when the sketch is empty, matching
    /// [`Self::from_values`] on empty input).
    ///
    /// `min`/`max`/`mean` are tracked exactly by the sketch; the quantiles
    /// carry its documented relative-error bound
    /// ([`StreamingHistogram::relative_error_bound`]).  This is the
    /// retention-free path behind
    /// [`crate::sim::PercentileMode::Sketch`].
    pub fn from_sketch(sketch: &StreamingHistogram) -> Self {
        Self {
            mean: sketch.mean(),
            min: sketch.min(),
            p50: sketch.p50(),
            p95: sketch.p95(),
            p99: sketch.p99(),
            max: sketch.max(),
        }
    }

    /// The order-statistics invariant every summary must satisfy:
    /// `min ≤ p50 ≤ p95 ≤ p99 ≤ max` (proptested on simulated runs).
    pub fn percentiles_ordered(&self) -> bool {
        self.min <= self.p50 && self.p50 <= self.p95 && self.p95 <= self.p99 && self.p99 <= self.max
    }
}

/// Per-device utilization and cache behavior over a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpuStats {
    /// Device id.
    pub qpu: usize,
    /// Jobs served.
    pub jobs: usize,
    /// Busy fraction of the makespan (0 when the makespan is zero).
    pub utilization: f64,
    /// Jobs whose embedding was warm on this device.
    pub warm_hits: usize,
    /// Jobs that embedded cold on this device.
    pub cold_misses: usize,
    /// Distinct topologies in this device's cache at the end of the run.
    pub warm_topologies: usize,
    /// Embeddings evicted from this device's bounded cache during the run.
    pub evictions: usize,
    /// Cold embeddings the cache-admission doorkeeper declined to cache.
    pub cache_bypassed: usize,
    /// The device's warm-cache capacity (`None` = unbounded).
    pub cache_capacity: Option<usize>,
}

impl QpuStats {
    /// Warm-hit fraction of the jobs this device served (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.cold_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }
}

/// Everything the metrics layer records about one tenant over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Human-readable label from the workload's tenant metadata.
    pub name: String,
    /// Fair-share weight from the metadata (1.0 when absent).
    pub weight: f64,
    /// Jobs the tenant submitted.
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs the admission controller shed (all causes, including
    /// deadline-infeasibility).
    pub shed: usize,
    /// Of the shed jobs, how many were shed because their deadline was
    /// already provably unreachable at admission time.
    pub shed_infeasible: usize,
    /// Defer events (one job deferred twice counts twice).
    pub deferrals: usize,
    /// Jobs rejected as infeasible on every device.
    pub rejected: usize,
    /// Largest number of this tenant's jobs queued at once.
    pub max_queue_depth: usize,
    /// End-to-end latency distribution of the tenant's completed jobs.
    pub latency: LatencyStats,
    /// Queueing-delay distribution.
    pub wait: LatencyStats,
    /// Completed jobs that carried a deadline (the tenant's SLO
    /// population; zero for a deadline-free tenant).
    pub slo_jobs: usize,
    /// Of [`Self::slo_jobs`], how many finished after their deadline.
    pub slo_misses: usize,
    /// Lateness distribution over the tenant's deadline-carrying completed
    /// jobs: `max(0, finish − deadline)`, so on-time jobs contribute zeros
    /// and the percentiles read "how late are the misses".  All-zero for a
    /// deadline-free tenant.
    pub lateness: LatencyStats,
    /// Summed service seconds the tenant consumed.
    pub service_seconds: f64,
}

impl TenantStats {
    /// Service seconds per unit weight — the normalized share fairness
    /// indices compare across tenants.
    pub fn normalized_share(&self) -> f64 {
        if self.weight > 0.0 {
            self.service_seconds / self.weight
        } else {
            self.service_seconds
        }
    }

    /// Fraction of the tenant's completed deadline-carrying jobs that
    /// missed their deadline (0 when the tenant has no SLO population).
    pub fn slo_miss_rate(&self) -> f64 {
        if self.slo_jobs == 0 {
            0.0
        } else {
            self.slo_misses as f64 / self.slo_jobs as f64
        }
    }
}

/// Jain's fairness index over a set of non-negative allocations:
/// `(Σx)² / (n · Σx²)`, 1.0 when all allocations are equal, approaching
/// `1/n` when one allocation monopolizes.  Empty or all-zero input is
/// vacuously fair (1.0).
pub fn jains_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// The full outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The policy that produced the run.
    pub policy: String,
    /// The admission controller that gated arrivals.
    pub admission: String,
    /// Jobs submitted.
    pub jobs: usize,
    /// Events popped from the future-event list over the run — the
    /// denominator of the engine's ns/event perf metric.
    pub events: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs the admission controller shed (all causes).
    pub shed: usize,
    /// Of the shed jobs, how many were deadline-infeasibility sheds.
    pub shed_infeasible: usize,
    /// Defer events across the run (one job deferred twice counts twice).
    pub deferrals: usize,
    /// Jobs rejected at arrival (infeasible on every device).
    pub rejected: usize,
    /// Virtual time at which the last event fired.
    pub makespan_seconds: f64,
    /// End-to-end latency distribution.
    pub latency: LatencyStats,
    /// Queueing-delay distribution.
    pub wait: LatencyStats,
    /// Lateness distribution over all completed deadline-carrying jobs
    /// (`max(0, finish − deadline)`; all-zero when no job has a deadline).
    pub lateness: LatencyStats,
    /// Summed stage-1 service seconds over completed jobs.
    pub stage1_seconds: f64,
    /// Summed stage-2 service seconds.
    pub stage2_seconds: f64,
    /// Summed stage-3 service seconds.
    pub stage3_seconds: f64,
    /// Per-device statistics.
    pub per_qpu: Vec<QpuStats>,
    /// Per-tenant statistics, in tenant-id order.
    pub per_tenant: Vec<TenantStats>,
    /// Queue depth sampled after every event: `(virtual time, depth)`.
    pub queue_depth: Vec<(f64, usize)>,
    /// Per-job records in completion order.
    pub records: Vec<JobRecord>,
    /// The full deterministic event trace (fired events, dispatches,
    /// rejections, in order).
    pub trace: Vec<TraceRecord>,
}

impl SimReport {
    /// Summed service seconds across all stages.
    pub fn total_service_seconds(&self) -> f64 {
        self.stage1_seconds + self.stage2_seconds + self.stage3_seconds
    }

    /// Fraction of the summed service time spent in stage 1 — the paper's
    /// headline, measured at fleet scale.
    pub fn stage1_fraction(&self) -> f64 {
        let total = self.total_service_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.stage1_seconds / total
        }
    }

    /// Total warm-embedding hits across the fleet.
    pub fn warm_hits(&self) -> usize {
        self.per_qpu.iter().map(|q| q.warm_hits).sum()
    }

    /// Total cold embeds across the fleet.
    pub fn cold_misses(&self) -> usize {
        self.per_qpu.iter().map(|q| q.cold_misses).sum()
    }

    /// Total cache evictions across the fleet.
    pub fn evictions(&self) -> usize {
        self.per_qpu.iter().map(|q| q.evictions).sum()
    }

    /// Fleet-wide warm-hit rate: warm hits over all dispatches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.warm_hits() + self.cold_misses();
        if total == 0 {
            0.0
        } else {
            self.warm_hits() as f64 / total as f64
        }
    }

    /// Mean device utilization over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_qpu.is_empty() {
            0.0
        } else {
            self.per_qpu.iter().map(|q| q.utilization).sum::<f64>() / self.per_qpu.len() as f64
        }
    }

    /// Largest queue depth observed.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// The statistics of one tenant, if it appears in the report.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantStats> {
        self.per_tenant.iter().find(|t| t.tenant == tenant)
    }

    /// The statistics of the tenant with the given metadata name.
    pub fn tenant_named(&self, name: &str) -> Option<&TenantStats> {
        self.per_tenant.iter().find(|t| t.name == name)
    }

    /// Jain's fairness index over the tenants' weight-normalized service
    /// shares: 1.0 means every active tenant received service exactly
    /// proportional to its weight.  Tenants that *submitted* jobs are
    /// included even when they completed none — a totally starved tenant
    /// contributes a zero share and drags the index down, it must not
    /// silently vanish from the measurement.
    pub fn jains_fairness_index(&self) -> f64 {
        let shares: Vec<f64> = self
            .per_tenant
            .iter()
            .filter(|t| t.submitted > 0)
            .map(|t| t.normalized_share())
            .collect();
        jains_index(&shares)
    }

    /// Max-min share ratio: the smallest weight-normalized service share
    /// over the largest, across tenants that submitted jobs (a starved
    /// tenant counts as share 0, driving the ratio to 0).  1.0 is
    /// perfectly weighted-fair; near 0.0 one tenant is starved.
    pub fn max_min_share(&self) -> f64 {
        let shares: Vec<f64> = self
            .per_tenant
            .iter()
            .filter(|t| t.submitted > 0)
            .map(|t| t.normalized_share())
            .collect();
        let max = shares.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = shares.iter().copied().fold(f64::INFINITY, f64::min);
        if shares.len() <= 1 || max <= 0.0 {
            1.0
        } else {
            min / max
        }
    }

    /// Cold embeddings across the fleet that the cache-admission
    /// doorkeeper declined to cache.
    pub fn cache_bypassed(&self) -> usize {
        self.per_qpu.iter().map(|q| q.cache_bypassed).sum()
    }

    /// Completed jobs that carried a deadline — the run's SLO population.
    pub fn slo_jobs(&self) -> usize {
        self.records.iter().filter(|r| r.deadline.is_some()).count()
    }

    /// Completed jobs that finished after their deadline.
    pub fn slo_misses(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.slo_miss() == Some(true))
            .count()
    }

    /// Fraction of the completed deadline-carrying jobs that missed their
    /// deadline (0 when nothing carried a deadline).
    pub fn slo_miss_rate(&self) -> f64 {
        let jobs = self.slo_jobs();
        if jobs == 0 {
            0.0
        } else {
            self.slo_misses() as f64 / jobs as f64
        }
    }

    /// Histogram of end-to-end latencies with `bins` uniform bins.
    pub fn latency_histogram(&self, bins: usize) -> Histogram {
        let latencies: Vec<f64> = self.records.iter().map(|r| r.latency_seconds()).collect();
        Histogram::from_samples(&latencies, bins)
    }

    /// Export the run in the shared batch-report format
    /// ([`split_exec::BatchSummary`]): the virtual makespan plays the role
    /// of the batch's wall clock, and warm hits / cold misses map onto the
    /// embedding-cache statistics.
    pub fn batch_summary(&self) -> BatchSummary {
        BatchSummary {
            jobs: self.jobs,
            succeeded: self.completed,
            failed: self.jobs - self.completed,
            stage1_seconds: self.stage1_seconds,
            stage2_seconds: self.stage2_seconds,
            stage3_seconds: self.stage3_seconds,
            total_seconds: self.total_service_seconds(),
            wall_seconds: self.makespan_seconds,
            stage1_fraction: self.stage1_fraction(),
            embedding_cache: CacheStats {
                hits: self.warm_hits(),
                misses: self.cold_misses(),
            },
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy {}: {}/{} jobs completed ({} rejected, {} shed, {} deferrals) \
             in {:.1} virtual seconds",
            self.policy,
            self.completed,
            self.jobs,
            self.rejected,
            self.shed,
            self.deferrals,
            self.makespan_seconds
        )?;
        writeln!(
            f,
            "latency: mean {:.2}s, p50 {:.2}s, p95 {:.2}s, p99 {:.2}s, max {:.2}s",
            self.latency.mean,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.max
        )?;
        writeln!(
            f,
            "stages: 1 = {:.3e}s, 2 = {:.3e}s, 3 = {:.3e}s (stage-1 share {:.1}%)",
            self.stage1_seconds,
            self.stage2_seconds,
            self.stage3_seconds,
            100.0 * self.stage1_fraction()
        )?;
        write!(
            f,
            "fleet: {:.0}% mean utilization, {} warm hits / {} cold embeds ({} evictions), max queue depth {}",
            100.0 * self.mean_utilization(),
            self.warm_hits(),
            self.cold_misses(),
            self.evictions(),
            self.max_queue_depth()
        )?;
        if self.slo_jobs() > 0 || self.shed_infeasible > 0 {
            write!(
                f,
                "\nSLO: {}/{} deadline jobs missed ({:.1}% miss rate, \
                 p99 lateness {:.2}s, {} infeasible shed)",
                self.slo_misses(),
                self.slo_jobs(),
                100.0 * self.slo_miss_rate(),
                self.lateness.p99,
                self.shed_infeasible
            )?;
        }
        if self.per_tenant.len() > 1 {
            for t in &self.per_tenant {
                write!(
                    f,
                    "\n  tenant {} ({}, weight {}): {}/{} done ({} shed), \
                     p50 {:.2}s p99 {:.2}s, share {:.1}s",
                    t.tenant,
                    t.name,
                    t.weight,
                    t.completed,
                    t.submitted,
                    t.shed,
                    t.latency.p50,
                    t.latency.p99,
                    t.service_seconds
                )?;
                if t.slo_jobs > 0 {
                    write!(
                        f,
                        ", SLO {}/{} missed ({:.1}%)",
                        t.slo_misses,
                        t.slo_jobs,
                        100.0 * t.slo_miss_rate()
                    )?;
                }
            }
            write!(
                f,
                "\n  fairness: Jain {:.3}, max-min share {:.3}",
                self.jains_fairness_index(),
                self.max_min_share()
            )?;
        }
        Ok(())
    }
}

/// One point of a cache-capacity sweep: the fleet-wide hit rate and mean
/// latency observed at a given per-device capacity under one eviction
/// policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachePoint {
    /// Per-device warm-cache capacity the run used.
    pub capacity: usize,
    /// Eviction policy name (`lru`, `cost-aware`).
    pub eviction: String,
    /// Fleet-wide warm-hit rate of the run.
    pub hit_rate: f64,
    /// Mean end-to-end latency (seconds).
    pub mean_latency_seconds: f64,
    /// Total evictions across the fleet.
    pub evictions: usize,
    /// Total cold embeds across the fleet.
    pub cold_misses: usize,
}

impl CachePoint {
    /// Extract the point from a finished run.
    pub fn from_report(capacity: usize, eviction: &str, report: &SimReport) -> Self {
        Self {
            capacity,
            eviction: eviction.to_string(),
            hit_rate: report.hit_rate(),
            mean_latency_seconds: report.latency.mean,
            evictions: report.evictions(),
            cold_misses: report.cold_misses(),
        }
    }
}

/// A hit-rate-vs-capacity series: the outcome of sweeping warm-cache
/// capacity across the topology diversity of one workload — the measurement
/// that exposes the hit-rate cliff.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheCliffSeries {
    /// Distinct topologies in the swept workload (where the cliff sits).
    pub distinct_topologies: usize,
    /// Sweep points, in the order they were run.
    pub points: Vec<CachePoint>,
}

impl CacheCliffSeries {
    /// The points of one eviction policy, sorted by capacity ascending.
    pub fn policy_points(&self, eviction: &str) -> Vec<&CachePoint> {
        let mut points: Vec<&CachePoint> = self
            .points
            .iter()
            .filter(|p| p.eviction == eviction)
            .collect();
        points.sort_by_key(|p| p.capacity);
        points
    }

    /// Whether the hit rate is monotone non-decreasing in capacity for the
    /// given policy (within `tolerance` to absorb scheduling feedback).
    pub fn hit_rate_monotone(&self, eviction: &str, tolerance: f64) -> bool {
        self.policy_points(eviction)
            .windows(2)
            .all(|pair| pair[1].hit_rate >= pair[0].hit_rate - tolerance)
    }
}

impl fmt::Display for CacheCliffSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>9} {:>11} {:>7} {:>10} {:>10} {:>6}",
            "capacity", "eviction", "hit%", "mean [s]", "evictions", "cold"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>9} {:>11} {:>7.1} {:>10.3} {:>10} {:>6}",
                p.capacity,
                p.eviction,
                100.0 * p.hit_rate,
                p.mean_latency_seconds,
                p.evictions,
                p.cold_misses
            )?;
        }
        write!(
            f,
            "(workload holds {} distinct topologies)",
            self.distinct_topologies
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(job: usize, arrival: f64, start: f64, finish: f64) -> JobRecord {
        JobRecord {
            job,
            tenant: TenantId::DEFAULT,
            qpu: 0,
            arrival,
            start,
            finish,
            stage1_seconds: start.max(1.0),
            stage2_seconds: 0.001,
            stage3_seconds: 0.001,
            warm_hit: false,
            deadline: None,
        }
    }

    fn tenant_stats(id: usize, weight: f64, service: f64) -> TenantStats {
        TenantStats {
            tenant: TenantId(id),
            name: format!("tenant-{id}"),
            weight,
            submitted: 2,
            completed: 1,
            shed: 1,
            shed_infeasible: 0,
            deferrals: 0,
            rejected: 0,
            max_queue_depth: 1,
            latency: LatencyStats::from_values(&[2.0]),
            wait: LatencyStats::from_values(&[0.5]),
            slo_jobs: 0,
            slo_misses: 0,
            lateness: LatencyStats::from_values(&[]),
            service_seconds: service,
        }
    }

    fn report() -> SimReport {
        let records = vec![record(0, 0.0, 0.0, 2.0), record(1, 1.0, 2.0, 5.0)];
        SimReport {
            policy: "fifo".into(),
            admission: "admit-all".into(),
            jobs: 3,
            events: 6,
            completed: 2,
            shed: 0,
            shed_infeasible: 0,
            deferrals: 0,
            rejected: 1,
            makespan_seconds: 5.0,
            latency: LatencyStats::from_values(&[2.0, 4.0]),
            wait: LatencyStats::from_values(&[0.0, 1.0]),
            lateness: LatencyStats::from_values(&[]),
            stage1_seconds: 4.0,
            stage2_seconds: 0.002,
            stage3_seconds: 0.002,
            per_qpu: vec![QpuStats {
                qpu: 0,
                jobs: 2,
                utilization: 0.8,
                warm_hits: 1,
                cold_misses: 1,
                warm_topologies: 1,
                evictions: 2,
                cache_bypassed: 0,
                cache_capacity: Some(1),
            }],
            per_tenant: vec![tenant_stats(0, 1.0, 4.0)],
            queue_depth: vec![(0.0, 1), (2.0, 2), (5.0, 0)],
            records,
            trace: Vec::new(),
        }
    }

    #[test]
    fn latency_stats_from_values() {
        let s = LatencyStats::from_values(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.5);
        assert_eq!(s.max, 4.0);
        assert!(s.percentiles_ordered());
        let empty = LatencyStats::from_values(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.min, 0.0);
        assert_eq!(empty.p99, 0.0);
        assert!(empty.percentiles_ordered());
    }

    #[test]
    fn jains_index_spans_fair_to_monopoly() {
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
        assert!((jains_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One tenant monopolizes: index collapses toward 1/n.
        let skewed = jains_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert!(jains_index(&[2.0, 1.0]) < 1.0);
    }

    #[test]
    fn fairness_indices_read_normalized_shares() {
        let mut r = report();
        // Two tenants, weights 2:1, service 4:2 — perfectly weighted-fair.
        r.per_tenant = vec![tenant_stats(0, 2.0, 4.0), tenant_stats(1, 1.0, 2.0)];
        assert!((r.jains_fairness_index() - 1.0).abs() < 1e-12);
        assert!((r.max_min_share() - 1.0).abs() < 1e-12);
        // Starve tenant 1: both indices degrade.
        r.per_tenant[1].service_seconds = 0.2;
        assert!(r.jains_fairness_index() < 0.95);
        assert!(r.max_min_share() < 0.15);
        // Lookup by id and name.
        assert_eq!(r.tenant(TenantId(1)).unwrap().name, "tenant-1");
        assert!(r.tenant(TenantId(9)).is_none());
        assert_eq!(
            r.tenant_named("tenant-0").unwrap().tenant,
            TenantId::DEFAULT
        );
    }

    #[test]
    fn single_tenant_reports_are_vacuously_fair() {
        let r = report();
        assert_eq!(r.jains_fairness_index(), 1.0);
        assert_eq!(r.max_min_share(), 1.0);
    }

    #[test]
    fn a_totally_starved_tenant_reads_as_maximally_unfair() {
        // Regression: tenants with zero completions used to be filtered
        // out of the fairness indices, so total starvation reported as
        // perfect fairness.
        let mut r = report();
        let mut starved = tenant_stats(1, 1.0, 0.0);
        starved.completed = 0;
        starved.service_seconds = 0.0;
        r.per_tenant = vec![tenant_stats(0, 1.0, 4.0), starved];
        assert!((r.jains_fairness_index() - 0.5).abs() < 1e-12);
        assert_eq!(r.max_min_share(), 0.0);
    }

    #[test]
    fn multi_tenant_display_lists_tenants_and_fairness() {
        let mut r = report();
        r.per_tenant = vec![tenant_stats(0, 2.0, 4.0), tenant_stats(1, 1.0, 2.0)];
        let text = format!("{r}");
        assert!(text.contains("tenant t0"));
        assert!(text.contains("tenant t1"));
        assert!(text.contains("Jain"));
        assert!(text.contains("max-min share"));
    }

    #[test]
    fn slo_aggregates_classify_misses_from_records() {
        let mut r = report();
        // record 0 finishes at 2.0, record 1 at 5.0.
        r.records[0].deadline = Some(3.0); // on time
        r.records[1].deadline = Some(4.0); // late by 1s
        r.lateness = LatencyStats::from_values(&[0.0, 1.0]);
        assert_eq!(r.slo_jobs(), 2);
        assert_eq!(r.slo_misses(), 1);
        assert!((r.slo_miss_rate() - 0.5).abs() < 1e-12);
        let text = format!("{r}");
        assert!(text.contains("SLO: 1/2 deadline jobs missed"));
        // A deadline-free report renders no SLO line and rates zero.
        let free = report();
        assert_eq!(free.slo_jobs(), 0);
        assert_eq!(free.slo_miss_rate(), 0.0);
        assert!(!format!("{free}").contains("SLO:"));
    }

    #[test]
    fn tenant_slo_miss_rate_handles_empty_populations() {
        let mut t = tenant_stats(0, 1.0, 4.0);
        assert_eq!(t.slo_miss_rate(), 0.0);
        t.slo_jobs = 8;
        t.slo_misses = 2;
        assert!((t.slo_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let r = report();
        assert!((r.stage1_fraction() - 4.0 / 4.004).abs() < 1e-12);
        assert_eq!(r.warm_hits(), 1);
        assert_eq!(r.cold_misses(), 1);
        assert_eq!(r.evictions(), 2);
        assert!((r.hit_rate() - 0.5).abs() < 1e-12);
        assert!((r.per_qpu[0].hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(r.max_queue_depth(), 2);
        assert!((r.mean_utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cache_cliff_series_orders_and_checks_monotonicity() {
        let mut series = CacheCliffSeries {
            distinct_topologies: 4,
            ..CacheCliffSeries::default()
        };
        for (cap, hit) in [(4usize, 0.9), (1, 0.1), (2, 0.5)] {
            series.points.push(CachePoint {
                capacity: cap,
                eviction: "lru".into(),
                hit_rate: hit,
                mean_latency_seconds: 1.0,
                evictions: 0,
                cold_misses: 0,
            });
        }
        let ordered: Vec<usize> = series
            .policy_points("lru")
            .iter()
            .map(|p| p.capacity)
            .collect();
        assert_eq!(ordered, vec![1, 2, 4]);
        assert!(series.hit_rate_monotone("lru", 1e-9));
        assert!(series.policy_points("cost-aware").is_empty());
        // A regression (higher capacity, lower hit rate) trips the check.
        series.points[0].hit_rate = 0.0;
        assert!(!series.hit_rate_monotone("lru", 1e-9));
        let text = format!("{series}");
        assert!(text.contains("capacity"));
        assert!(text.contains("4 distinct topologies"));
    }

    #[test]
    fn batch_summary_shares_the_pipeline_format() {
        let r = report();
        let s = r.batch_summary();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.succeeded, 2);
        assert_eq!(s.failed, 1);
        assert_eq!(s.wall_seconds, 5.0);
        assert_eq!(s.embedding_cache.hits, 1);
        assert_eq!(s.embedding_cache.misses, 1);
        // The shared Display implementation renders it.
        let text = format!("{s}");
        assert!(text.contains("3 jobs: 2 succeeded, 1 failed"));
    }

    #[test]
    fn report_displays_headline_lines() {
        let text = format!("{}", report());
        assert!(text.contains("policy fifo"));
        assert!(text.contains("stage-1 share"));
        assert!(text.contains("max queue depth 2"));
    }

    #[test]
    fn latency_histogram_counts_all_jobs() {
        let h = report().latency_histogram(4);
        assert_eq!(h.count, 2);
        assert_eq!(h.bins.iter().sum::<u64>(), 2);
    }
}
