//! Minimal JSON emission for machine-readable reports.
//!
//! The workspace's `serde` is an offline no-op stand-in (see
//! `crates/compat/serde`), so actual serialization cannot come from derive
//! macros.  This module is the crate's own seam: a tiny ordered
//! [`JsonValue`] tree with RFC 8259-conformant string escaping and
//! `Display`-based rendering, plus `to_json` conversions for the report
//! types the `cluster_sim` sweeps export (`--json <path>`).  Keys render in
//! insertion order, so the output is deterministic byte-for-byte.
//!
//! Non-finite numbers have no JSON representation; they render as `null`
//! rather than producing an unparseable document.

use crate::metrics::{LatencyStats, QpuStats, SimReport, TenantStats};
use std::fmt;

/// One JSON value; objects keep insertion order for deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An ordered `key: value` map.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn array(values: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(values.into_iter().collect())
    }

    /// Append a field to an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value)),
            other => panic!("push on non-object JSON value {other:?}"),
        }
    }

    /// The value of a field, when `self` is an object that has it (for
    /// tests and light inspection, not a full query language).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if n.is_finite() => write!(f, "{n}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => escape(s, f),
            JsonValue::Array(values) => {
                f.write_str("[")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl LatencyStats {
    /// The summary as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("mean", JsonValue::from(self.mean)),
            ("min", JsonValue::from(self.min)),
            ("p50", JsonValue::from(self.p50)),
            ("p95", JsonValue::from(self.p95)),
            ("p99", JsonValue::from(self.p99)),
            ("max", JsonValue::from(self.max)),
        ])
    }
}

impl TenantStats {
    /// The tenant's statistics as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("tenant", JsonValue::from(self.tenant.index())),
            ("name", JsonValue::from(self.name.as_str())),
            ("weight", JsonValue::from(self.weight)),
            ("submitted", JsonValue::from(self.submitted)),
            ("completed", JsonValue::from(self.completed)),
            ("shed", JsonValue::from(self.shed)),
            ("shed_infeasible", JsonValue::from(self.shed_infeasible)),
            ("deferrals", JsonValue::from(self.deferrals)),
            ("rejected", JsonValue::from(self.rejected)),
            ("max_queue_depth", JsonValue::from(self.max_queue_depth)),
            ("latency_seconds", self.latency.to_json()),
            ("wait_seconds", self.wait.to_json()),
            ("slo_jobs", JsonValue::from(self.slo_jobs)),
            ("slo_misses", JsonValue::from(self.slo_misses)),
            ("slo_miss_rate", JsonValue::from(self.slo_miss_rate())),
            ("lateness_seconds", self.lateness.to_json()),
            ("service_seconds", JsonValue::from(self.service_seconds)),
            ("normalized_share", JsonValue::from(self.normalized_share())),
        ])
    }
}

impl QpuStats {
    /// The device's statistics as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("qpu", JsonValue::from(self.qpu)),
            ("jobs", JsonValue::from(self.jobs)),
            ("utilization", JsonValue::from(self.utilization)),
            ("warm_hits", JsonValue::from(self.warm_hits)),
            ("cold_misses", JsonValue::from(self.cold_misses)),
            ("warm_topologies", JsonValue::from(self.warm_topologies)),
            ("evictions", JsonValue::from(self.evictions)),
            ("cache_bypassed", JsonValue::from(self.cache_bypassed)),
            (
                "cache_capacity",
                match self.cache_capacity {
                    Some(cap) => JsonValue::from(cap),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

impl SimReport {
    /// The run's aggregate outcome as a JSON object: headline counts,
    /// latency/wait summaries, per-stage breakdown, per-device and
    /// per-tenant statistics and the fairness indices.  Per-job records,
    /// the event trace and the queue-depth series are deliberately omitted
    /// (they dominate the size and sweeps don't consume them).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("policy", JsonValue::from(self.policy.as_str())),
            ("admission", JsonValue::from(self.admission.as_str())),
            ("jobs", JsonValue::from(self.jobs)),
            ("completed", JsonValue::from(self.completed)),
            ("shed", JsonValue::from(self.shed)),
            ("shed_infeasible", JsonValue::from(self.shed_infeasible)),
            ("deferrals", JsonValue::from(self.deferrals)),
            ("rejected", JsonValue::from(self.rejected)),
            ("makespan_seconds", JsonValue::from(self.makespan_seconds)),
            ("latency_seconds", self.latency.to_json()),
            ("wait_seconds", self.wait.to_json()),
            ("slo_jobs", JsonValue::from(self.slo_jobs())),
            ("slo_misses", JsonValue::from(self.slo_misses())),
            ("slo_miss_rate", JsonValue::from(self.slo_miss_rate())),
            ("lateness_seconds", self.lateness.to_json()),
            ("stage1_seconds", JsonValue::from(self.stage1_seconds)),
            ("stage2_seconds", JsonValue::from(self.stage2_seconds)),
            ("stage3_seconds", JsonValue::from(self.stage3_seconds)),
            ("stage1_fraction", JsonValue::from(self.stage1_fraction())),
            ("warm_hits", JsonValue::from(self.warm_hits())),
            ("cold_misses", JsonValue::from(self.cold_misses())),
            ("evictions", JsonValue::from(self.evictions())),
            ("hit_rate", JsonValue::from(self.hit_rate())),
            ("max_queue_depth", JsonValue::from(self.max_queue_depth())),
            (
                "jains_fairness_index",
                JsonValue::from(self.jains_fairness_index()),
            ),
            ("max_min_share", JsonValue::from(self.max_min_share())),
            (
                "per_qpu",
                JsonValue::array(self.per_qpu.iter().map(|q| q.to_json())),
            ),
            (
                "per_tenant",
                JsonValue::array(self.per_tenant.iter().map(|t| t.to_json())),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::from(3usize).to_string(), "3");
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut obj = JsonValue::object([("zebra", JsonValue::from(1.0))]);
        obj.push("alpha", JsonValue::array([JsonValue::from(2.0)]));
        assert_eq!(obj.to_string(), r#"{"zebra":1,"alpha":[2]}"#);
        assert_eq!(obj.get("alpha"), Some(&JsonValue::array([2.0.into()])));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn report_exports_headline_and_tenants() {
        use crate::prelude::*;
        use split_exec::SplitExecConfig;

        let workload =
            crate::tenant::MultiTenantSpec::aggressor_victim(5, 0.5, 2.0, 1.0, 3).generate();
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 2,
                seed: 3,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(3),
        );
        let mut policy = PolicyKind::WeightedFair.build();
        let report = simulate(fleet, &workload, policy.as_mut(), SimConfig::default());
        let json = report.to_json();
        assert_eq!(json.get("policy"), Some(&JsonValue::from("wfq")));
        assert_eq!(json.get("jobs"), Some(&JsonValue::from(report.jobs)));
        match json.get("per_tenant") {
            Some(JsonValue::Array(tenants)) => {
                assert_eq!(tenants.len(), 2);
                assert_eq!(tenants[0].get("name"), Some(&JsonValue::from("victim")));
            }
            other => panic!("per_tenant should be an array, got {other:?}"),
        }
        // The rendered text is balanced and mentions the fairness index.
        let text = json.to_string();
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces"
        );
        assert!(text.contains("\"jains_fairness_index\""));
    }
}
