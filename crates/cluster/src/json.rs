//! Minimal JSON emission for machine-readable reports.
//!
//! The workspace's `serde` is an offline no-op stand-in (see
//! `crates/compat/serde`), so actual serialization cannot come from derive
//! macros.  This module is the crate's own seam: a tiny ordered
//! [`JsonValue`] tree with RFC 8259-conformant string escaping and
//! `Display`-based rendering, plus `to_json` conversions for the report
//! types the `cluster_sim` sweeps export (`--json <path>`).  Keys render in
//! insertion order, so the output is deterministic byte-for-byte.
//!
//! Non-finite numbers have no JSON representation; they render as `null`
//! rather than producing an unparseable document.
//!
//! [`parse`] is the inverse seam: a recursive-descent RFC 8259 parser used
//! by the tests (every emitted document must round-trip) and by
//! `cluster_sim --mode bench` to validate `BENCH_cluster.json` against its
//! schema after writing it.

use crate::event::EventKind;
use crate::metrics::{LatencyStats, QpuStats, SimReport, TenantStats};
use crate::sim::TraceRecord;
use std::fmt;

/// One JSON value; objects keep insertion order for deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An ordered `key: value` map.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn array(values: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(values.into_iter().collect())
    }

    /// Append a field to an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    // sx-lint: hot-exempt -- JSON assembly runs at report/export time, never in the event loop; `push` name-collides with Vec calls in engine bodies
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value)),
            other => panic!("push on non-object JSON value {other:?}"),
        }
    }

    /// The value of a field, when `self` is an object that has it (for
    /// tests and light inspection, not a full query language).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if n.is_finite() => write!(f, "{n}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => escape(s, f),
            JsonValue::Array(values) => {
                f.write_str("[")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl LatencyStats {
    /// The summary as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("mean", JsonValue::from(self.mean)),
            ("min", JsonValue::from(self.min)),
            ("p50", JsonValue::from(self.p50)),
            ("p95", JsonValue::from(self.p95)),
            ("p99", JsonValue::from(self.p99)),
            ("max", JsonValue::from(self.max)),
        ])
    }
}

impl TenantStats {
    /// The tenant's statistics as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("tenant", JsonValue::from(self.tenant.index())),
            ("name", JsonValue::from(self.name.as_str())),
            ("weight", JsonValue::from(self.weight)),
            ("submitted", JsonValue::from(self.submitted)),
            ("completed", JsonValue::from(self.completed)),
            ("shed", JsonValue::from(self.shed)),
            ("shed_infeasible", JsonValue::from(self.shed_infeasible)),
            ("deferrals", JsonValue::from(self.deferrals)),
            ("rejected", JsonValue::from(self.rejected)),
            ("max_queue_depth", JsonValue::from(self.max_queue_depth)),
            ("latency_seconds", self.latency.to_json()),
            ("wait_seconds", self.wait.to_json()),
            ("slo_jobs", JsonValue::from(self.slo_jobs)),
            ("slo_misses", JsonValue::from(self.slo_misses)),
            ("slo_miss_rate", JsonValue::from(self.slo_miss_rate())),
            ("lateness_seconds", self.lateness.to_json()),
            ("service_seconds", JsonValue::from(self.service_seconds)),
            ("normalized_share", JsonValue::from(self.normalized_share())),
        ])
    }
}

impl QpuStats {
    /// The device's statistics as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("qpu", JsonValue::from(self.qpu)),
            ("jobs", JsonValue::from(self.jobs)),
            ("utilization", JsonValue::from(self.utilization)),
            ("warm_hits", JsonValue::from(self.warm_hits)),
            ("cold_misses", JsonValue::from(self.cold_misses)),
            ("warm_topologies", JsonValue::from(self.warm_topologies)),
            ("evictions", JsonValue::from(self.evictions)),
            ("cache_bypassed", JsonValue::from(self.cache_bypassed)),
            (
                "cache_capacity",
                match self.cache_capacity {
                    Some(cap) => JsonValue::from(cap),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

impl SimReport {
    /// The run's aggregate outcome as a JSON object: headline counts,
    /// latency/wait summaries, per-stage breakdown, per-device and
    /// per-tenant statistics and the fairness indices.  Per-job records,
    /// the event trace and the queue-depth series are deliberately omitted
    /// (they dominate the size and sweeps don't consume them).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("policy", JsonValue::from(self.policy.as_str())),
            ("admission", JsonValue::from(self.admission.as_str())),
            ("jobs", JsonValue::from(self.jobs)),
            ("events", JsonValue::from(self.events)),
            ("completed", JsonValue::from(self.completed)),
            ("shed", JsonValue::from(self.shed)),
            ("shed_infeasible", JsonValue::from(self.shed_infeasible)),
            ("deferrals", JsonValue::from(self.deferrals)),
            ("rejected", JsonValue::from(self.rejected)),
            ("makespan_seconds", JsonValue::from(self.makespan_seconds)),
            ("latency_seconds", self.latency.to_json()),
            ("wait_seconds", self.wait.to_json()),
            ("slo_jobs", JsonValue::from(self.slo_jobs())),
            ("slo_misses", JsonValue::from(self.slo_misses())),
            ("slo_miss_rate", JsonValue::from(self.slo_miss_rate())),
            ("lateness_seconds", self.lateness.to_json()),
            ("stage1_seconds", JsonValue::from(self.stage1_seconds)),
            ("stage2_seconds", JsonValue::from(self.stage2_seconds)),
            ("stage3_seconds", JsonValue::from(self.stage3_seconds)),
            ("stage1_fraction", JsonValue::from(self.stage1_fraction())),
            ("warm_hits", JsonValue::from(self.warm_hits())),
            ("cold_misses", JsonValue::from(self.cold_misses())),
            ("evictions", JsonValue::from(self.evictions())),
            ("hit_rate", JsonValue::from(self.hit_rate())),
            ("max_queue_depth", JsonValue::from(self.max_queue_depth())),
            (
                "jains_fairness_index",
                JsonValue::from(self.jains_fairness_index()),
            ),
            ("max_min_share", JsonValue::from(self.max_min_share())),
            (
                "per_qpu",
                JsonValue::array(self.per_qpu.iter().map(|q| q.to_json())),
            ),
            (
                "per_tenant",
                JsonValue::array(self.per_tenant.iter().map(|t| t.to_json())),
            ),
        ])
    }
}

impl TraceRecord {
    /// The record as a flat JSON object (one JSONL line of the streaming
    /// trace sink): virtual time under `"t"`, discriminant under `"kind"`.
    pub fn to_json(&self) -> JsonValue {
        match *self {
            TraceRecord::Fired(event) => {
                let mut obj = JsonValue::object([
                    ("t", JsonValue::from(event.time)),
                    ("kind", JsonValue::from("fired")),
                    ("seq", JsonValue::from(event.seq as f64)),
                ]);
                match event.kind {
                    EventKind::JobArrival { job } => {
                        obj.push("event", JsonValue::from("arrival"));
                        obj.push("job", JsonValue::from(job));
                    }
                    EventKind::JobCompletion { qpu, job } => {
                        obj.push("event", JsonValue::from("completion"));
                        obj.push("job", JsonValue::from(job));
                        obj.push("qpu", JsonValue::from(qpu));
                    }
                }
                obj
            }
            TraceRecord::Dispatched {
                time,
                job,
                qpu,
                tenant,
                warm,
                finish,
                stage1_seconds,
                stage2_seconds,
                stage3_seconds,
            } => JsonValue::object([
                ("t", JsonValue::from(time)),
                ("kind", JsonValue::from("dispatched")),
                ("job", JsonValue::from(job)),
                ("qpu", JsonValue::from(qpu)),
                ("tenant", JsonValue::from(tenant.index())),
                ("warm", JsonValue::from(warm)),
                ("finish", JsonValue::from(finish)),
                ("stage1_seconds", JsonValue::from(stage1_seconds)),
                ("stage2_seconds", JsonValue::from(stage2_seconds)),
                ("stage3_seconds", JsonValue::from(stage3_seconds)),
            ]),
            TraceRecord::Rejected { time, job } => JsonValue::object([
                ("t", JsonValue::from(time)),
                ("kind", JsonValue::from("rejected")),
                ("job", JsonValue::from(job)),
            ]),
            TraceRecord::Shed {
                time,
                job,
                tenant,
                infeasible,
            } => JsonValue::object([
                ("t", JsonValue::from(time)),
                ("kind", JsonValue::from("shed")),
                ("job", JsonValue::from(job)),
                ("tenant", JsonValue::from(tenant.index())),
                ("infeasible", JsonValue::from(infeasible)),
            ]),
            TraceRecord::Deferred { time, job, until } => JsonValue::object([
                ("t", JsonValue::from(time)),
                ("kind", JsonValue::from("deferred")),
                ("job", JsonValue::from(job)),
                ("until", JsonValue::from(until)),
            ]),
        }
    }
}

/// Error from [`parse`]: where in the input (character offset) and what
/// went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Character offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth beyond which [`parse`] refuses to recurse (a corrupt or
/// adversarial input must not overflow the stack).
const MAX_DEPTH: usize = 256;

/// Parse an RFC 8259 JSON document into a [`JsonValue`].
///
/// Full grammar: objects, arrays, strings with every escape form
/// (including `\u` surrogate-pair escapes), numbers, literals.  The whole
/// input must be one JSON value — trailing non-whitespace is an error.
///
/// ```
/// use sx_cluster::json::{parse, JsonValue};
///
/// let value = parse(r#"{"jobs": 3, "warm": true, "names": ["aA"]}"#).unwrap();
/// assert_eq!(value.get("jobs"), Some(&JsonValue::Num(3.0)));
/// assert_eq!(value.get("names"), Some(&JsonValue::array([JsonValue::from("aA")])));
/// ```
///
/// # Errors
/// Returns a [`ParseError`] with the character offset of the first
/// violation.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let chars: Vec<char> = input.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, want: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(ParseError {
                offset: self.pos - 1,
                message: format!("expected '{want}', found '{c}'"),
            }),
            None => Err(self.error(&format!("expected '{want}', found end of input"))),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        for want in word.chars() {
            match self.bump() {
                Some(c) if c == want => {}
                _ => {
                    return Err(ParseError {
                        offset: self.pos.saturating_sub(1),
                        message: format!("invalid literal (expected \"{word}\")"),
                    })
                }
            }
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some('n') => self.literal("null", JsonValue::Null),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('"') => self.string().map(JsonValue::Str),
            Some('[') => self.array(depth),
            Some('{') => self.object(depth),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character '{c}'"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.consume('[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Array(values));
        }
        loop {
            self.skip_ws();
            values.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(JsonValue::Array(values)),
                Some(c) => {
                    return Err(ParseError {
                        offset: self.pos - 1,
                        message: format!("expected ',' or ']' in array, found '{c}'"),
                    })
                }
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.consume('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(JsonValue::Object(pairs)),
                Some(c) => {
                    return Err(ParseError {
                        offset: self.pos - 1,
                        message: format!("expected ',' or '}}' in object, found '{c}'"),
                    })
                }
                None => return Err(self.error("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let unit = self.hex4()?;
                        let code = if (0xD800..=0xDBFF).contains(&unit) {
                            // High surrogate: a low surrogate must follow.
                            if self.bump() != Some('\\') || self.bump() != Some('u') {
                                return Err(self.error("high surrogate without \\u pair"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..=0xDFFF).contains(&unit) {
                            return Err(self.error("unpaired low surrogate"));
                        } else {
                            unit
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    Some(c) => {
                        return Err(ParseError {
                            offset: self.pos - 1,
                            message: format!("invalid escape '\\{c}'"),
                        })
                    }
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(ParseError {
                        offset: self.pos - 1,
                        message: "unescaped control character in string".to_string(),
                    })
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            match self.bump().and_then(|c| c.to_digit(16)) {
                Some(d) => value = value * 16 + d,
                None => return Err(self.error("invalid \\u escape (want 4 hex digits)")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => Err(ParseError {
                offset: start,
                message: format!("invalid number \"{text}\""),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::from(3usize).to_string(), "3");
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut obj = JsonValue::object([("zebra", JsonValue::from(1.0))]);
        obj.push("alpha", JsonValue::array([JsonValue::from(2.0)]));
        assert_eq!(obj.to_string(), r#"{"zebra":1,"alpha":[2]}"#);
        assert_eq!(obj.get("alpha"), Some(&JsonValue::array([2.0.into()])));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn report_exports_headline_and_tenants() {
        use crate::prelude::*;
        use split_exec::SplitExecConfig;

        let workload =
            crate::tenant::MultiTenantSpec::aggressor_victim(5, 0.5, 2.0, 1.0, 3).generate();
        let fleet = Fleet::new(
            FleetConfig {
                qpus: 2,
                seed: 3,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(3),
        );
        let mut policy = PolicyKind::WeightedFair.build();
        let report = simulate(fleet, &workload, policy.as_mut(), SimConfig::default());
        let json = report.to_json();
        assert_eq!(json.get("policy"), Some(&JsonValue::from("wfq")));
        assert_eq!(json.get("jobs"), Some(&JsonValue::from(report.jobs)));
        match json.get("per_tenant") {
            Some(JsonValue::Array(tenants)) => {
                assert_eq!(tenants.len(), 2);
                assert_eq!(tenants[0].get("name"), Some(&JsonValue::from("victim")));
            }
            other => panic!("per_tenant should be an array, got {other:?}"),
        }
        // The rendered text is balanced and mentions the fairness index.
        let text = json.to_string();
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces"
        );
        assert!(text.contains("\"jains_fairness_index\""));
        assert!(text.contains("\"events\""));
        // Every emitted document must survive the real parser round-trip:
        // the renderer prints shortest-roundtrip floats, so parse(render(x))
        // reproduces the tree exactly.
        assert_eq!(parse(&text), Ok(json));
    }

    #[test]
    fn parser_accepts_the_grammar() {
        assert_eq!(parse("null"), Ok(JsonValue::Null));
        assert_eq!(parse(" true "), Ok(JsonValue::Bool(true)));
        assert_eq!(parse("false"), Ok(JsonValue::Bool(false)));
        assert_eq!(parse("-12.5e2"), Ok(JsonValue::Num(-1250.0)));
        assert_eq!(parse("0.125"), Ok(JsonValue::Num(0.125)));
        assert_eq!(parse("[]"), Ok(JsonValue::Array(vec![])));
        assert_eq!(parse("{}"), Ok(JsonValue::Object(vec![])));
        assert_eq!(
            parse(r#"[1, [2, {"a": 3}], "b"]"#),
            Ok(JsonValue::array([
                JsonValue::Num(1.0),
                JsonValue::array([
                    JsonValue::Num(2.0),
                    JsonValue::object([("a", JsonValue::Num(3.0))]),
                ]),
                JsonValue::from("b"),
            ]))
        );
    }

    #[test]
    fn parser_handles_string_escapes() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\nd\\te\\/f\\u0001\""),
            Ok(JsonValue::from("a\"b\\c\nd\te/f\u{0001}"))
        );
        // Surrogate-pair escape: U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\""),
            Ok(JsonValue::from("\u{1F600}"))
        );
        // Non-ASCII passes through unescaped.
        assert_eq!(parse("\"h\u{e9}llo\""), Ok(JsonValue::from("h\u{e9}llo")));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud83d alone\"",
            "1 2",
            "[1] trailing",
            "{1: 2}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        let err = parse("[1, @]").expect_err("malformed");
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("offset 4"));
    }

    #[test]
    fn parser_bounds_recursion_depth() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err(), "must refuse instead of overflowing");
    }

    #[test]
    fn trace_records_roundtrip_through_jsonl_objects() {
        use crate::event::Event;
        use crate::tenant::TenantId;

        let records = [
            TraceRecord::Fired(Event {
                time: 1.25,
                seq: 9,
                kind: EventKind::JobCompletion { qpu: 2, job: 4 },
            }),
            TraceRecord::Dispatched {
                time: 1.5,
                job: 4,
                qpu: 2,
                tenant: TenantId(1),
                warm: true,
                finish: 2.0,
                stage1_seconds: 0.3,
                stage2_seconds: 0.15,
                stage3_seconds: 0.05,
            },
        ];
        for record in records {
            let json = record.to_json();
            let text = json.to_string();
            assert_eq!(parse(&text), Ok(json), "JSONL line must round-trip");
        }
    }
}
