//! Tenants: who owns each job, and how a shared fleet is composed.
//!
//! The paper models one machine serving one user; the ROADMAP's target is a
//! datacenter serving *millions* — and a shared QPU fleet is multi-tenant.
//! Without tenancy the simulator optimizes aggregate latency only, so one
//! bursty tenant can monopolize the fleet and every other tenant's p99
//! collapses.  This module makes tenancy first-class:
//!
//! * [`TenantId`] — every [`Job`] carries one; plain
//!   single-tenant workloads use [`TenantId::DEFAULT`].
//! * [`TenantMeta`] — the per-tenant identity a [`Workload`] carries along:
//!   name and fair-share weight, consumed by the metrics layer and the
//!   weighted-fair scheduler.
//! * [`TenantSpec`] / [`MultiTenantSpec`] — the multi-tenant composition of
//!   [`WorkloadSpec`]: N tenants, each with its own arrival process,
//!   topology mix and weight, merged into one deterministic job stream.
//!
//! The [`MultiTenantSpec::aggressor_victim`] constructor builds the
//! canonical fairness scenario (one well-behaved tenant, one flooding it at
//! a configurable arrival asymmetry) shared by the `cluster_sim --mode
//! fairness` sweep, the integration tests and the proptests.

use crate::job::Job;
use crate::workload::{
    ArrivalProcess, DeadlinePolicy, FamilySpec, Workload, WorkloadError, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

/// Identity of the tenant that submitted a job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub usize);

impl TenantId {
    /// The implicit tenant of single-tenant workloads.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The tenant's index (also its lane in the weighted-fair scheduler).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Per-tenant identity carried by a generated [`Workload`]: what the
/// metrics layer and the weighted-fair scheduler need to know about a
/// tenant without re-deriving it from the job stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMeta {
    /// The tenant's id (index into the composition).
    pub id: TenantId,
    /// Human-readable label used in reports.
    pub name: String,
    /// Fair-share weight (relative; need not be normalized).
    pub weight: f64,
}

impl TenantMeta {
    /// The implicit tenant of single-tenant workloads: weight 1.
    pub fn single() -> Self {
        Self {
            id: TenantId::DEFAULT,
            name: "default".to_string(),
            weight: 1.0,
        }
    }
}

/// One tenant's contribution to a multi-tenant workload: its own job
/// count, arrival process and topology mix, plus a fair-share weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Human-readable label used in reports.
    pub name: String,
    /// Fair-share weight (must be positive and finite).
    pub weight: f64,
    /// Number of jobs this tenant submits.
    pub jobs: usize,
    /// The tenant's own arrival process.
    pub arrivals: ArrivalProcess,
    /// The tenant's own `(weight, family)` topology mix.
    pub mix: Vec<(f64, FamilySpec)>,
    /// How this tenant's jobs are stamped with completion deadlines
    /// ([`DeadlinePolicy::None`] = the tenant has no SLO).  Policies are
    /// per-tenant: a latency-sensitive tenant can run tight proportional
    /// slack while a batch tenant runs deadline-free in the same stream.
    pub deadlines: DeadlinePolicy,
}

/// A multi-tenant workload composition: N tenants, each generating its own
/// seeded stream, merged into one arrival-ordered job stream.
///
/// Generation is deterministic: tenant `i` draws from a sub-seed derived
/// from `seed` and `i`, so adding a tenant never perturbs the streams of
/// the others.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantSpec {
    /// Base seed; tenant `i` uses a sub-seed derived from `seed` and `i`.
    pub seed: u64,
    /// The tenants, in id order.
    pub tenants: Vec<TenantSpec>,
}

impl MultiTenantSpec {
    /// The canonical fairness scenario: a well-behaved *victim* tenant
    /// (id 0) plus an *aggressor* tenant (id 1) arriving `asymmetry` times
    /// faster with `asymmetry` times as many jobs.  `victim_weight` is the
    /// victim's fair-share weight relative to the aggressor's 1.0.
    ///
    /// The victim re-solves a small repeated-topology mix (its embeddings
    /// warm quickly, so its isolated-run latency is low and stable).  The
    /// aggressor is deliberately *cache-busting*: a diverse Gnp mix whose
    /// jobs mostly embed cold, so at high asymmetry it genuinely saturates
    /// the fleet's stage-1 capacity — the regime where FIFO lets the
    /// victim's p99 blow up and weighted fair queueing must not.
    ///
    /// ```
    /// use sx_cluster::prelude::*;
    ///
    /// // 10 victim jobs at 0.5 Hz; the aggressor submits 4x as many, 4x
    /// // as fast; the victim carries fair-share weight 2.0.
    /// let spec = MultiTenantSpec::aggressor_victim(10, 0.5, 4.0, 2.0, 7);
    /// let workload = spec.generate();
    ///
    /// assert_eq!(workload.jobs.len(), 50); // 10 victim + 40 aggressor
    /// assert_eq!(workload.weights(), vec![2.0, 1.0]);
    /// assert_eq!(workload.tenants[0].name, "victim");
    /// // Generation is a pure function of the spec.
    /// assert_eq!(workload, spec.generate());
    /// ```
    pub fn aggressor_victim(
        victim_jobs: usize,
        victim_rate_hz: f64,
        asymmetry: f64,
        victim_weight: f64,
        seed: u64,
    ) -> Self {
        Self {
            seed,
            tenants: vec![
                TenantSpec {
                    name: "victim".to_string(),
                    weight: victim_weight,
                    jobs: victim_jobs,
                    arrivals: ArrivalProcess::Poisson {
                        rate_hz: victim_rate_hz,
                    },
                    mix: vec![(
                        1.0,
                        FamilySpec::MaxCutCycle {
                            sizes: vec![16, 20],
                        },
                    )],
                    deadlines: DeadlinePolicy::None,
                },
                TenantSpec {
                    name: "aggressor".to_string(),
                    weight: 1.0,
                    jobs: ((victim_jobs as f64) * asymmetry).round() as usize,
                    arrivals: ArrivalProcess::Poisson {
                        rate_hz: victim_rate_hz * asymmetry,
                    },
                    mix: vec![(
                        1.0,
                        FamilySpec::MaxCutGnp {
                            n: 24,
                            p: 0.3,
                            variants: 24,
                        },
                    )],
                    deadlines: DeadlinePolicy::None,
                },
            ],
        }
    }

    /// The same composition with every tenant's jobs stamped by `deadlines`
    /// — the one-liner for turning a fairness scenario into an SLO scenario.
    /// Set [`TenantSpec::deadlines`] directly for per-tenant policies.
    pub fn with_uniform_deadlines(mut self, deadlines: DeadlinePolicy) -> Self {
        for tenant in &mut self.tenants {
            tenant.deadlines = deadlines;
        }
        self
    }

    /// The per-tenant fair-share weights, indexed by tenant id.
    pub fn weights(&self) -> Vec<f64> {
        self.tenants.iter().map(|t| t.weight).collect()
    }

    /// Check the composition: at least one tenant, positive finite weights,
    /// and every per-tenant stream valid under the single-tenant rules.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.tenants.is_empty() {
            return Err(WorkloadError::NoTenants);
        }
        for (index, tenant) in self.tenants.iter().enumerate() {
            if !(tenant.weight.is_finite() && tenant.weight > 0.0) {
                return Err(WorkloadError::InvalidTenantWeight {
                    tenant: tenant.name.clone(),
                    weight: tenant.weight,
                });
            }
            self.tenant_spec(index).validate()?;
        }
        Ok(())
    }

    /// Generate the merged job stream, rejecting invalid compositions with
    /// a [`WorkloadError`] instead of panicking mid-generation.
    pub fn try_generate(&self) -> Result<Workload, WorkloadError> {
        self.validate()?;
        let mut jobs: Vec<Job> = Vec::new();
        for index in 0..self.tenants.len() {
            let stream = self.tenant_spec(index).generate_unchecked_jobs();
            jobs.extend(stream.into_iter().map(|mut job| {
                job.tenant = TenantId(index);
                job
            }));
        }
        // Merge by arrival; ties broken by tenant then per-tenant order, so
        // the merge — like everything else — is a pure function of the spec.
        jobs.sort_by(|a, b| {
            a.arrival
                .total_cmp(&b.arrival)
                .then(a.tenant.cmp(&b.tenant))
                .then(a.id.cmp(&b.id))
        });
        for (id, job) in jobs.iter_mut().enumerate() {
            job.id = id;
        }
        Ok(Workload {
            jobs,
            tenants: self
                .tenants
                .iter()
                .enumerate()
                .map(|(index, tenant)| TenantMeta {
                    id: TenantId(index),
                    name: tenant.name.clone(),
                    weight: tenant.weight,
                })
                .collect(),
        })
    }

    /// Generate the merged job stream.
    ///
    /// # Panics
    /// Panics on an invalid composition; use [`Self::try_generate`] for the
    /// validation error instead.
    pub fn generate(&self) -> Workload {
        self.try_generate()
            .unwrap_or_else(|err| panic!("invalid multi-tenant spec: {err}"))
    }

    /// The single-tenant [`WorkloadSpec`] of the stream of tenant `index`.
    /// The sub-seed mixes in the position, so two tenants with identical
    /// specs still draw distinct streams.
    fn tenant_spec(&self, index: usize) -> WorkloadSpec {
        let tenant = &self.tenants[index];
        WorkloadSpec {
            jobs: tenant.jobs,
            seed: self
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
            arrivals: tenant.arrivals,
            mix: tenant.mix.clone(),
            deadlines: tenant.deadlines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants(seed: u64) -> MultiTenantSpec {
        MultiTenantSpec::aggressor_victim(10, 0.5, 4.0, 1.0, seed)
    }

    #[test]
    fn tenant_ids_display_and_order() {
        assert_eq!(TenantId(3).to_string(), "t3");
        assert_eq!(TenantId::DEFAULT, TenantId(0));
        assert!(TenantId(1) < TenantId(2));
        assert_eq!(TenantId(5).index(), 5);
    }

    #[test]
    fn generation_merges_streams_in_arrival_order() {
        let w = two_tenants(7).generate();
        assert_eq!(w.jobs.len(), 50);
        assert_eq!(w.tenants.len(), 2);
        assert!(w.jobs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        for (i, job) in w.jobs.iter().enumerate() {
            assert_eq!(job.id, i);
        }
        // Both tenants are present, at roughly the configured 4:1 split.
        let victim = w.jobs.iter().filter(|j| j.tenant == TenantId(0)).count();
        let aggressor = w.jobs.iter().filter(|j| j.tenant == TenantId(1)).count();
        assert_eq!(victim, 10);
        assert_eq!(aggressor, 40);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = two_tenants(9).generate();
        let b = two_tenants(9).generate();
        assert_eq!(a, b);
        let c = two_tenants(10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn tenants_draw_disjoint_topology_sets() {
        let w = two_tenants(3).generate();
        let keys = |id: usize| -> std::collections::HashSet<u64> {
            w.jobs
                .iter()
                .filter(|j| j.tenant == TenantId(id))
                .map(|j| j.topology_key)
                .collect()
        };
        assert!(keys(0).is_disjoint(&keys(1)));
    }

    #[test]
    fn identical_tenant_specs_still_draw_distinct_streams() {
        let tenant = TenantSpec {
            name: "clone".to_string(),
            weight: 1.0,
            jobs: 8,
            arrivals: ArrivalProcess::Poisson { rate_hz: 1.0 },
            mix: vec![(1.0, FamilySpec::Partition { n: 12 })],
            deadlines: DeadlinePolicy::None,
        };
        let spec = MultiTenantSpec {
            seed: 5,
            tenants: vec![tenant.clone(), tenant],
        };
        let w = spec.generate();
        let arrivals = |id: usize| -> Vec<f64> {
            w.jobs
                .iter()
                .filter(|j| j.tenant == TenantId(id))
                .map(|j| j.arrival)
                .collect()
        };
        assert_ne!(arrivals(0), arrivals(1));
    }

    #[test]
    fn invalid_compositions_are_rejected() {
        let empty = MultiTenantSpec {
            seed: 1,
            tenants: vec![],
        };
        assert_eq!(empty.try_generate().unwrap_err(), WorkloadError::NoTenants);

        for weight in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let mut spec = two_tenants(1);
            spec.tenants[0].weight = weight;
            assert!(
                matches!(
                    spec.try_generate().unwrap_err(),
                    WorkloadError::InvalidTenantWeight { .. }
                ),
                "weight {weight} should be rejected"
            );
        }

        // Per-tenant streams go through the single-tenant validation.
        let mut spec = two_tenants(1);
        spec.tenants[1].mix = vec![(1.0, FamilySpec::MaxCutCycle { sizes: vec![] })];
        assert!(matches!(
            spec.try_generate().unwrap_err(),
            WorkloadError::DegenerateFamily { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "invalid multi-tenant spec")]
    fn generate_panics_with_the_validation_message() {
        MultiTenantSpec {
            seed: 0,
            tenants: vec![],
        }
        .generate();
    }

    #[test]
    fn per_tenant_deadline_policies_stamp_independently() {
        // Tenant 0 runs a tight fixed slack, tenant 1 stays deadline-free.
        let mut spec = two_tenants(5);
        spec.tenants[0].deadlines = DeadlinePolicy::FixedSlack { slack_seconds: 4.0 };
        let w = spec.generate();
        for job in &w.jobs {
            match job.tenant {
                TenantId(0) => {
                    let d = job.deadline.expect("victim jobs carry deadlines");
                    assert!((d - job.arrival - 4.0).abs() < 1e-12);
                }
                _ => assert!(job.deadline.is_none(), "aggressor must stay deadline-free"),
            }
        }
        // The uniform helper covers every tenant.
        let uniform = two_tenants(5)
            .with_uniform_deadlines(DeadlinePolicy::ProportionalSlack { factor: 3.0 })
            .generate();
        assert_eq!(uniform.deadline_jobs(), uniform.jobs.len());
        // Deadline stamping does not perturb the arrival stream.
        let free = two_tenants(5).generate();
        let arrivals = |w: &Workload| w.jobs.iter().map(|j| j.arrival).collect::<Vec<f64>>();
        assert_eq!(arrivals(&free), arrivals(&uniform));
    }

    #[test]
    fn invalid_deadline_policies_are_rejected_per_tenant() {
        let mut spec = two_tenants(2);
        spec.tenants[1].deadlines = DeadlinePolicy::FixedSlack {
            slack_seconds: -3.0,
        };
        assert!(matches!(
            spec.try_generate().unwrap_err(),
            WorkloadError::InvalidDeadlinePolicy { .. }
        ));
    }

    #[test]
    fn weights_follow_the_composition() {
        let spec = MultiTenantSpec::aggressor_victim(5, 0.5, 10.0, 4.0, 2);
        assert_eq!(spec.weights(), vec![4.0, 1.0]);
        let w = spec.generate();
        assert_eq!(w.tenants[0].name, "victim");
        assert_eq!(w.tenants[0].weight, 4.0);
        assert_eq!(w.tenants[1].name, "aggressor");
        assert_eq!(w.tenants[1].weight, 1.0);
    }
}
