//! The fleet: a rack of simulated QPUs, each with its own fault map.
//!
//! Real annealers ship with fabrication faults (Sec. 2.2 of the paper), and
//! no two devices fault identically — so in a fleet, the *same* job costs
//! different amounts on different devices, and an embedding computed for one
//! device does not transfer to another (its chains reference that device's
//! qubits).  Each [`QpuDevice`] therefore carries:
//!
//! * a [`SplitMachine`] whose hardware graph has a per-device
//!   [`chimera_graph::FaultModel`] applied — and, in a *heterogeneous*
//!   fleet, a per-device QPU generation ([`QpuModel::Vesuvius`] vs
//!   [`QpuModel::Dw2x`]), so capacity and stage costs genuinely differ
//!   across the rack,
//! * a per-device [`CostModel`] serving the paper's analytic stage costs,
//! * a per-device *warm set* — the interaction topologies whose embeddings
//!   this device has already computed, held in a **bounded**
//!   [`WarmCache`] with pluggable eviction
//!   ([`crate::cache::EvictionPolicy`]); finite embedding-table capacity is
//!   what produces the hit-rate cliff the `cache_cliff` sweep measures,
//! * a capacity bound and a fault-difficulty factor derived from the yield.
//!
//! The capacity bound uses the clique-minor fact that pristine
//! `C(M, N, 4)` Chimera embeds `K_{4·min(M,N)+1}`, degraded linearly by the
//! qubit yield; the difficulty factor charges embedding on a faulted lattice
//! `1/yield³` of the pristine cost (fewer usable qubits ⇒ more CMR passes).
//! Both are modeling assumptions of the simulator, not measurements — they
//! are deliberately simple and deterministic.

use serde::{Deserialize, Serialize};
use split_exec::cost::{CostModel, StageCosts};
use split_exec::{PipelineError, QpuModel, SplitExecConfig, SplitMachine};

use crate::cache::{AdmissionPolicy, EvictionPolicyKind, WarmCache};
use chimera_graph::FaultModel;

/// Configuration of a simulated fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of QPUs in the fleet.
    pub qpus: usize,
    /// Default QPU generation for devices not covered by [`Self::models`].
    pub qpu_model: QpuModel,
    /// Per-device QPU generations: device `i` installs `models[i % len]`.
    /// Empty means a uniform fleet of [`Self::qpu_model`].
    pub models: Vec<QpuModel>,
    /// Embedding-table capacity per device — how many distinct topologies a
    /// device can keep warm at once.  `None` reproduces the unbounded
    /// caches of earlier revisions.
    pub cache_capacity: Option<usize>,
    /// Eviction policy used when a device's warm cache is full.
    pub eviction: EvictionPolicyKind,
    /// Cache admission policy: whether a cold embedding is cached on its
    /// first occurrence or only on its second
    /// ([`AdmissionPolicy::SecondChance`] doorkeeper).
    pub cache_admission: AdmissionPolicy,
    /// Per-qubit fault probability for each device's fault draw.
    pub qubit_fault_rate: f64,
    /// Per-coupler fault probability.
    pub coupler_fault_rate: f64,
    /// Base seed; device `i` draws its faults with `seed + i`.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            qpus: 4,
            qpu_model: QpuModel::Dw2x,
            models: Vec::new(),
            cache_capacity: None,
            eviction: EvictionPolicyKind::Lru,
            cache_admission: AdmissionPolicy::Always,
            qubit_fault_rate: 0.02,
            coupler_fault_rate: 0.01,
            seed: 0,
        }
    }
}

impl FleetConfig {
    /// A mixed-generation rack: devices alternate DW2X- and Vesuvius-class
    /// hardware, so capacity and per-stage timing differ across the fleet.
    pub fn heterogeneous(qpus: usize, seed: u64) -> Self {
        Self {
            qpus,
            models: vec![QpuModel::Dw2x, QpuModel::Vesuvius],
            seed,
            ..Self::default()
        }
    }

    /// Bound every device's warm cache at `capacity` topologies under the
    /// given eviction policy.
    pub fn with_cache(mut self, capacity: usize, eviction: EvictionPolicyKind) -> Self {
        self.cache_capacity = Some(capacity);
        self.eviction = eviction;
        self
    }

    /// Gate every device's cache insertions behind `admission`.
    pub fn with_cache_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.cache_admission = admission;
        self
    }

    /// The QPU generation installed in device `id`.
    pub fn device_model(&self, id: usize) -> QpuModel {
        if self.models.is_empty() {
            self.qpu_model
        } else {
            self.models[id % self.models.len()]
        }
    }

    /// Whether the fleet mixes QPU generations.
    pub fn is_heterogeneous(&self) -> bool {
        (0..self.qpus)
            .map(|id| self.device_model(id))
            .any(|m| m != self.device_model(0))
    }
}

/// One simulated QPU: hardware model, cost oracle, warm-embedding cache and
/// runtime occupancy.
#[derive(Debug)]
pub struct QpuDevice {
    /// Fleet-wide device index.
    pub id: usize,
    /// The device's machine model (hardware graph carries this device's
    /// faults; `machine.qpu` is this device's generation).
    pub machine: SplitMachine,
    /// Analytic per-stage cost oracle for this device.
    pub cost: CostModel,
    /// Largest logical problem size this device can embed.
    pub capacity_lps: usize,
    /// Multiplier on the embedding cost reflecting fault-induced difficulty
    /// (1.0 for a pristine device).
    pub fault_difficulty: f64,
    /// Bounded warm set: topologies whose embeddings this device holds.
    warm: WarmCache,
    /// When the device becomes idle (virtual seconds); `<= now` means idle.
    pub busy_until: f64,
    /// Total busy seconds accumulated.
    pub busy_seconds: f64,
    /// Jobs served.
    pub jobs_served: usize,
    /// Jobs served with a warm embedding.
    pub warm_hits: usize,
    /// Jobs that had to embed cold.
    pub cold_misses: usize,
}

impl QpuDevice {
    /// Build device `id` from the fleet configuration.
    fn new(id: usize, config: &FleetConfig, app: &SplitExecConfig) -> Self {
        let model = config.device_model(id);
        let (m, n, l) = model.lattice();
        let pristine = chimera_graph::Chimera::new(m, n, l);
        let faults = FaultModel::random(
            pristine.graph(),
            config.qubit_fault_rate,
            config.coupler_fault_rate,
            config.seed.wrapping_add(id as u64),
        );
        let machine = SplitMachine::with_faults(model, faults);
        let yield_fraction = machine.usable_qubits() as f64 / machine.chimera.qubit_count() as f64;
        let pristine_clique = 4 * m.min(n) + 1;
        let capacity_lps = ((pristine_clique as f64) * yield_fraction).floor() as usize;
        let fault_difficulty = (1.0 / yield_fraction.powi(3)).max(1.0);
        let cost = CostModel::new(machine.clone(), *app);
        Self {
            id,
            machine,
            cost,
            capacity_lps,
            fault_difficulty,
            warm: WarmCache::new(config.cache_capacity, config.eviction)
                .with_admission(config.cache_admission),
            busy_until: 0.0,
            busy_seconds: 0.0,
            jobs_served: 0,
            warm_hits: 0,
            cold_misses: 0,
        }
    }

    /// The QPU generation installed in this device.
    pub fn model(&self) -> QpuModel {
        self.machine.qpu
    }

    /// Whether a logical problem of `lps` spins fits this device.
    pub fn can_run(&self, lps: usize) -> bool {
        lps <= self.capacity_lps
    }

    /// Whether this device currently holds an embedding for `topology_key`.
    pub fn is_warm(&self, topology_key: u64) -> bool {
        self.warm.contains(topology_key)
    }

    /// Number of distinct topologies currently resident in this device's
    /// warm cache.
    pub fn warm_topologies(&self) -> usize {
        self.warm.len()
    }

    /// Embeddings this device has evicted to stay within its capacity.
    pub fn evictions(&self) -> usize {
        self.warm.evictions()
    }

    /// Cold embeddings the cache-admission doorkeeper declined to cache.
    pub fn cache_bypassed(&self) -> usize {
        self.warm.bypassed()
    }

    /// The device's warm-cache capacity (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.warm.capacity()
    }

    /// Whether the device is idle at virtual time `now`.
    pub fn is_idle(&self, now: f64) -> bool {
        self.busy_until <= now
    }

    /// Predicted seconds to (re-)embed a topology of `lps` spins on this
    /// device: the amortizable stage-1 share scaled by fault difficulty.
    /// This is the value the cost-aware eviction policy protects.
    pub fn reembed_seconds(&self, lps: usize) -> f64 {
        self.cost
            .embed_seconds(lps)
            .map(|embed| embed * self.fault_difficulty)
            .unwrap_or(0.0)
    }

    /// Per-stage service seconds this device would charge a job of `lps`
    /// spins with the given cache state (cold embedding scaled by the
    /// fault-difficulty factor).
    pub fn service_breakdown(
        &self,
        lps: usize,
        warm: bool,
    ) -> Result<(f64, f64, f64), PipelineError> {
        let costs: StageCosts = self.cost.costs(lps)?;
        let stage1 = if warm {
            costs.stage1_warm_seconds()
        } else {
            costs.stage1_warm_seconds() + costs.stage1_embed_seconds * self.fault_difficulty
        };
        Ok((stage1, costs.stage2_seconds, costs.stage3_seconds))
    }

    /// Predicted total service seconds for a job of `lps` spins, accounting
    /// for this device's current cache state — the oracle the
    /// shortest-predicted-job-first and affinity schedulers consult.
    pub fn predicted_service_seconds(
        &self,
        lps: usize,
        topology_key: u64,
    ) -> Result<f64, PipelineError> {
        let (s1, s2, s3) = self.service_breakdown(lps, self.is_warm(topology_key))?;
        Ok(s1 + s2 + s3)
    }

    /// Record a warm hit: refresh the topology's recency so LRU ordering
    /// reflects use, not just insertion.
    pub(crate) fn touch_warm(&mut self, topology_key: u64) {
        self.warm.touch(topology_key);
    }

    /// Record that this device computed (and cached) an embedding for
    /// `topology_key` of `lps` spins, evicting a resident topology if the
    /// cache is at capacity.  Returns the evicted key, if any.
    pub(crate) fn mark_warm(&mut self, topology_key: u64, lps: usize) -> Option<u64> {
        let reembed = self.reembed_seconds(lps);
        // sx-lint: allow(A001) -- delegates to WarmCache::insert, whose buffers are pre-sized to the cache capacity in cache.rs
        self.warm.insert(topology_key, lps, reembed)
    }
}

/// The fleet: all devices plus shared application configuration.
#[derive(Debug)]
pub struct Fleet {
    /// The devices, indexed by id.
    pub devices: Vec<QpuDevice>,
    /// The application configuration shared by all devices.
    pub app_config: SplitExecConfig,
}

impl Fleet {
    /// Build a fleet, drawing each device's faults deterministically from
    /// the configured seed.
    pub fn new(config: FleetConfig, app_config: SplitExecConfig) -> Self {
        assert!(config.qpus > 0, "a fleet needs at least one QPU");
        let devices = (0..config.qpus)
            .map(|id| QpuDevice::new(id, &config, &app_config))
            .collect();
        Self {
            devices,
            app_config,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Ids of devices idle at virtual time `now`, in id order.
    pub fn idle_devices(&self, now: f64) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|d| d.is_idle(now))
            .map(|d| d.id)
            .collect()
    }

    /// The largest problem size any device in the fleet can embed.
    pub fn max_capacity_lps(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.capacity_lps)
            .max()
            .unwrap_or(0)
    }

    /// The costliest *cold* service any device would charge a job of
    /// `lps` spins — the longest a single job of that size can pin a
    /// device (devices that cannot run or price the size contribute
    /// nothing; 0.0 when none can).
    ///
    /// This is the "worst pin" bound the deadline scenarios build on: a
    /// tenant whose slack comfortably exceeds the worst pin of the
    /// largest job in circulation is always feasible at admission time,
    /// so deadline-infeasibility shedding can never touch it.
    pub fn worst_cold_service_seconds(&self, lps: usize) -> f64 {
        self.devices
            .iter()
            .filter(|d| d.can_run(lps))
            .filter_map(|d| {
                let (s1, s2, s3) = d.service_breakdown(lps, false).ok()?;
                Some(s1 + s2 + s3)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(qpus: usize, rate: f64, seed: u64) -> Fleet {
        Fleet::new(
            FleetConfig {
                qpus,
                qubit_fault_rate: rate,
                coupler_fault_rate: rate / 2.0,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        )
    }

    #[test]
    fn devices_draw_distinct_fault_maps() {
        let f = fleet(3, 0.05, 7);
        assert_eq!(f.len(), 3);
        let fault_sets: Vec<_> = f.devices.iter().map(|d| &d.machine.faults).collect();
        assert_ne!(fault_sets[0], fault_sets[1]);
        assert_ne!(fault_sets[1], fault_sets[2]);
        // Same seed rebuilds the same fleet.
        let g = fleet(3, 0.05, 7);
        for (a, b) in f.devices.iter().zip(&g.devices) {
            assert_eq!(a.machine.faults, b.machine.faults);
            assert_eq!(a.capacity_lps, b.capacity_lps);
        }
    }

    #[test]
    fn pristine_device_has_full_capacity_and_unit_difficulty() {
        let f = fleet(1, 0.0, 1);
        let d = &f.devices[0];
        // C(12,12,4) pristine: K_49 capacity, no difficulty penalty.
        assert_eq!(d.capacity_lps, 49);
        assert_eq!(d.fault_difficulty, 1.0);
        assert!(d.can_run(49));
        assert!(!d.can_run(50));
    }

    #[test]
    fn faults_reduce_capacity_and_raise_difficulty() {
        let faulty = fleet(1, 0.08, 3);
        let pristine = fleet(1, 0.0, 3);
        let d = &faulty.devices[0];
        assert!(d.capacity_lps < pristine.devices[0].capacity_lps);
        assert!(d.fault_difficulty > 1.0);
        // Stage-1 cold cost is dearer on the faulty device.
        let (cold_faulty, _, _) = d.service_breakdown(20, false).unwrap();
        let (cold_pristine, _, _) = pristine.devices[0].service_breakdown(20, false).unwrap();
        assert!(cold_faulty > cold_pristine);
        // Warm cost is identical — no embedding happens.
        let (warm_faulty, _, _) = d.service_breakdown(20, true).unwrap();
        let (warm_pristine, _, _) = pristine.devices[0].service_breakdown(20, true).unwrap();
        assert!((warm_faulty - warm_pristine).abs() < 1e-12);
    }

    #[test]
    fn warm_set_drives_predicted_service() {
        let mut f = fleet(1, 0.01, 5);
        let key = 0xDEADBEEF;
        let cold = f.devices[0].predicted_service_seconds(40, key).unwrap();
        f.devices[0].mark_warm(key, 40);
        assert!(f.devices[0].is_warm(key));
        let warm = f.devices[0].predicted_service_seconds(40, key).unwrap();
        assert!(
            warm < cold / 10.0,
            "warm {warm} should be far below cold {cold}"
        );
        assert_eq!(f.devices[0].warm_topologies(), 1);
    }

    #[test]
    fn bounded_device_cache_evicts_at_capacity() {
        let mut f = Fleet::new(
            FleetConfig {
                qpus: 1,
                qubit_fault_rate: 0.0,
                coupler_fault_rate: 0.0,
                seed: 1,
                ..FleetConfig::default()
            }
            .with_cache(2, EvictionPolicyKind::Lru),
            SplitExecConfig::with_seed(1),
        );
        let d = &mut f.devices[0];
        assert_eq!(d.cache_capacity(), Some(2));
        assert_eq!(d.mark_warm(1, 30), None);
        assert_eq!(d.mark_warm(2, 36), None);
        d.touch_warm(1);
        assert_eq!(d.mark_warm(3, 40), Some(2));
        assert_eq!(d.warm_topologies(), 2);
        assert_eq!(d.evictions(), 1);
        assert!(!d.is_warm(2));
        // An evicted topology predicts cold again.
        let re_cold = d.predicted_service_seconds(36, 2).unwrap();
        let warm = d.predicted_service_seconds(40, 3).unwrap();
        assert!(re_cold > 10.0 * warm);
    }

    #[test]
    fn cost_aware_device_cache_protects_large_topologies() {
        let mut f = Fleet::new(
            FleetConfig {
                qpus: 1,
                qubit_fault_rate: 0.0,
                coupler_fault_rate: 0.0,
                seed: 1,
                ..FleetConfig::default()
            }
            .with_cache(2, EvictionPolicyKind::CostAware),
            SplitExecConfig::with_seed(1),
        );
        let d = &mut f.devices[0];
        // Re-embed cost grows with lps, so the small topology is evicted
        // even though the large one is older.
        assert!(d.reembed_seconds(36) > d.reembed_seconds(8));
        d.mark_warm(1, 36);
        d.mark_warm(2, 8);
        assert_eq!(d.mark_warm(3, 20), Some(2));
        assert!(d.is_warm(1));
    }

    #[test]
    fn cache_admission_gate_wires_through_the_fleet_config() {
        let mut f = Fleet::new(
            FleetConfig {
                qpus: 1,
                qubit_fault_rate: 0.0,
                coupler_fault_rate: 0.0,
                seed: 1,
                ..FleetConfig::default()
            }
            .with_cache(4, EvictionPolicyKind::Lru)
            .with_cache_admission(AdmissionPolicy::SecondChance),
            SplitExecConfig::with_seed(1),
        );
        let d = &mut f.devices[0];
        d.mark_warm(7, 20);
        assert!(!d.is_warm(7), "doorkeeper must bypass the first occurrence");
        assert_eq!(d.cache_bypassed(), 1);
        d.mark_warm(7, 20);
        assert!(d.is_warm(7), "second occurrence must be cached");
    }

    #[test]
    fn heterogeneous_fleet_mixes_generations() {
        let config = FleetConfig::heterogeneous(4, 9);
        assert!(config.is_heterogeneous());
        assert_eq!(config.device_model(0), QpuModel::Dw2x);
        assert_eq!(config.device_model(1), QpuModel::Vesuvius);
        let f = Fleet::new(config, SplitExecConfig::with_seed(9));
        assert_eq!(f.devices[0].model(), QpuModel::Dw2x);
        assert_eq!(f.devices[1].model(), QpuModel::Vesuvius);
        // The Vesuvius device is smaller: lower embedding capacity...
        assert!(f.devices[1].capacity_lps < f.devices[0].capacity_lps);
        // ...and different stage-1 cost for the same job.
        let (s1_dw2x, _, _) = f.devices[0].service_breakdown(20, false).unwrap();
        let (s1_ves, _, _) = f.devices[1].service_breakdown(20, false).unwrap();
        assert_ne!(s1_dw2x, s1_ves);
        // A uniform fleet reports homogeneous.
        assert!(!FleetConfig::default().is_heterogeneous());
    }

    #[test]
    fn idle_tracking() {
        let mut f = fleet(2, 0.0, 1);
        assert_eq!(f.idle_devices(0.0), vec![0, 1]);
        f.devices[0].busy_until = 5.0;
        assert_eq!(f.idle_devices(1.0), vec![1]);
        assert_eq!(f.idle_devices(5.0), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one QPU")]
    fn empty_fleet_is_rejected() {
        Fleet::new(
            FleetConfig {
                qpus: 0,
                ..FleetConfig::default()
            },
            SplitExecConfig::default(),
        );
    }
}
