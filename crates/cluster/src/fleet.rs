//! The fleet: a rack of simulated QPUs, each with its own fault map.
//!
//! Real annealers ship with fabrication faults (Sec. 2.2 of the paper), and
//! no two devices fault identically — so in a fleet, the *same* job costs
//! different amounts on different devices, and an embedding computed for one
//! device does not transfer to another (its chains reference that device's
//! qubits).  Each [`QpuDevice`] therefore carries:
//!
//! * a [`SplitMachine`] whose hardware graph has a per-device
//!   [`chimera_graph::FaultModel`] applied,
//! * a per-device [`CostModel`] serving the paper's analytic stage costs,
//! * a per-device *warm set* — the interaction topologies whose embeddings
//!   this device has already computed (the simulator's stand-in for
//!   [`split_exec::EmbeddingCache`], keyed the same way),
//! * a capacity bound and a fault-difficulty factor derived from the yield.
//!
//! The capacity bound uses the clique-minor fact that pristine
//! `C(M, N, 4)` Chimera embeds `K_{4·min(M,N)+1}`, degraded linearly by the
//! qubit yield; the difficulty factor charges embedding on a faulted lattice
//! `1/yield³` of the pristine cost (fewer usable qubits ⇒ more CMR passes).
//! Both are modeling assumptions of the simulator, not measurements — they
//! are deliberately simple and deterministic.

use serde::{Deserialize, Serialize};
use split_exec::cost::{CostModel, StageCosts};
use split_exec::{PipelineError, QpuModel, SplitExecConfig, SplitMachine};
use std::collections::HashSet;

use chimera_graph::FaultModel;

/// Configuration of a simulated fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of QPUs in the fleet.
    pub qpus: usize,
    /// Installed QPU generation (shared across the fleet).
    pub qpu_model: QpuModel,
    /// Per-qubit fault probability for each device's fault draw.
    pub qubit_fault_rate: f64,
    /// Per-coupler fault probability.
    pub coupler_fault_rate: f64,
    /// Base seed; device `i` draws its faults with `seed + i`.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            qpus: 4,
            qpu_model: QpuModel::Dw2x,
            qubit_fault_rate: 0.02,
            coupler_fault_rate: 0.01,
            seed: 0,
        }
    }
}

/// One simulated QPU: hardware model, cost oracle, warm-embedding set and
/// runtime occupancy.
#[derive(Debug)]
pub struct QpuDevice {
    /// Fleet-wide device index.
    pub id: usize,
    /// The device's machine model (hardware graph carries this device's
    /// faults).
    pub machine: SplitMachine,
    /// Analytic per-stage cost oracle for this device.
    pub cost: CostModel,
    /// Largest logical problem size this device can embed.
    pub capacity_lps: usize,
    /// Multiplier on the embedding cost reflecting fault-induced difficulty
    /// (1.0 for a pristine device).
    pub fault_difficulty: f64,
    /// Topology keys whose embeddings this device has computed.
    warm: HashSet<u64>,
    /// When the device becomes idle (virtual seconds); `<= now` means idle.
    pub busy_until: f64,
    /// Total busy seconds accumulated.
    pub busy_seconds: f64,
    /// Jobs served.
    pub jobs_served: usize,
    /// Jobs served with a warm embedding.
    pub warm_hits: usize,
    /// Jobs that had to embed cold.
    pub cold_misses: usize,
}

impl QpuDevice {
    /// Build device `id` from the fleet configuration.
    fn new(id: usize, config: &FleetConfig, app: &SplitExecConfig) -> Self {
        let (m, n, l) = config.qpu_model.lattice();
        let pristine = chimera_graph::Chimera::new(m, n, l);
        let faults = FaultModel::random(
            pristine.graph(),
            config.qubit_fault_rate,
            config.coupler_fault_rate,
            config.seed.wrapping_add(id as u64),
        );
        let machine = SplitMachine::with_faults(config.qpu_model, faults);
        let yield_fraction = machine.usable_qubits() as f64 / machine.chimera.qubit_count() as f64;
        let pristine_clique = 4 * m.min(n) + 1;
        let capacity_lps = ((pristine_clique as f64) * yield_fraction).floor() as usize;
        let fault_difficulty = (1.0 / yield_fraction.powi(3)).max(1.0);
        let cost = CostModel::new(machine.clone(), *app);
        Self {
            id,
            machine,
            cost,
            capacity_lps,
            fault_difficulty,
            warm: HashSet::new(),
            busy_until: 0.0,
            busy_seconds: 0.0,
            jobs_served: 0,
            warm_hits: 0,
            cold_misses: 0,
        }
    }

    /// Whether a logical problem of `lps` spins fits this device.
    pub fn can_run(&self, lps: usize) -> bool {
        lps <= self.capacity_lps
    }

    /// Whether this device already holds an embedding for `topology_key`.
    pub fn is_warm(&self, topology_key: u64) -> bool {
        self.warm.contains(&topology_key)
    }

    /// Number of distinct topologies this device has embedded.
    pub fn warm_topologies(&self) -> usize {
        self.warm.len()
    }

    /// Whether the device is idle at virtual time `now`.
    pub fn is_idle(&self, now: f64) -> bool {
        self.busy_until <= now
    }

    /// Per-stage service seconds this device would charge a job of `lps`
    /// spins with the given cache state (cold embedding scaled by the
    /// fault-difficulty factor).
    pub fn service_breakdown(
        &self,
        lps: usize,
        warm: bool,
    ) -> Result<(f64, f64, f64), PipelineError> {
        let costs: StageCosts = self.cost.costs(lps)?;
        let stage1 = if warm {
            costs.stage1_warm_seconds()
        } else {
            costs.stage1_warm_seconds() + costs.stage1_embed_seconds * self.fault_difficulty
        };
        Ok((stage1, costs.stage2_seconds, costs.stage3_seconds))
    }

    /// Predicted total service seconds for a job of `lps` spins, accounting
    /// for this device's current cache state — the oracle the
    /// shortest-predicted-job-first and affinity schedulers consult.
    pub fn predicted_service_seconds(
        &self,
        lps: usize,
        topology_key: u64,
    ) -> Result<f64, PipelineError> {
        let (s1, s2, s3) = self.service_breakdown(lps, self.is_warm(topology_key))?;
        Ok(s1 + s2 + s3)
    }

    /// Record that this device computed (and cached) an embedding for
    /// `topology_key`.
    pub(crate) fn mark_warm(&mut self, topology_key: u64) {
        self.warm.insert(topology_key);
    }
}

/// The fleet: all devices plus shared application configuration.
#[derive(Debug)]
pub struct Fleet {
    /// The devices, indexed by id.
    pub devices: Vec<QpuDevice>,
    /// The application configuration shared by all devices.
    pub app_config: SplitExecConfig,
}

impl Fleet {
    /// Build a fleet, drawing each device's faults deterministically from
    /// the configured seed.
    pub fn new(config: FleetConfig, app_config: SplitExecConfig) -> Self {
        assert!(config.qpus > 0, "a fleet needs at least one QPU");
        let devices = (0..config.qpus)
            .map(|id| QpuDevice::new(id, &config, &app_config))
            .collect();
        Self {
            devices,
            app_config,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Ids of devices idle at virtual time `now`, in id order.
    pub fn idle_devices(&self, now: f64) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|d| d.is_idle(now))
            .map(|d| d.id)
            .collect()
    }

    /// The largest problem size any device in the fleet can embed.
    pub fn max_capacity_lps(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.capacity_lps)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(qpus: usize, rate: f64, seed: u64) -> Fleet {
        Fleet::new(
            FleetConfig {
                qpus,
                qubit_fault_rate: rate,
                coupler_fault_rate: rate / 2.0,
                seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(seed),
        )
    }

    #[test]
    fn devices_draw_distinct_fault_maps() {
        let f = fleet(3, 0.05, 7);
        assert_eq!(f.len(), 3);
        let fault_sets: Vec<_> = f.devices.iter().map(|d| &d.machine.faults).collect();
        assert_ne!(fault_sets[0], fault_sets[1]);
        assert_ne!(fault_sets[1], fault_sets[2]);
        // Same seed rebuilds the same fleet.
        let g = fleet(3, 0.05, 7);
        for (a, b) in f.devices.iter().zip(&g.devices) {
            assert_eq!(a.machine.faults, b.machine.faults);
            assert_eq!(a.capacity_lps, b.capacity_lps);
        }
    }

    #[test]
    fn pristine_device_has_full_capacity_and_unit_difficulty() {
        let f = fleet(1, 0.0, 1);
        let d = &f.devices[0];
        // C(12,12,4) pristine: K_49 capacity, no difficulty penalty.
        assert_eq!(d.capacity_lps, 49);
        assert_eq!(d.fault_difficulty, 1.0);
        assert!(d.can_run(49));
        assert!(!d.can_run(50));
    }

    #[test]
    fn faults_reduce_capacity_and_raise_difficulty() {
        let faulty = fleet(1, 0.08, 3);
        let pristine = fleet(1, 0.0, 3);
        let d = &faulty.devices[0];
        assert!(d.capacity_lps < pristine.devices[0].capacity_lps);
        assert!(d.fault_difficulty > 1.0);
        // Stage-1 cold cost is dearer on the faulty device.
        let (cold_faulty, _, _) = d.service_breakdown(20, false).unwrap();
        let (cold_pristine, _, _) = pristine.devices[0].service_breakdown(20, false).unwrap();
        assert!(cold_faulty > cold_pristine);
        // Warm cost is identical — no embedding happens.
        let (warm_faulty, _, _) = d.service_breakdown(20, true).unwrap();
        let (warm_pristine, _, _) = pristine.devices[0].service_breakdown(20, true).unwrap();
        assert!((warm_faulty - warm_pristine).abs() < 1e-12);
    }

    #[test]
    fn warm_set_drives_predicted_service() {
        let mut f = fleet(1, 0.01, 5);
        let key = 0xDEADBEEF;
        let cold = f.devices[0].predicted_service_seconds(40, key).unwrap();
        f.devices[0].mark_warm(key);
        assert!(f.devices[0].is_warm(key));
        let warm = f.devices[0].predicted_service_seconds(40, key).unwrap();
        assert!(
            warm < cold / 10.0,
            "warm {warm} should be far below cold {cold}"
        );
        assert_eq!(f.devices[0].warm_topologies(), 1);
    }

    #[test]
    fn idle_tracking() {
        let mut f = fleet(2, 0.0, 1);
        assert_eq!(f.idle_devices(0.0), vec![0, 1]);
        f.devices[0].busy_until = 5.0;
        assert_eq!(f.idle_devices(1.0), vec![1]);
        assert_eq!(f.idle_devices(5.0), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one QPU")]
    fn empty_fleet_is_rejected() {
        Fleet::new(
            FleetConfig {
                qpus: 0,
                ..FleetConfig::default()
            },
            SplitExecConfig::default(),
        );
    }
}
