//! Admission control: the gate between job arrival and the scheduler.
//!
//! A multi-tenant fleet cannot let every arrival into the dispatch queue:
//! an aggressor tenant submitting far beyond its budget would grow the
//! queue without bound, and even a fair scheduler can only re-order what is
//! already queued — unbounded backlog still costs memory and defeats any
//! latency SLO for jobs the system will accept.  The
//! [`AdmissionController`] runs *before* a job ever reaches the scheduler
//! and returns one of three verdicts:
//!
//! * **Accept** — the job joins the dispatch queue.
//! * **Shed** — the job is dropped (counted per tenant; in a real serving
//!   system this is the 429 the client sees).
//! * **Defer** — the job re-arrives at a later virtual time (the client is
//!   told to retry-after); deferral burns no queue slot.
//!
//! [`TokenBucket`] is the shipped implementation: each tenant has a rate
//! budget (tokens/second up to a burst cap) and a queue-depth limit.
//! Arrivals over the depth limit shed immediately; arrivals out of tokens
//! defer exactly until the next token accrues (deterministic — the defer
//! time is a pure function of the bucket state); jobs that have been
//! deferred past `max_defer_seconds` shed instead of spinning forever.
//! With [`TokenBucketConfig::shed_infeasible`] enabled, a job whose
//! deadline is already unreachable under the engine's *best-case*
//! completion estimate ([`AdmissionContext::predicted_completion`]) is shed
//! at admission time instead of queueing doomed work — and because the
//! estimate is a lower bound, a job that could still make its deadline is
//! never shed on deadline grounds.

use crate::job::Job;
use crate::tenant::TenantId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The verdict on one arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admit the job to the dispatch queue.
    Accept,
    /// Drop the job (counted as shed, never served).
    Shed,
    /// Drop the job because its deadline is already infeasible — counted
    /// separately from [`AdmissionDecision::Shed`] so SLO dashboards can
    /// distinguish "over budget" from "doomed anyway".
    ShedInfeasible,
    /// Re-submit the job at virtual time `until` (must be after the current
    /// time; the engine sheds instead if it is not, to guarantee progress).
    Defer {
        /// The virtual time at which the job re-arrives.
        until: f64,
    },
}

/// What the engine knows about the system at the moment a job arrives —
/// the controller's only window onto fleet state, so admission decisions
/// stay deterministic and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionContext {
    /// How many of the arriving job's tenant's jobs are already queued
    /// (not yet dispatched).
    pub tenant_queue_depth: usize,
    /// The engine's *optimistic* estimate of the job's completion time
    /// (absolute virtual seconds): the earliest any feasible device could
    /// finish it, assuming a warm embedding and no queue ahead of it.
    /// `None` when no device can run the job at all.  Actual completion
    /// can only be later, so `predicted_completion > deadline` proves the
    /// deadline unreachable.
    pub predicted_completion: Option<f64>,
}

impl AdmissionContext {
    /// A context carrying only the queue depth (no completion estimate) —
    /// what direct callers outside the engine typically have.
    pub fn with_depth(tenant_queue_depth: usize) -> Self {
        Self {
            tenant_queue_depth,
            predicted_completion: None,
        }
    }
}

/// Gates job arrival before the scheduler ever sees the job.
///
/// Implementations must be deterministic: the decision may depend only on
/// the job, the [`AdmissionContext`] and the virtual clock.
pub trait AdmissionController {
    /// Stable controller name used in reports.
    fn name(&self) -> &'static str;

    /// Decide the fate of `job` arriving at virtual time `now`, given the
    /// engine's snapshot of queue depth and best-case completion.
    fn admit(&mut self, job: &Job, ctx: &AdmissionContext, now: f64) -> AdmissionDecision;
}

/// The open-door controller: every job is accepted.  This is the implicit
/// controller of [`crate::sim::simulate`], preserving the single-tenant
/// behavior of earlier revisions.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdmitAll;

impl AdmissionController for AdmitAll {
    fn name(&self) -> &'static str {
        "admit-all"
    }

    fn admit(&mut self, _job: &Job, _ctx: &AdmissionContext, _now: f64) -> AdmissionDecision {
        AdmissionDecision::Accept
    }
}

/// Per-tenant token-bucket budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucketConfig {
    /// Sustained admission rate in jobs per virtual second.
    pub rate_hz: f64,
    /// Burst capacity in jobs (the bucket's size; also its initial fill).
    pub burst: f64,
    /// Queue-depth limit: arrivals while this many of the tenant's jobs are
    /// already queued shed immediately.
    pub max_queue_depth: usize,
    /// Arrivals that have already been deferred for longer than this shed
    /// instead of deferring again.
    pub max_defer_seconds: f64,
    /// Shed jobs whose deadline is provably unreachable at admission time
    /// (best-case predicted completion past the deadline) instead of
    /// queueing doomed work.  Deadline-free jobs are never affected; off by
    /// default.
    pub shed_infeasible: bool,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        Self {
            rate_hz: 1.0,
            burst: 4.0,
            max_queue_depth: 64,
            max_defer_seconds: 120.0,
            shed_infeasible: false,
        }
    }
}

impl TokenBucketConfig {
    /// Reject budgets that would divide by zero or defer forever.
    fn validate(&self) {
        assert!(
            self.rate_hz.is_finite() && self.rate_hz > 0.0,
            "token-bucket rate must be positive and finite, got {}",
            self.rate_hz
        );
        assert!(
            self.burst.is_finite() && self.burst >= 1.0,
            "token-bucket burst must be at least 1, got {}",
            self.burst
        );
        assert!(
            self.max_defer_seconds.is_finite() && self.max_defer_seconds >= 0.0,
            "max_defer_seconds must be non-negative and finite, got {}",
            self.max_defer_seconds
        );
    }
}

#[derive(Debug, Clone, Copy)]
struct BucketState {
    tokens: f64,
    last_refill: f64,
}

/// Token-bucket admission: per-tenant rate budgets, queue-depth limits and
/// (optionally) deadline-infeasibility shedding.
///
/// Tenants without an explicit budget use the default configuration.  All
/// state lives on the virtual clock, so a seeded simulation with admission
/// control replays bit-identically.
///
/// ```
/// use sx_cluster::prelude::*;
///
/// let mut gate = TokenBucket::new(TokenBucketConfig {
///     rate_hz: 1.0,            // one job per virtual second, sustained
///     burst: 2.0,              // up to two back-to-back
///     ..TokenBucketConfig::default()
/// });
/// let job = |id| Job {
///     id,
///     tenant: TenantId::DEFAULT,
///     family: "demo".into(),
///     lps: 10,
///     topology_key: 1,
///     arrival: 0.0,
///     deadline: None,
/// };
/// let ctx = AdmissionContext::with_depth(0);
///
/// // The burst is admitted, then arrivals defer until the next token.
/// assert_eq!(gate.admit(&job(0), &ctx, 0.0), AdmissionDecision::Accept);
/// assert_eq!(gate.admit(&job(1), &ctx, 0.0), AdmissionDecision::Accept);
/// match gate.admit(&job(2), &ctx, 0.0) {
///     AdmissionDecision::Defer { until } => assert!((until - 1.0).abs() < 1e-12),
///     other => panic!("expected a defer, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct TokenBucket {
    default_config: TokenBucketConfig,
    per_tenant: BTreeMap<usize, TokenBucketConfig>,
    state: BTreeMap<usize, BucketState>,
}

impl TokenBucket {
    /// A controller applying `config` to every tenant.
    pub fn new(config: TokenBucketConfig) -> Self {
        config.validate();
        Self {
            default_config: config,
            per_tenant: BTreeMap::new(),
            state: BTreeMap::new(),
        }
    }

    /// Override the budget of one tenant.
    pub fn with_tenant_budget(mut self, tenant: TenantId, config: TokenBucketConfig) -> Self {
        config.validate();
        self.per_tenant.insert(tenant.index(), config);
        self
    }

    /// The budget applied to `tenant`.
    pub fn budget(&self, tenant: TenantId) -> TokenBucketConfig {
        self.per_tenant
            .get(&tenant.index())
            .copied()
            .unwrap_or(self.default_config)
    }

    /// Tokens currently available to `tenant` if refilled at `now` (for
    /// inspection and tests; does not mutate the bucket).
    pub fn tokens_at(&self, tenant: TenantId, now: f64) -> f64 {
        let config = self.budget(tenant);
        match self.state.get(&tenant.index()) {
            Some(s) => {
                (s.tokens + (now - s.last_refill).max(0.0) * config.rate_hz).min(config.burst)
            }
            None => config.burst,
        }
    }
}

impl AdmissionController for TokenBucket {
    fn name(&self) -> &'static str {
        "token-bucket"
    }

    fn admit(&mut self, job: &Job, ctx: &AdmissionContext, now: f64) -> AdmissionDecision {
        let config = self.budget(job.tenant);
        // Doomed work is shed before it can spend tokens or queue slots:
        // the engine's estimate is a best case, so `completion > deadline`
        // proves the miss — a feasible job can never trip this.
        if config.shed_infeasible {
            if let (Some(deadline), Some(completion)) = (job.deadline, ctx.predicted_completion) {
                if completion > deadline {
                    return AdmissionDecision::ShedInfeasible;
                }
            }
        }
        let state = self.state.entry(job.tenant.index()).or_insert(BucketState {
            tokens: config.burst,
            last_refill: now,
        });
        // Refill on the virtual clock.
        state.tokens =
            (state.tokens + (now - state.last_refill).max(0.0) * config.rate_hz).min(config.burst);
        state.last_refill = now;

        if ctx.tenant_queue_depth >= config.max_queue_depth {
            return AdmissionDecision::Shed;
        }
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            return AdmissionDecision::Accept;
        }
        // Out of tokens.  `job.arrival` is the original submission time (the
        // engine preserves it across deferrals in open mode), so `now -
        // arrival` is the total time this job has already been deferred.
        if now - job.arrival >= config.max_defer_seconds {
            return AdmissionDecision::Shed;
        }
        AdmissionDecision::Defer {
            until: now + (1.0 - state.tokens) / config.rate_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, tenant: usize, arrival: f64) -> Job {
        Job {
            id,
            tenant: TenantId(tenant),
            family: "test".into(),
            lps: 10,
            topology_key: 1,
            arrival,
            deadline: None,
        }
    }

    fn deadline_job(id: usize, tenant: usize, arrival: f64, deadline: f64) -> Job {
        Job {
            deadline: Some(deadline),
            ..job(id, tenant, arrival)
        }
    }

    #[test]
    fn admit_all_accepts_everything() {
        let mut c = AdmitAll;
        assert_eq!(c.name(), "admit-all");
        assert_eq!(
            c.admit(
                &job(0, 0, 0.0),
                &AdmissionContext::with_depth(usize::MAX - 1),
                1e9
            ),
            AdmissionDecision::Accept
        );
    }

    #[test]
    fn burst_is_accepted_then_arrivals_defer_until_the_next_token() {
        let mut c = TokenBucket::new(TokenBucketConfig {
            rate_hz: 1.0,
            burst: 2.0,
            max_queue_depth: 100,
            max_defer_seconds: 100.0,
            ..TokenBucketConfig::default()
        });
        assert_eq!(
            c.admit(&job(0, 0, 0.0), &AdmissionContext::with_depth(0), 0.0),
            AdmissionDecision::Accept
        );
        assert_eq!(
            c.admit(&job(1, 0, 0.0), &AdmissionContext::with_depth(0), 0.0),
            AdmissionDecision::Accept
        );
        // Bucket empty: the defer lands exactly when one token accrues.
        match c.admit(&job(2, 0, 0.0), &AdmissionContext::with_depth(0), 0.0) {
            AdmissionDecision::Defer { until } => assert!((until - 1.0).abs() < 1e-12),
            other => panic!("expected defer, got {other:?}"),
        }
        // After the refill interval the same job is accepted.
        assert_eq!(
            c.admit(&job(2, 0, 0.0), &AdmissionContext::with_depth(0), 1.0),
            AdmissionDecision::Accept
        );
    }

    #[test]
    fn queue_depth_limit_sheds_immediately() {
        let mut c = TokenBucket::new(TokenBucketConfig {
            max_queue_depth: 3,
            ..TokenBucketConfig::default()
        });
        assert_eq!(
            c.admit(&job(0, 0, 0.0), &AdmissionContext::with_depth(2), 0.0),
            AdmissionDecision::Accept
        );
        assert_eq!(
            c.admit(&job(1, 0, 0.0), &AdmissionContext::with_depth(3), 0.0),
            AdmissionDecision::Shed
        );
    }

    #[test]
    fn deferred_past_the_limit_sheds() {
        let mut c = TokenBucket::new(TokenBucketConfig {
            rate_hz: 0.001, // tokens accrue glacially
            burst: 1.0,
            max_queue_depth: 100,
            max_defer_seconds: 10.0,
            ..TokenBucketConfig::default()
        });
        assert_eq!(
            c.admit(&job(0, 0, 0.0), &AdmissionContext::with_depth(0), 0.0),
            AdmissionDecision::Accept
        );
        // A job that originally arrived at t=0 re-arrives at t=11, past the
        // defer budget: shed, not deferred again.
        assert!(matches!(
            c.admit(&job(1, 0, 0.0), &AdmissionContext::with_depth(0), 5.0),
            AdmissionDecision::Defer { .. }
        ));
        assert_eq!(
            c.admit(&job(1, 0, 0.0), &AdmissionContext::with_depth(0), 11.0),
            AdmissionDecision::Shed
        );
    }

    #[test]
    fn budgets_are_per_tenant() {
        let mut c = TokenBucket::new(TokenBucketConfig {
            rate_hz: 0.5,
            burst: 1.0,
            ..TokenBucketConfig::default()
        })
        .with_tenant_budget(
            TenantId(1),
            TokenBucketConfig {
                rate_hz: 100.0,
                burst: 100.0,
                ..TokenBucketConfig::default()
            },
        );
        // Tenant 0 exhausts its single token; tenant 1's budget is its own.
        assert_eq!(
            c.admit(&job(0, 0, 0.0), &AdmissionContext::with_depth(0), 0.0),
            AdmissionDecision::Accept
        );
        assert!(matches!(
            c.admit(&job(1, 0, 0.0), &AdmissionContext::with_depth(0), 0.0),
            AdmissionDecision::Defer { .. }
        ));
        for id in 0..50 {
            assert_eq!(
                c.admit(&job(10 + id, 1, 0.0), &AdmissionContext::with_depth(0), 0.0),
                AdmissionDecision::Accept,
                "tenant 1 job {id} should fit its generous budget"
            );
        }
        assert_eq!(c.budget(TenantId(1)).burst, 100.0);
        assert!((c.tokens_at(TenantId(0), 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_deadlines_shed_only_when_enabled_and_proven() {
        let enabled = TokenBucketConfig {
            shed_infeasible: true,
            ..TokenBucketConfig::default()
        };
        let mut c = TokenBucket::new(enabled);
        let doomed_ctx = AdmissionContext {
            tenant_queue_depth: 0,
            predicted_completion: Some(20.0),
        };
        // Deadline before the best-case completion: provably doomed.
        assert_eq!(
            c.admit(&deadline_job(0, 0, 0.0, 15.0), &doomed_ctx, 0.0),
            AdmissionDecision::ShedInfeasible
        );
        // Deadline at/after the best case: still feasible, accepted.
        assert_eq!(
            c.admit(&deadline_job(1, 0, 0.0, 20.0), &doomed_ctx, 0.0),
            AdmissionDecision::Accept
        );
        // Deadline-free jobs and missing estimates are untouched.
        assert_eq!(
            c.admit(&job(2, 0, 0.0), &doomed_ctx, 0.0),
            AdmissionDecision::Accept
        );
        assert_eq!(
            c.admit(
                &deadline_job(3, 0, 0.0, 1.0),
                &AdmissionContext::with_depth(0),
                0.0
            ),
            AdmissionDecision::Accept
        );
        // With the flag off (default), even a doomed job queues.
        let mut off = TokenBucket::new(TokenBucketConfig::default());
        assert_eq!(
            off.admit(&deadline_job(4, 0, 0.0, 15.0), &doomed_ctx, 0.0),
            AdmissionDecision::Accept
        );
    }

    #[test]
    fn infeasible_shedding_burns_no_tokens() {
        let mut c = TokenBucket::new(TokenBucketConfig {
            burst: 1.0,
            shed_infeasible: true,
            ..TokenBucketConfig::default()
        });
        let doomed_ctx = AdmissionContext {
            tenant_queue_depth: 0,
            predicted_completion: Some(100.0),
        };
        for id in 0..5 {
            assert_eq!(
                c.admit(&deadline_job(id, 0, 0.0, 1.0), &doomed_ctx, 0.0),
                AdmissionDecision::ShedInfeasible
            );
        }
        // The full burst is still available to the feasible arrival.
        assert_eq!(
            c.admit(&job(9, 0, 0.0), &AdmissionContext::with_depth(0), 0.0),
            AdmissionDecision::Accept
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_budgets_are_rejected() {
        TokenBucket::new(TokenBucketConfig {
            rate_hz: 0.0,
            ..TokenBucketConfig::default()
        });
    }
}
