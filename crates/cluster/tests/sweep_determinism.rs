//! The sweep runner's determinism contract, end-to-end: parallelism is
//! invisible.  A [`SweepPlan`] executed at `--threads 1` (the serial
//! oracle), at 2 threads, and at the host's available parallelism must
//! produce byte-identical per-cell reports and a byte-identical merged
//! document — across seeds, scheduling policies, and thread counts — and
//! the order cells happen to execute in must never leak into any result.
//!
//! Also pins the satellite fix this PR hoists into the plan: a cell's
//! capacity-calibrated arrival rate is a pure function of its
//! `(fleet, load)` coordinate, so reordering or extending the axis lists
//! cannot drift any cell's rate (and therefore its workload).

use std::sync::Arc;

use proptest::prelude::*;
use sx_cluster::prelude::*;
use sx_cluster::sweep::DEFAULT_SAMPLE_INTERVAL;

/// A small but non-trivial plan: two seeds, one fleet, two loads, three
/// policies — 12 cells, enough to give every thread count real work.
fn test_plan() -> SweepPlan {
    SweepPlan::new(1.0, 2, SimConfig::default())
        .seeds(vec![3, 11])
        .fleets(vec![(
            "uniform".to_string(),
            FleetConfig {
                qpus: 2,
                ..FleetConfig::default()
            },
        )])
        .loads(vec![0.6, 1.2])
        .sample_interval(DEFAULT_SAMPLE_INTERVAL)
}

fn expand(plan: &SweepPlan) -> Vec<CellSpec> {
    plan.expand(
        &[(String::new(), ())],
        &["fifo", "affinity", "wfq"],
        |seed, rate_hz, ()| {
            Arc::new(
                WorkloadSpec::repeated_topologies(24, rate_hz, seed)
                    .try_generate()
                    .expect("valid test workload"),
            )
        },
        |name, _| match name {
            "fifo" => SchedulerSpec::Fifo,
            "affinity" => SchedulerSpec::CacheAffinity,
            _ => SchedulerSpec::WeightedFair {
                weights: vec![1.0],
                lane_order: Default::default(),
            },
        },
    )
}

/// Render everything comparable about a cell except its wall clock — the
/// "byte-identical" form CI's diffs see.
fn cell_fingerprint(cell: &CellResult) -> String {
    format!(
        "{}|{}|{}|{:?}|{:?}",
        cell.index, cell.label, cell.report, cell.latency_sketch, cell.wait_sketch
    )
}

#[test]
fn thread_count_is_invisible_across_seeds_and_policies() {
    let cells = expand(&test_plan());
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let oracle = run_sweep(&cells, 1);
    for threads in [2, available] {
        let parallel = run_sweep(&cells, threads);
        assert_eq!(parallel.cells.len(), oracle.cells.len());
        for (a, b) in parallel.cells.iter().zip(&oracle.cells) {
            assert_eq!(
                cell_fingerprint(a),
                cell_fingerprint(b),
                "cell '{}' diverged at {threads} threads",
                b.label
            );
            assert_eq!(a.report, b.report);
            assert_eq!(a.latency_sketch, b.latency_sketch);
            assert_eq!(a.wait_sketch, b.wait_sketch);
        }
        // The merged document byte-for-byte — what `--mode sweep` writes.
        assert_eq!(
            format!("{}", parallel.merged.to_json()),
            format!("{}", oracle.merged.to_json()),
            "merged JSON diverged at {threads} threads"
        );
    }
}

#[test]
fn zero_threads_means_available_parallelism_and_stays_identical() {
    let cells = expand(&test_plan());
    let auto = run_sweep(&cells, 0);
    let oracle = run_sweep(&cells, 1);
    for (a, b) in auto.cells.iter().zip(&oracle.cells) {
        assert_eq!(
            a.report, b.report,
            "cell '{}' diverged at auto threads",
            b.label
        );
    }
}

/// Calibrated arrival rates are pinned to the `(fleet, load)` coordinate:
/// reversing the load axis, permuting the fleet axis, or appending new
/// axis values must not move any existing cell's rate — and with the rates
/// fixed, the per-cell workloads (and therefore reports) are fixed too.
#[test]
fn calibrated_rates_survive_axis_reordering() {
    let uniform = FleetConfig {
        qpus: 2,
        ..FleetConfig::default()
    };
    let hetero = FleetConfig::heterogeneous(2, 5);
    let sizes = [16usize, 20, 24];

    let forward = SweepPlan::new(1.0, 2, SimConfig::default())
        .fleets(vec![
            ("uniform".to_string(), uniform.clone()),
            ("hetero".to_string(), hetero.clone()),
        ])
        .loads(vec![0.5, 1.0, 1.5])
        .calibrated(&sizes)
        .expect("calibration succeeds");
    let reordered = SweepPlan::new(1.0, 2, SimConfig::default())
        .fleets(vec![
            ("hetero".to_string(), hetero.clone()),
            ("uniform".to_string(), uniform.clone()),
        ])
        .loads(vec![1.5, 0.5, 1.0, 2.0])
        .calibrated(&sizes)
        .expect("calibration succeeds");

    // uniform is fleet 0 forward, fleet 1 reordered; loads looked up by
    // value, not position.
    for &load in &[0.5, 1.0, 1.5] {
        assert_eq!(
            forward.rate_for(0, load),
            reordered.rate_for(1, load),
            "uniform fleet's rate at load {load} drifted with axis order"
        );
        assert_eq!(
            forward.rate_for(1, load),
            reordered.rate_for(0, load),
            "hetero fleet's rate at load {load} drifted with axis order"
        );
    }

    // Pin the actual regression: the same (seed, fleet, load, policy)
    // coordinate yields the identical report under both axis orders.
    let cells_fwd = forward.expand(
        &[(String::new(), ())],
        &["fifo"],
        |seed, rate_hz, ()| {
            Arc::new(
                WorkloadSpec::repeated_topologies(16, rate_hz, seed)
                    .try_generate()
                    .expect("valid test workload"),
            )
        },
        |_, _| SchedulerSpec::Fifo,
    );
    let cells_re = reordered.expand(
        &[(String::new(), ())],
        &["fifo"],
        |seed, rate_hz, ()| {
            Arc::new(
                WorkloadSpec::repeated_topologies(16, rate_hz, seed)
                    .try_generate()
                    .expect("valid test workload"),
            )
        },
        |_, _| SchedulerSpec::Fifo,
    );
    let fwd = run_sweep(&cells_fwd, 1);
    let re = run_sweep(&cells_re, 1);
    for a in &fwd.cells {
        let b = re
            .cells
            .iter()
            .find(|c| c.label == a.label)
            .unwrap_or_else(|| panic!("cell '{}' missing from the reordered plan", a.label));
        assert_eq!(
            a.report, b.report,
            "cell '{}' changed when the axes were reordered",
            a.label
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cell execution order never leaks into results: running an arbitrary
    /// permutation of the cell list (at an arbitrary thread count) yields,
    /// for every cell, exactly the result the unpermuted serial oracle
    /// produced for the same spec — only `index` (its position in the
    /// submitted list) differs.
    #[test]
    fn execution_order_never_leaks_into_results(
        permutation_seed in 0u64..u64::MAX,
        threads in 1usize..4,
    ) {
        let cells = expand(&test_plan());
        let oracle = run_sweep(&cells, 1);

        // A deterministic Fisher–Yates driven by the proptest-chosen seed.
        let mut order: Vec<usize> = (0..cells.len()).collect();
        let mut state = permutation_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let permuted: Vec<CellSpec> = order.iter().map(|&i| cells[i].clone()).collect();

        let shuffled = run_sweep(&permuted, threads);
        for (pos, &original) in order.iter().enumerate() {
            let a = &shuffled.cells[pos];
            let b = &oracle.cells[original];
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(a.index, pos, "results must come back in submission order");
            prop_assert_eq!(&a.report, &b.report,
                "cell '{}' changed under permutation at {} threads", b.label, threads);
            prop_assert_eq!(&a.latency_sketch, &b.latency_sketch);
            prop_assert_eq!(&a.wait_sketch, &b.wait_sketch);
        }
    }
}
