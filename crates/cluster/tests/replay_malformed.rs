//! End-to-end tests of the flight-recorder contract through the public
//! API: a recorded run replays bit-identically, and every malformed input
//! class — truncated JSONL mid-record, unknown schema versions,
//! out-of-order arrivals, duplicate job ids — is a typed [`ReplayError`],
//! never a panic (the `sx_lint` H003 contract extends to parsing
//! adversarial files).

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

fn fleet_config(seed: u64) -> FleetConfig {
    FleetConfig {
        qpus: 2,
        seed,
        ..FleetConfig::default()
    }
}

fn workload(seed: u64) -> Workload {
    WorkloadSpec::repeated_topologies(16, 1.5, seed).generate()
}

/// Record one real run into a string and hand back its flight record.
fn recorded(seed: u64) -> String {
    let config = SimConfig::default();
    let workload = workload(seed);
    let spec = SchedulerSpec::CacheAffinity;
    let header = FlightHeader::new(
        seed,
        spec.clone(),
        "admit-all",
        fleet_config(seed),
        config,
        workload.clone(),
    );
    let mut recorder = RecorderSink::new(Vec::new());
    recorder.begin_run(&header);
    let fleet = Fleet::new(fleet_config(seed), SplitExecConfig::with_seed(seed));
    let mut scheduler = spec.build();
    simulate_with_telemetry(
        fleet,
        &workload,
        scheduler.as_mut(),
        &mut AdmitAll,
        config,
        &mut recorder,
        None,
    );
    let (bytes, _) = recorder.finish().expect("Vec<u8> writes cannot fail");
    String::from_utf8(bytes).expect("flight records are UTF-8")
}

#[test]
fn a_recorded_run_round_trips_and_replays_bit_identically() {
    let text = recorded(23);
    let record = parse_flight_record(&text).expect("the recorder's own output parses");
    assert_eq!(record.runs.len(), 1);
    let run = &record.runs[0];
    assert_eq!(run.header.policy, "affinity");
    assert!(run.header.replayable());

    let check = check_replay(run).expect("an admit-all run replays");
    assert_eq!(check.compared, run.records.len());
    assert_eq!(check.divergence, None, "replay must be bit-identical");

    // Re-recording the parsed run reproduces the file byte-for-byte: the
    // JSON rendering is deterministic, so diffing records is diffing runs.
    let mut recorder = RecorderSink::new(Vec::new());
    recorder.begin_run(&run.header);
    replay_run(run, &mut recorder).expect("replay under a recorder");
    let (bytes, _) = recorder.finish().expect("Vec<u8> writes cannot fail");
    assert_eq!(String::from_utf8(bytes).expect("UTF-8"), text);
}

#[test]
fn truncated_jsonl_mid_record_is_a_typed_parse_error() {
    let text = recorded(23);
    // Chop the file mid-way through its final line.
    let cut = text.trim_end().len() - 7;
    let err = parse_flight_record(&text[..cut]).expect_err("truncated JSON must not parse");
    assert!(
        matches!(err, ReplayError::Json { .. }),
        "expected a Json parse error, got {err:?}"
    );
    // The error is printable and names the failing line.
    assert!(err.to_string().contains("line"));
}

#[test]
fn unknown_flight_schema_versions_are_refused() {
    let text = recorded(23).replace(FLIGHT_SCHEMA, "sx-flight-record/v999");
    match parse_flight_record(&text) {
        Err(ReplayError::UnknownSchema { found, expected }) => {
            assert_eq!(found, "sx-flight-record/v999");
            assert_eq!(expected, FLIGHT_SCHEMA);
        }
        other => panic!("expected UnknownSchema, got {other:?}"),
    }
}

#[test]
fn unknown_arrival_schema_versions_are_refused() {
    let trace = render_arrival_trace(&workload(5)).replace(ARRIVAL_SCHEMA, "sx-arrival-trace/v999");
    assert!(matches!(
        parse_arrival_trace(&trace),
        Err(ReplayError::UnknownSchema { .. })
    ));
}

#[test]
fn arrival_traces_round_trip_through_the_public_api() {
    let original = workload(5);
    let trace = render_arrival_trace(&original);
    let reread = parse_arrival_trace(&trace).expect("own output parses");
    assert_eq!(reread.jobs, original.jobs);
    assert_eq!(reread.tenants, original.tenants);
    assert_eq!(workload_digest(&reread), workload_digest(&original));
    // And the reader trait serves generators and recorded traces alike.
    let from_reader = RecordedTrace::new(trace).read().expect("reader replays");
    assert_eq!(from_reader.jobs, original.jobs);
}

#[test]
fn out_of_order_arrivals_are_a_typed_error_not_a_panic() {
    let trace = render_arrival_trace(&workload(5));
    let mut lines: Vec<&str> = trace.lines().collect();
    // Swapping two job lines breaks the non-decreasing arrival invariant
    // (Poisson arrivals are almost surely strictly increasing).
    lines.swap(3, 4);
    let err = parse_arrival_trace(&lines.join("\n")).expect_err("must refuse reordering");
    assert!(
        matches!(
            err,
            ReplayError::OutOfOrderArrival { .. }
                | ReplayError::DuplicateJobId { .. }
                | ReplayError::Field { .. }
        ),
        "expected a typed ordering error, got {err:?}"
    );
}

#[test]
fn duplicate_job_ids_are_a_typed_error_not_a_panic() {
    let trace = render_arrival_trace(&workload(5));
    let lines: Vec<&str> = trace.lines().collect();
    // Repeat a job line verbatim: its id collides with itself while its
    // arrival time stays non-decreasing, isolating the duplicate-id check.
    let mut doctored: Vec<&str> = lines.clone();
    doctored.insert(3, lines[2]);
    let err = parse_arrival_trace(&doctored.join("\n")).expect_err("must refuse duplicate ids");
    assert!(
        matches!(
            err,
            ReplayError::DuplicateJobId { .. } | ReplayError::Field { .. }
        ),
        "expected a duplicate-id error, got {err:?}"
    );
}

#[test]
fn truncated_arrival_traces_fail_the_declared_count_check() {
    let trace = render_arrival_trace(&workload(5));
    let lines: Vec<&str> = trace.lines().collect();
    let clipped = lines[..lines.len() - 2].join("\n");
    let err = parse_arrival_trace(&clipped).expect_err("must notice missing jobs");
    assert!(
        err.to_string().contains("truncated"),
        "the error should point at truncation, got: {err}"
    );
}

#[test]
fn tampered_records_keep_their_integrity_digests_honest() {
    // Flip one workload field inside the header: the embedded digest no
    // longer matches and parsing refuses the record.
    let text = recorded(23);
    let tampered = text.replacen("\"lps\":", "\"lps\":1", 1);
    assert_ne!(tampered, text, "the tamper must hit a workload job line");
    let err = parse_flight_record(&tampered).expect_err("tampering must be caught");
    assert!(
        matches!(err, ReplayError::Field { field, .. } if field == "workload_digest"),
        "expected the workload_digest integrity check, got {err:?}"
    );
}

#[test]
fn token_bucket_segments_refuse_replay_with_a_typed_error() {
    let seed = 23;
    let config = SimConfig::default();
    let workload = workload(seed);
    let header = FlightHeader::new(
        seed,
        SchedulerSpec::Fifo,
        "token-bucket",
        fleet_config(seed),
        config,
        workload,
    );
    assert!(!header.replayable());
    let run = RecordedRun {
        header,
        records: Vec::new(),
    };
    match check_replay(&run) {
        Err(ReplayError::UnsupportedAdmission { admission }) => {
            assert_eq!(admission, "token-bucket");
        }
        other => panic!("expected UnsupportedAdmission, got {other:?}"),
    }
}
