//! Property tests for [`StreamingHistogram::merge`]'s algebra — the
//! operation `--mode sweep` leans on when it folds per-cell sketches into
//! fleet-wide percentiles.
//!
//! The contract under test:
//!
//! * **Commutative**: `a ⊕ b == b ⊕ a`, bitwise — bucket counts and
//!   extremes combine symmetrically, and IEEE addition of the running sums
//!   is commutative.
//! * **Associative** (up to sum rounding): `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)`
//!   agree exactly on counts, extremes, non-finite tallies, and every
//!   quantile (bucket counts are integer sums); only the float `sum`
//!   behind `mean()` may differ by rounding, bounded here to a few ulps.
//! * **Merge = concatenate**: folding per-shard sketches equals one sketch
//!   that observed the concatenated stream, so the merged
//!   `relative_error_bound()` still holds against the exact nearest-rank
//!   percentile of the concatenated samples.

use proptest::collection::vec;
use proptest::prelude::*;
use sx_cluster::telemetry::StreamingHistogram;

fn sketch_of(values: &[f64]) -> StreamingHistogram {
    let mut sketch = StreamingHistogram::default();
    for &v in values {
        sketch.observe(v);
    }
    sketch
}

fn merged(a: &StreamingHistogram, b: &StreamingHistogram) -> StreamingHistogram {
    let mut out = a.clone();
    out.merge(b).expect("same-resolution sketches merge");
    out
}

/// Exact nearest-rank percentile, the yardstick of the accuracy contract.
fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Stretch raw samples over the sketch's whole domain: positive and
/// negative magnitudes across several decades, exact zeros, and the
/// occasional non-finite value (which the sketch counts and drops).  The
/// offline proptest facade samples plain ranges, so the decoration is a
/// pure index-driven function of the raw draw — still deterministic per
/// case.
fn decorate(raw: &[f64]) -> Vec<f64> {
    raw.iter()
        .enumerate()
        .map(|(i, &v)| match i % 13 {
            11 => 0.0,
            12 if i % 2 == 0 => f64::NAN,
            12 => f64::INFINITY,
            _ => v,
        })
        .collect()
}

const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative_bitwise(
        xs in vec(-1e4..1e4f64, 0..60),
        ys in vec(-1e4..1e4f64, 0..60),
    ) {
        let (xs, ys) = (decorate(&xs), decorate(&ys));
        let (a, b) = (sketch_of(&xs), sketch_of(&ys));
        // Derived PartialEq covers γ, counts, extremes, sums and both
        // bucket arrays — the full serialized state.
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative_on_everything_but_sum_rounding(
        xs in vec(-1e4..1e4f64, 0..40),
        ys in vec(-1e4..1e4f64, 0..40),
        zs in vec(-1e4..1e4f64, 0..40),
    ) {
        let (xs, ys, zs) = (decorate(&xs), decorate(&ys), decorate(&zs));
        let (a, b, c) = (sketch_of(&xs), sketch_of(&ys), sketch_of(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.non_finite(), right.non_finite());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        for q in QS {
            prop_assert_eq!(
                left.quantile(q),
                right.quantile(q),
                "quantile({}) differs between association orders", q
            );
        }
        // The running sum is the one float-addition-order-sensitive field.
        let scale = left.count().max(1) as f64 * 1e4;
        prop_assert!(
            (left.mean() - right.mean()).abs() <= scale * f64::EPSILON,
            "means differ beyond rounding: {} vs {}", left.mean(), right.mean()
        );
    }

    #[test]
    fn folded_shards_match_the_concatenated_stream(
        shards in vec(vec(-1e4..1e4f64, 0..30), 1..6),
    ) {
        let shards: Vec<Vec<f64>> = shards.iter().map(|s| decorate(s)).collect();
        let concatenated: Vec<f64> = shards.iter().flatten().copied().collect();
        let whole = sketch_of(&concatenated);
        let folded = shards
            .iter()
            .map(|shard| sketch_of(shard))
            .fold(StreamingHistogram::default(), |acc, s| merged(&acc, &s));
        // Identical state: observing a stream and merging its shards land
        // every value in the same bucket, and integer bucket counts add
        // losslessly.  (Sums may round differently, so compare the
        // quantile-bearing state rather than derived PartialEq.)
        prop_assert_eq!(whole.count(), folded.count());
        prop_assert_eq!(whole.non_finite(), folded.non_finite());
        prop_assert_eq!(whole.min(), folded.min());
        prop_assert_eq!(whole.max(), folded.max());
        for q in QS {
            prop_assert_eq!(whole.quantile(q), folded.quantile(q));
        }
    }

    #[test]
    fn merged_error_bound_holds_against_exact_nearest_rank(
        shards in vec(vec(1e-3..1e4f64, 1..40), 1..6),
    ) {
        let folded = shards
            .iter()
            .map(|shard| sketch_of(shard))
            .fold(StreamingHistogram::default(), |acc, s| merged(&acc, &s));
        let mut sorted: Vec<f64> = shards.iter().flatten().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let bound = folded.relative_error_bound();
        for q in QS {
            let exact = exact_nearest_rank(&sorted, q);
            let approx = folded.quantile(q);
            prop_assert!(
                (approx - exact).abs() <= bound * exact.abs() + f64::EPSILON,
                "quantile({}) = {} misses exact {} beyond the {} bound",
                q, approx, exact, bound
            );
        }
    }
}

#[test]
fn merging_mismatched_resolutions_is_refused() {
    let mut coarse = StreamingHistogram::with_relative_error(0.05);
    let fine = StreamingHistogram::with_relative_error(0.01);
    let err = coarse.merge(&fine).expect_err("γ mismatch must be refused");
    assert_eq!(err, (1.0 + 2.0 * 0.05, 1.0 + 2.0 * 0.01));
}
