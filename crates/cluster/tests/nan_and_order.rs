//! Regression tests for the two failure classes `sx_lint`'s D-rules guard
//! against, driven end-to-end through the public API:
//!
//! * **D003 (NaN-unsafe comparators)** — a job or cache entry carrying a
//!   NaN cost must not panic any scheduler or eviction policy, because
//!   every ordering in the workspace goes through `f64::total_cmp` (the
//!   EventKey pattern of `cluster/src/event.rs`), under which NaN is just
//!   the greatest value.
//! * **D002 (hash-order dependence)** — the `CostModel` memo is a
//!   `HashMap`, which is fine *only* because it is never iterated.  The
//!   order memo entries were inserted in must be invisible to a run.

use split_exec::SplitExecConfig;
use sx_cluster::cache::CacheEntry;
use sx_cluster::prelude::*;

fn probe_job(id: usize, deadline: Option<f64>) -> Job {
    Job {
        id,
        tenant: TenantId::DEFAULT,
        family: "probe".into(),
        lps: 40,
        topology_key: id as u64,
        arrival: 0.0,
        deadline,
    }
}

fn small_fleet(seed: u64) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus: 2,
            seed,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(seed),
    )
}

#[test]
fn edf_does_not_panic_on_nan_deadline_and_ranks_it_last() {
    // Under partial_cmp().unwrap() this queue would panic the dispatcher;
    // under total_cmp a NaN deadline is merely the worst possible one —
    // it ranks behind even the deadline-free (infinity-keyed) jobs.
    let queue = vec![
        probe_job(0, Some(f64::NAN)),
        probe_job(1, None),
        probe_job(2, Some(100.0)),
    ];
    let fleet = small_fleet(7);
    let mut edf = EarliestDeadlineFirst;
    let (qi, _) = edf
        .next_assignment(&queue, &fleet, 0.0)
        .expect("an idle fleet must yield an assignment");
    assert_eq!(qi, 2, "the finite deadline must win over NaN and None");
}

#[test]
fn wfq_lane_order_does_not_panic_on_nan_deadline() {
    let queue = vec![
        probe_job(0, Some(f64::NAN)),
        probe_job(1, Some(f64::NAN)),
        probe_job(2, Some(3.0)),
    ];
    let fleet = small_fleet(7);
    let mut wfq = WeightedFairQueue::new();
    assert!(
        wfq.next_assignment(&queue, &fleet, 0.0).is_some(),
        "single-tenant WFQ with NaN deadlines must still dispatch"
    );
}

#[test]
fn simulation_with_all_nan_deadlines_completes_and_replays() {
    // Poison every deadline in a real multi-tenant workload and run the
    // whole engine: EDF lanes, SLO accounting and lateness percentiles all
    // see NaN.  Nothing may panic, every job must be conserved, and the
    // run must still replay bit-identically.
    let run = |seed: u64| {
        let mut workload = MultiTenantSpec::aggressor_victim(8, 0.7, 3.0, 1.0, seed).generate();
        for job in &mut workload.jobs {
            job.deadline = Some(f64::NAN);
        }
        let fleet = small_fleet(seed);
        let mut scheduler = WeightedFairQueue::for_workload(&workload);
        simulate(fleet, &workload, &mut scheduler, SimConfig::default())
    };
    let a = run(11);
    let b = run(11);
    // `a == b` would be false even for bit-identical runs: the lateness
    // stats are NaN, and NaN != NaN under PartialEq.  The Debug rendering
    // is textual, so it compares NaNs (and every other bit) faithfully.
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "NaN deadlines broke replay determinism"
    );
    assert_eq!(a.completed + a.rejected, a.jobs);
}

#[test]
fn cost_aware_eviction_does_not_panic_on_nan_reembed_cost() {
    let entry = |key: u64, last_use: u64, reembed_seconds: f64| CacheEntry {
        key,
        lps: 40,
        last_use,
        reembed_seconds,
    };
    let policy = CostAware;
    // NaN is the *most expensive* entry under total_cmp, so the finite-cost
    // entry is sacrificed first.
    let entries = [entry(1, 0, f64::NAN), entry(2, 1, 4.5)];
    assert_eq!(policy.victim(&entries), 1);
    // All-NaN costs degrade to the deterministic (last_use, key) tiebreak
    // instead of panicking or picking arbitrarily.
    let entries = [
        entry(9, 5, f64::NAN),
        entry(3, 2, f64::NAN),
        entry(4, 2, f64::NAN),
    ];
    assert_eq!(policy.victim(&entries), 1, "smallest (last_use, key) wins");
}

#[test]
fn cost_model_memo_population_order_is_invisible() {
    // The per-device CostModel memo is a HashMap that is only ever read by
    // key (never iterated) — which makes it D002-exempt by design.  Prove
    // the claim: pre-warm two same-seed fleets' memos in opposite orders,
    // run the identical workload through the cost-consulting scheduler,
    // and require bit-identical reports.
    let sizes: Vec<usize> = vec![16, 24, 32, 40, 48];
    let run = |warm_order: &[usize]| {
        let fleet = small_fleet(13);
        for device in &fleet.devices {
            for &lps in warm_order {
                device
                    .cost
                    .costs(lps)
                    .expect("feasible probe sizes must cost cleanly");
            }
        }
        let workload = WorkloadSpec::repeated_topologies(25, 0.8, 13).generate();
        let mut scheduler = PolicyKind::ShortestPredictedFirst.build();
        simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default())
    };
    let ascending = run(&sizes);
    let descending = run(&sizes.iter().rev().copied().collect::<Vec<_>>());
    assert_eq!(
        ascending, descending,
        "memo insertion order leaked into the trace"
    );
    assert_ne!(ascending.trace.len(), 0);
}
