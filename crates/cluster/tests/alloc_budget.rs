//! The dispatch loop's allocation budget, pinned by a counting global
//! allocator.
//!
//! The hot-path contract (docs/ARCHITECTURE.md) has three enforcement
//! layers: `sx_lint`'s A-rules prove *statically* that no allocating
//! construct is reachable from a hot root, this test proves *dynamically*
//! that the engine's steady state performs **zero allocations per event**,
//! and `benches/dispatch.rs` watches the resulting throughput.
//!
//! The dynamic form of "zero per event" used here: the total number of
//! heap allocations in a full `simulate_with_telemetry` call is the same
//! at `N` jobs and at `2N` jobs.  Every buffer the loop writes into is
//! pre-sized in `SimScratch::for_run` (one allocation each, regardless of
//! capacity), the cost-model memo misses once per *distinct* topology size
//! (the repeated-topology workload has the same four sizes at any N), and
//! the report assembly pre-sizes its filtered collections — so doubling
//! the event count must not add a single allocation.  If this test fails
//! after an engine change, something started allocating per event; run
//! `sx_lint` to find it, or hoist the buffer into `SimScratch`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

/// Counts every allocation and reallocation; frees are not interesting
/// (a free can't grow the heap, and counting it would double-charge
/// buffer growth).
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed by one full simulate call (everything else —
/// workload generation, fleet construction, scheduler build — happens
/// outside the counted window).
fn allocations_for(policy: PolicyKind, jobs: usize) -> usize {
    // The cache is bounded (with room for every distinct topology) so its
    // buffers are pre-sized at construction: an *unbounded* warm cache
    // grows with the distinct topologies each device happens to see, and
    // which device sees which topology depends on the dispatch pattern.
    let fleet = Fleet::new(
        FleetConfig {
            qpus: 4,
            seed: 11,
            cache_capacity: Some(8),
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(11),
    );
    let workload = WorkloadSpec::repeated_topologies(jobs, 2.0, 11).generate();
    // Pre-warm every device's cost memo for every topology size in the
    // workload: a memo miss walks the full ASPEN prediction pipeline
    // (explicitly off the per-event path — see the hot-exempt boundary on
    // `predict_stage1`), and which (device, size) pairs miss depends on
    // the dispatch pattern, not the event count.
    for device in &fleet.devices {
        for lps in [24, 28, 30, 36] {
            device.cost.costs(lps).expect("workload sizes cost cleanly");
        }
    }
    let mut scheduler = policy.build();
    let mut sink = NullSink;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let report = simulate_with_telemetry(
        fleet,
        &workload,
        scheduler.as_mut(),
        &mut AdmitAll,
        SimConfig::default(),
        &mut sink,
        None,
    );
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        report.records.len(),
        jobs,
        "every job must complete under AdmitAll on an open workload"
    );
    after - before
}

/// One throwaway run so lazily-initialized process state (allocator
/// internals, thread-locals) is paid for before any counted window opens.
fn warmup() {
    let _ = allocations_for(PolicyKind::Fifo, 20);
}

fn assert_constant_in_n(policy: PolicyKind) {
    warmup();
    let at_n = allocations_for(policy, 200);
    let at_2n = allocations_for(policy, 400);
    assert_eq!(
        at_n, at_2n,
        "{policy:?}: allocation count must not depend on the event count \
         (got {at_n} at 200 jobs vs {at_2n} at 400 jobs) — something \
         allocates per event",
    );
}

#[test]
fn fifo_dispatch_loop_allocates_independently_of_event_count() {
    assert_constant_in_n(PolicyKind::Fifo);
}

#[test]
fn wfq_dispatch_loop_allocates_independently_of_event_count() {
    assert_constant_in_n(PolicyKind::WeightedFair);
}

#[test]
fn edf_dispatch_loop_allocates_independently_of_event_count() {
    assert_constant_in_n(PolicyKind::EarliestDeadline);
}

#[test]
fn allocation_count_is_deterministic_run_to_run() {
    warmup();
    let first = allocations_for(PolicyKind::Fifo, 200);
    let second = allocations_for(PolicyKind::Fifo, 200);
    assert_eq!(
        first, second,
        "identical runs must perform identical allocation sequences"
    );
}

// --- the sweep runner's allocation budget ------------------------------
//
// `run_sweep`'s per-cell body (`sweep::run_cell`, marked hot-root for
// sx_lint's A-rules) wraps the same engine the tests above budget.  Its
// contract: the runner adds NOTHING per cell beyond the cell body itself —
// collection and merging are per-sweep constants — so the per-cell
// steady-state allocation count is unchanged under the sweep runner.
//
// **Thread-spawn exemption**: these tests measure at `threads = 1`, the
// serial oracle, where the compat rayon facade spawns no threads.  At
// `threads > 1` the facade pays one scoped-thread spawn per worker per
// *sweep* — a per-sweep constant owned by `std::thread`, not a per-event
// or per-cell cost — and runs the bit-identical per-cell body (pinned by
// tests/sweep_determinism.rs), so exempting spawn cost loses nothing.

use std::sync::Arc;

/// A self-contained sweep cell mirroring `allocations_for`'s setup: bounded
/// cache (pre-sized buffers) and the repeated-topology mix.
fn sweep_cell(jobs: usize) -> CellSpec {
    CellSpec {
        label: "alloc-budget".to_string(),
        seed: 11,
        fleet: FleetConfig {
            qpus: 4,
            seed: 11,
            cache_capacity: Some(8),
            ..FleetConfig::default()
        },
        scheduler: SchedulerSpec::Fifo,
        admission: AdmissionSpec::AdmitAll,
        config: SimConfig::default(),
        sample_interval: 5.0,
        workload: Arc::new(WorkloadSpec::repeated_topologies(jobs, 2.0, 11).generate()),
    }
}

fn allocations_for_sweep(cells: &[CellSpec]) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let outcome = run_sweep(cells, 1);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(outcome.cells.len(), cells.len());
    after - before
}

#[test]
fn sweep_runner_adds_constant_overhead_and_nothing_per_cell() {
    warmup();
    // Identical cells (one shared workload): every per-cell quantity —
    // dispatch pattern, memo misses, sketch bucket spans, registry sample
    // counts — is identical, so allocation counts must be exactly linear
    // in the cell count.  A super-linear term means the runner itself
    // started allocating per cell beyond the cell body.
    let cell = sweep_cell(200);
    let one = vec![cell.clone()];
    let two = vec![cell.clone(), cell.clone()];
    let three = vec![cell.clone(), cell.clone(), cell.clone()];
    // Throwaway sweep: pays one-time lazy state (thread-local init, first
    // merge growth patterns) before any counted window opens.
    let _ = run_sweep(&one, 1);
    let c1 = allocations_for_sweep(&one);
    let c2 = allocations_for_sweep(&two);
    let c3 = allocations_for_sweep(&three);
    assert_eq!(
        c2 - c1,
        c3 - c2,
        "per-cell marginal allocation cost must be constant under the sweep \
         runner (got {c1}/{c2}/{c3} for 1/2/3 identical cells)"
    );
}

#[test]
fn sweep_cell_body_matches_direct_execution() {
    warmup();
    let cell = sweep_cell(200);
    let _ = run_sweep(std::slice::from_ref(&cell), 1);

    // The cell body run directly, outside the runner.
    let mut sink = NullSink;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let direct_result = sx_cluster::sweep::run_cell(0, &cell, &mut sink);
    let direct = ALLOCATIONS.load(Ordering::SeqCst) - before;

    // The same cell as the marginal cost of one more cell in a sweep: the
    // merged sketches already span the (identical) cell's bucket range
    // after the first cell, so the second cell's merge allocates nothing
    // and the marginal cost is exactly the cell body.
    let one = vec![cell.clone()];
    let two = vec![cell.clone(), cell.clone()];
    let c1 = allocations_for_sweep(&one);
    let c2 = allocations_for_sweep(&two);
    assert_eq!(
        c2 - c1,
        direct,
        "a cell inside run_sweep must allocate exactly what the cell body \
         allocates directly ({direct}) — the runner adds nothing per cell"
    );
    assert_eq!(direct_result.report.records.len(), 200);
}
