//! The dispatch loop's allocation budget, pinned by a counting global
//! allocator.
//!
//! The hot-path contract (docs/ARCHITECTURE.md) has three enforcement
//! layers: `sx_lint`'s A-rules prove *statically* that no allocating
//! construct is reachable from a hot root, this test proves *dynamically*
//! that the engine's steady state performs **zero allocations per event**,
//! and `benches/dispatch.rs` watches the resulting throughput.
//!
//! The dynamic form of "zero per event" used here: the total number of
//! heap allocations in a full `simulate_with_telemetry` call is the same
//! at `N` jobs and at `2N` jobs.  Every buffer the loop writes into is
//! pre-sized in `SimScratch::for_run` (one allocation each, regardless of
//! capacity), the cost-model memo misses once per *distinct* topology size
//! (the repeated-topology workload has the same four sizes at any N), and
//! the report assembly pre-sizes its filtered collections — so doubling
//! the event count must not add a single allocation.  If this test fails
//! after an engine change, something started allocating per event; run
//! `sx_lint` to find it, or hoist the buffer into `SimScratch`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

/// Counts every allocation and reallocation; frees are not interesting
/// (a free can't grow the heap, and counting it would double-charge
/// buffer growth).
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed by one full simulate call (everything else —
/// workload generation, fleet construction, scheduler build — happens
/// outside the counted window).
fn allocations_for(policy: PolicyKind, jobs: usize) -> usize {
    // The cache is bounded (with room for every distinct topology) so its
    // buffers are pre-sized at construction: an *unbounded* warm cache
    // grows with the distinct topologies each device happens to see, and
    // which device sees which topology depends on the dispatch pattern.
    let fleet = Fleet::new(
        FleetConfig {
            qpus: 4,
            seed: 11,
            cache_capacity: Some(8),
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(11),
    );
    let workload = WorkloadSpec::repeated_topologies(jobs, 2.0, 11).generate();
    // Pre-warm every device's cost memo for every topology size in the
    // workload: a memo miss walks the full ASPEN prediction pipeline
    // (explicitly off the per-event path — see the hot-exempt boundary on
    // `predict_stage1`), and which (device, size) pairs miss depends on
    // the dispatch pattern, not the event count.
    for device in &fleet.devices {
        for lps in [24, 28, 30, 36] {
            device.cost.costs(lps).expect("workload sizes cost cleanly");
        }
    }
    let mut scheduler = policy.build();
    let mut sink = NullSink;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let report = simulate_with_telemetry(
        fleet,
        &workload,
        scheduler.as_mut(),
        &mut AdmitAll,
        SimConfig::default(),
        &mut sink,
        None,
    );
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        report.records.len(),
        jobs,
        "every job must complete under AdmitAll on an open workload"
    );
    after - before
}

/// One throwaway run so lazily-initialized process state (allocator
/// internals, thread-locals) is paid for before any counted window opens.
fn warmup() {
    let _ = allocations_for(PolicyKind::Fifo, 20);
}

fn assert_constant_in_n(policy: PolicyKind) {
    warmup();
    let at_n = allocations_for(policy, 200);
    let at_2n = allocations_for(policy, 400);
    assert_eq!(
        at_n, at_2n,
        "{policy:?}: allocation count must not depend on the event count \
         (got {at_n} at 200 jobs vs {at_2n} at 400 jobs) — something \
         allocates per event",
    );
}

#[test]
fn fifo_dispatch_loop_allocates_independently_of_event_count() {
    assert_constant_in_n(PolicyKind::Fifo);
}

#[test]
fn wfq_dispatch_loop_allocates_independently_of_event_count() {
    assert_constant_in_n(PolicyKind::WeightedFair);
}

#[test]
fn edf_dispatch_loop_allocates_independently_of_event_count() {
    assert_constant_in_n(PolicyKind::EarliestDeadline);
}

#[test]
fn allocation_count_is_deterministic_run_to_run() {
    warmup();
    let first = allocations_for(PolicyKind::Fifo, 200);
    let second = allocations_for(PolicyKind::Fifo, 200);
    assert_eq!(
        first, second,
        "identical runs must perform identical allocation sequences"
    );
}
