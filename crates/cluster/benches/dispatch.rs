//! Criterion bench for the dispatch loop: end-to-end `simulate` throughput.
//!
//! Third layer of the hot-path contract (docs/ARCHITECTURE.md): `sx_lint`'s
//! A-rules prove statically that nothing on the hot path allocates,
//! `tests/alloc_budget.rs` pins the allocation count dynamically, and this
//! bench watches the throughput those two protect.  Groups sweep the fleet
//! size (the dispatch loop's fan-out) under FIFO and then compare policies
//! at a fixed fleet, reporting events/second (each timed iteration replays
//! the same seeded workload, so the event count per iteration is exact).
//!
//! Each iteration rebuilds the fleet — `simulate` consumes it, since warm
//! caches and occupancy are part of the run's state — so the measured time
//! includes fleet construction.  That cost is O(devices), independent of
//! the event count, and identical across policies; at 400 jobs the loop
//! dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use split_exec::SplitExecConfig;
use std::hint::black_box;
use sx_cluster::prelude::*;

const JOBS: usize = 400;
const RATE_HZ: f64 = 2.0;
const SEED: u64 = 11;

fn fleet(qpus: usize) -> Fleet {
    Fleet::new(
        FleetConfig {
            qpus,
            seed: SEED,
            ..FleetConfig::default()
        },
        SplitExecConfig::with_seed(SEED),
    )
}

fn run(policy: PolicyKind, qpus: usize, workload: &Workload) -> SimReport {
    let mut scheduler = policy.build();
    simulate(
        fleet(qpus),
        workload,
        scheduler.as_mut(),
        SimConfig::default(),
    )
}

fn bench_fleet_sizes(c: &mut Criterion) {
    let workload = WorkloadSpec::repeated_topologies(JOBS, RATE_HZ, SEED).generate();
    let mut group = c.benchmark_group("dispatch/fleet_size");
    for qpus in [2usize, 4, 8] {
        let events = run(PolicyKind::Fifo, qpus, &workload).events;
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(qpus), &qpus, |b, &qpus| {
            b.iter(|| black_box(run(PolicyKind::Fifo, qpus, &workload)))
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let workload = WorkloadSpec::repeated_topologies(JOBS, RATE_HZ, SEED).generate();
    let mut group = c.benchmark_group("dispatch/policy");
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::WeightedFair,
        PolicyKind::EarliestDeadline,
    ] {
        let events = run(policy, 4, &workload).events;
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(
            BenchmarkId::new("qpus4", format!("{policy:?}")),
            &policy,
            |b, &policy| b.iter(|| black_box(run(policy, 4, &workload))),
        );
    }
    group.finish();
}

criterion_group!(dispatch, bench_fleet_sizes, bench_policies);
criterion_main!(dispatch);
