//! Criterion bench for Fig. 9(b): stage-2 cost versus desired accuracy.
//!
//! Benchmarks the Stage-2 model walk over the accuracy sweep and the
//! simulated-QPU sampling path sized by Eq. (6), and prints the predicted
//! series (the figure's y-axis values).

use chimera_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubo_ising::Ising;
use split_exec::prelude::*;
use std::hint::black_box;
use sx_bench::fig9b_accuracies;

fn bench_model_walk(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();
    let mut group = c.benchmark_group("fig9b/model_walk");
    for accuracy in [0.9f64, 0.99, 0.9999, 0.999999] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{accuracy}")),
            &accuracy,
            |b, &accuracy| {
                b.iter(|| {
                    let p = predict_stage2(&machine, black_box(accuracy), 0.7).unwrap();
                    black_box(p.total_seconds)
                })
            },
        );
    }
    group.finish();

    eprintln!("\nfig9b predicted stage-2 seconds (p_s = 0.7):");
    for accuracy in fig9b_accuracies() {
        let p = predict_stage2(&machine, accuracy, 0.7).unwrap();
        eprintln!(
            "  pa={accuracy:<10} reads={:<4} seconds={:.4e}",
            p.reads, p.total_seconds
        );
    }
}

fn bench_simulated_sampling(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();
    let logical = Ising::random_on_graph(&generators::cycle(16), 3);
    let mut group = c.benchmark_group("fig9b/simulated_qpu_sampling");
    group.sample_size(10);
    for accuracy in [0.9f64, 0.99, 0.9999] {
        let config = SplitExecConfig::with_seed(5)
            .with_accuracy(accuracy)
            .with_success_probability(0.7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{accuracy}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let r = execute_stage2(&machine, config, black_box(&logical)).unwrap();
                    black_box(r.reads)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(fig9b, bench_model_walk, bench_simulated_sampling);
criterion_main!(fig9b);
