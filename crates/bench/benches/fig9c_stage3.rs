//! Criterion bench for Fig. 9(c): stage-3 cost versus input problem size.
//!
//! Benchmarks the Stage-3 model walk and the real post-processing path
//! (un-embed + rank) for growing ensembles, and prints the predicted series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minor_embed::Embedding;
use qubo_ising::{rank_solutions, Ising};
use split_exec::prelude::*;
use std::hint::black_box;
use sx_bench::fig9c_sizes;

fn bench_model_walk(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();
    let mut group = c.benchmark_group("fig9c/model_walk");
    for n in [10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let p = predict_stage3(&machine, black_box(n), 0.99, 0.75).unwrap();
                black_box(p.total_seconds)
            })
        });
    }
    group.finish();

    eprintln!("\nfig9c predicted stage-3 seconds:");
    for n in fig9c_sizes().into_iter().step_by(4) {
        let p = predict_stage3(&machine, n, 0.99, 0.75).unwrap();
        eprintln!(
            "  n={n:>3}  model={:.4e} s  results={}",
            p.total_seconds, p.results
        );
    }
}

fn bench_measured_sort(c: &mut Criterion) {
    // The measured analogue: rank an ensemble of readout results of growing
    // logical size (4 reads, as Eq. 6 prescribes for pa=0.99, ps=0.75).
    let mut group = c.benchmark_group("fig9c/measured_unembed_and_rank");
    for n in [10usize, 50, 100] {
        let logical = Ising::new(n);
        let embedding = Embedding::from_chains((0..n).map(|v| vec![v]).collect());
        let samples: Vec<Vec<i8>> = (0..4)
            .map(|r| {
                (0..n)
                    .map(|i| if (i + r) % 2 == 0 { 1 } else { -1 })
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let decoded: Vec<Vec<i8>> = samples
                    .iter()
                    .map(|s| minor_embed::unembed_sample(&embedding, s).spins)
                    .collect();
                let (ranked, ops) = rank_solutions(&logical, &decoded);
                black_box((ranked.len(), ops))
            })
        });
    }
    group.finish();
}

criterion_group!(fig9c, bench_model_walk, bench_measured_sort);
criterion_main!(fig9c);
