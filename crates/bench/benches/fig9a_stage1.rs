//! Criterion bench for Fig. 9(a): stage-1 cost versus input problem size.
//!
//! Two benchmark groups mirror the figure's two series: the analytic ASPEN
//! walk of the Stage-1 model (whose *predicted* seconds are the figure's
//! solid line — the bench measures the walk itself, which must stay cheap)
//! and the measured CMR heuristic embedding `K_n` into the 12×12 Chimera
//! lattice (the dashed line).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use split_exec::prelude::*;
use std::hint::black_box;
use sx_bench::measure_cmr_embedding;

fn bench_model_walk(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();
    let mut group = c.benchmark_group("fig9a/model_walk");
    for n in [10usize, 30, 60, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let p = predict_stage1(&machine, black_box(n)).unwrap();
                black_box(p.total_seconds)
            })
        });
    }
    group.finish();

    // Record the predicted values themselves (the figure's y-axis) so the
    // bench output doubles as the data table.
    eprintln!("\nfig9a predicted stage-1 seconds (solid line):");
    for n in [1usize, 10, 30, 60, 100] {
        let p = predict_stage1(&machine, n).unwrap();
        eprintln!(
            "  n={n:>3}  model={:.4e} s  ops={:.3e}",
            p.total_seconds, p.embedding_ops
        );
    }
}

fn bench_measured_embedding(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();
    let mut group = c.benchmark_group("fig9a/measured_cmr_embedding");
    group.sample_size(10);
    for n in [4usize, 6, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(measure_cmr_embedding(&machine, n, 7)))
        });
    }
    group.finish();

    eprintln!("\nfig9a measured CMR embedding seconds (dashed line):");
    for n in [4usize, 6, 8, 10, 12, 14, 16] {
        let m = measure_cmr_embedding(&machine, n, 7);
        eprintln!(
            "  n={n:>3}  measured={:.4e} s  success={}  qubits={}",
            m.seconds, m.success, m.qubits_used
        );
    }
}

criterion_group!(fig9a, bench_model_walk, bench_measured_embedding);
criterion_main!(fig9a);
