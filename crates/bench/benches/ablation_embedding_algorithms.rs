//! Ablation bench: the randomized CMR heuristic versus the deterministic
//! clique embedding.
//!
//! The paper chooses the CMR heuristic for its Stage-1 model because it
//! "permits the largest sized input problems to be programmed"; the
//! complete-graph construction is the deterministic baseline that uses
//! `O(n²)` qubits regardless of input sparsity.  This bench measures the time
//! of both and prints their qubit usage for sparse and dense inputs.

use chimera_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minor_embed::prelude::*;
use split_exec::prelude::*;
use std::hint::black_box;

fn bench_cmr_vs_clique(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();

    let mut group = c.benchmark_group("ablation_embedding/cmr");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let input = generators::complete(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let out = find_embedding(
                    black_box(input),
                    &machine.hardware,
                    &CmrConfig::with_seed(3),
                );
                black_box(out.map(|o| o.embedding.qubits_used()).unwrap_or(0))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_embedding/clique");
    for n in [8usize, 12, 16, 32, 48] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let out = clique_embedding(black_box(n), &machine.chimera).unwrap();
                black_box(out.embedding.qubits_used())
            })
        });
    }
    group.finish();

    eprintln!("\nablation: qubit usage, CMR heuristic vs clique construction:");
    for (name, input) in [
        ("K6", generators::complete(6)),
        ("cycle-24", generators::cycle(24)),
        ("grid-5x5", generators::grid(5, 5)),
    ] {
        let cmr = find_embedding(&input, &machine.hardware, &CmrConfig::with_seed(3)).unwrap();
        let clique = clique_embedding(input.vertex_count(), &machine.chimera).unwrap();
        eprintln!(
            "  {name:<10} n={:<3} CMR qubits={:<5} (max chain {})  clique qubits={:<5} (max chain {})",
            input.vertex_count(),
            cmr.embedding.qubits_used(),
            cmr.embedding.max_chain_length(),
            clique.embedding.qubits_used(),
            clique.embedding.max_chain_length()
        );
    }
}

criterion_group!(ablation_embedding, bench_cmr_vs_clique);
criterion_main!(ablation_embedding);
