//! Ablation bench: inline embedding versus the offline embedding lookup
//! table the paper proposes in Sec. 3.3.
//!
//! Measures (a) the inline CMR embedding cost per problem family, (b) the
//! warm-cache lookup cost, and (c) the end-to-end stage-1 cost with and
//! without the cache — quantifying how much of the stage-1 bottleneck the
//! lookup table removes (everything except the fixed electronics programming
//! constant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use split_exec::prelude::*;
use std::hint::black_box;
use sx_bench::ablation_inputs;

fn bench_inline_vs_cached(c: &mut Criterion) {
    let machine = SplitMachine::paper_default();
    let config = SplitExecConfig::with_seed(23);

    let mut group = c.benchmark_group("ablation_offline/inline_embedding");
    group.sample_size(10);
    for (name, graph) in ablation_inputs(23) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| {
                // A fresh cache every iteration: always a miss (inline cost).
                let cache = EmbeddingCache::new();
                let qubits = cache
                    .get_or_compute(black_box(graph), &machine, &config)
                    .map(|r| r.embedding.qubits_used())
                    .unwrap_or(0);
                black_box(qubits)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_offline/warm_cache_lookup");
    for (name, graph) in ablation_inputs(23) {
        // Pre-warm a cache once, outside the measurement loop; skip inputs
        // the heuristic cannot embed with this budget.
        let cache = EmbeddingCache::new();
        if cache.get_or_compute(&graph, &machine, &config).is_err() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| {
                let hit = cache
                    .get_or_compute(black_box(graph), &machine, &config)
                    .map(|r| r.cache_hit)
                    .unwrap_or(false);
                black_box(hit)
            })
        });
    }
    group.finish();

    // Print the summary numbers used in EXPERIMENTS.md.
    eprintln!("\nablation: inline embedding vs warm lookup (seconds per call):");
    for (name, graph) in ablation_inputs(23) {
        let cache = EmbeddingCache::new();
        let Ok(cold) = cache.get_or_compute(&graph, &machine, &config) else {
            eprintln!("  {name:<14} embedding failed with the default budget; skipped");
            continue;
        };
        let warm_start = std::time::Instant::now();
        let _ = cache.get_or_compute(&graph, &machine, &config);
        let warm = warm_start.elapsed().as_secs_f64();
        eprintln!(
            "  {name:<14} inline={:.4e}  warm={:.4e}  speedup={:.1}x",
            cold.seconds,
            warm,
            cold.seconds / warm.max(1e-12)
        );
    }
}

criterion_group!(ablation_offline, bench_inline_vs_cached);
criterion_main!(ablation_offline);
