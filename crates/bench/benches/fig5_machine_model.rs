//! Criterion bench for the Fig. 5 machine-model path: parsing the published
//! listing, resolving it against the built-in component library, and
//! converting resource demands to time.  These operations sit on the critical
//! path of every prediction, so they must remain cheap.

use aspen_model::machine::MachineModel;
use aspen_model::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_parse_and_resolve(c: &mut Criterion) {
    c.bench_function("fig5/parse_machine_listing", |b| {
        b.iter(|| {
            let doc = parse_document(black_box(aspen_model::listings::MACHINE_LISTING)).unwrap();
            black_box(doc.declaration_count())
        })
    });

    let doc = parse_document(aspen_model::listings::MACHINE_LISTING).unwrap();
    c.bench_function("fig5/resolve_simple_node", |b| {
        b.iter(|| {
            let machine =
                MachineModel::from_document(black_box(&doc), "SimpleNode", &BuiltinLibrary)
                    .unwrap();
            black_box(machine.property("qpu_qubits"))
        })
    });
}

fn bench_resource_conversion(c: &mut Criterion) {
    let machine = simple_node(QpuGeneration::Dw2x);
    c.bench_function("fig5/flops_to_seconds", |b| {
        b.iter(|| {
            machine
                .seconds_for(
                    black_box("flops"),
                    black_box(1e12),
                    &["sp".into(), "simd".into()],
                )
                .unwrap()
        })
    });
    c.bench_function("fig5/quops_to_seconds", |b| {
        b.iter(|| {
            machine
                .seconds_for(black_box("QuOps"), black_box(1000.0), &[])
                .unwrap()
        })
    });
}

fn bench_stage_listing_parses(c: &mut Criterion) {
    c.bench_function("fig5/parse_all_stage_listings", |b| {
        b.iter(|| {
            for src in [
                aspen_model::listings::STAGE1_LISTING,
                aspen_model::listings::STAGE2_LISTING,
                aspen_model::listings::STAGE3_LISTING,
            ] {
                black_box(parse_model(black_box(src)).unwrap());
            }
        })
    });
}

criterion_group!(
    fig5,
    bench_parse_and_resolve,
    bench_resource_conversion,
    bench_stage_listing_parses
);
criterion_main!(fig5);
