//! Ablation bench: the simulated QPU's sampling throughput and the effect of
//! schedule length on solution quality (the `p_s` knob that feeds Eq. 6).
//!
//! The paper treats the per-read success probability as a hardware
//! characteristic; in the simulated QPU it is set by the annealing schedule,
//! so this bench quantifies the cost/quality trade-off of the substitution.

use chimera_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quantum_anneal::prelude::*;
use quantum_anneal::sa::{anneal_once, CompiledIsing};
use qubo_ising::{solve_ising_exact, Ising};
use std::hint::black_box;

fn bench_single_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("annealer/single_read");
    for n in [64usize, 256, 512] {
        let graph = generators::gnp(n, 8.0 / n as f64, 3);
        let model = Ising::random_on_graph(&graph, 5);
        let compiled = CompiledIsing::new(&model);
        let schedule = AnnealSchedule::default();
        group.throughput(Throughput::Elements((n * schedule.sweeps) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &compiled, |b, compiled| {
            b.iter(|| black_box(anneal_once(compiled, &schedule, 9).energy))
        });
    }
    group.finish();
}

fn bench_batched_reads(c: &mut Criterion) {
    let graph = generators::gnp(128, 0.06, 7);
    let model = Ising::random_on_graph(&graph, 11);
    let mut group = c.benchmark_group("annealer/batched_reads");
    group.sample_size(10);
    for reads in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(reads), &reads, |b, &reads| {
            let qpu = SimulatedQpu::with_schedule(AnnealSchedule::fast());
            b.iter(|| black_box(qpu.sample(&model, reads, 1).num_reads()))
        });
    }
    group.finish();
}

fn report_success_probability_vs_sweeps(_c: &mut Criterion) {
    // Not a timing benchmark: records the empirical p_s as a function of the
    // schedule length so EXPERIMENTS.md can relate the simulated QPU to the
    // paper's assumed characteristic success probabilities.
    let graph = generators::gnp(16, 0.4, 13);
    let model = Ising::random_on_graph(&graph, 17);
    let (exact, _, _) = solve_ising_exact(&model);
    eprintln!("\nempirical per-read success probability vs schedule sweeps (16-spin instance):");
    for sweeps in [16usize, 64, 256, 1024] {
        let qpu = SimulatedQpu::with_schedule(AnnealSchedule::default().with_sweeps(sweeps));
        let samples = qpu.sample(&model, 64, 3);
        let est = estimate_success_probability(&samples.energies(), exact, 1e-9);
        eprintln!(
            "  sweeps={sweeps:<5} p_s={:.3} ({} of {} reads hit the exact optimum)",
            est.p_success, est.hits, est.reads
        );
    }
}

criterion_group!(
    annealer,
    bench_single_read,
    bench_batched_reads,
    report_success_probability_vs_sweeps
);
criterion_main!(annealer);
