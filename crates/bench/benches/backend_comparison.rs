//! Ablation bench: the three built-in stage-2 sampler backends on the same
//! embedded-scale workload.
//!
//! Quantifies the cost of swapping the QPU stand-in: simulated annealing
//! (the default), parallel tempering (a stronger classical sampler, higher
//! `p_s` per read at more simulation cost) and exact enumeration (the oracle
//! for small programs).  `SX_BACKEND` does not apply here — the point of
//! this bench is to sweep all kinds side by side.

use chimera_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quantum_anneal::prelude::*;
use qubo_ising::Ising;
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let model = Ising::random_on_graph(&generators::gnp(16, 0.3, 7), 9);
    let mut group = c.benchmark_group("backends/sample_16spin");
    group.sample_size(10);
    for kind in BackendKind::all() {
        let backend = kind.build();
        let params = SampleParams::new(8, 3);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &params, |b, params| {
            b.iter(|| {
                let set = backend.sample(black_box(&model), params).unwrap();
                black_box(set.num_reads())
            })
        });
    }
    group.finish();

    // Not a timing benchmark: record each backend's solution quality on the
    // same instance so EXPERIMENTS.md can relate `p_s` to backend choice.
    let (exact_energy, _, _) = qubo_ising::solve_ising_exact(&model);
    eprintln!("\nbest energy over 8 reads (exact optimum {exact_energy:.4}):");
    for kind in BackendKind::all() {
        let set = kind
            .build()
            .sample(&model, &SampleParams::new(8, 3))
            .unwrap();
        eprintln!("  {kind:<22} {:.4}", set.best_energy().unwrap());
    }
}

criterion_group!(backends, bench_backends);
criterion_main!(backends);
