//! # sx-bench — benchmark harness and figure regeneration
//!
//! Shared helpers for the Criterion benches and the figure-regeneration
//! binaries.  Every table and figure of the paper's evaluation has a
//! corresponding bench target or binary (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for the recorded results):
//!
//! | Paper artifact | Target |
//! |---|---|
//! | Fig. 1 (architectures) | `--bin architectures` |
//! | Fig. 3 (Chimera graph) | `--bin fig3_chimera` |
//! | Fig. 5 (machine model) | `--bin fig5_machine_model`, bench `fig5_machine_model` |
//! | Fig. 6 / 9(a) (stage 1) | `--bin fig9a`, bench `fig9a_stage1` |
//! | Fig. 7 / 9(b) (stage 2) | `--bin fig9b`, bench `fig9b_stage2` |
//! | Fig. 8 / 9(c) (stage 3) | `--bin fig9c`, bench `fig9c_stage3` |
//! | Stage-dominance conclusion | `--bin stage_breakdown` |
//! | Batch amortization (Sec. 3.3) | `--bin batch_throughput` |
//! | Fleet-scale scheduling (`sx_cluster`) | `--bin cluster_sim` |
//! | Ablations | benches `ablation_offline_embedding`, `ablation_embedding_algorithms`, `annealer_sampling`, `backend_comparison` |
//!
//! Binaries that execute stage 2 accept `--backend=<sa|pt|exact>` (or the
//! `SX_BACKEND` environment variable) to swap the sampler backend without
//! recompiling; see [`backend_from_env_args`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use chimera_graph::generators;
use chimera_graph::Graph;
use minor_embed::{find_embedding, CmrConfig, CmrOutcome, EmbedError};
use quantum_anneal::BackendKind;
use split_exec::prelude::*;
use std::time::Instant;

/// Resolve the stage-2 sampler backend for a binary or bench from, in order
/// of precedence: a `--backend=<name>` / `--backend <name>` CLI argument,
/// the `SX_BACKEND` environment variable, and finally the default
/// (simulated annealing).  Accepted names are those of
/// [`BackendKind`]'s `FromStr` (`sa`, `pt`, `exact`, long forms included).
///
/// Unknown names abort with a message listing the accepted ones, so a typo
/// in a sweep script fails loudly instead of silently benchmarking the
/// wrong backend.
pub fn backend_from_env_args() -> BackendKind {
    let mut args = std::env::args().skip(1);
    let mut named: Option<String> = None;
    while let Some(arg) = args.next() {
        if let Some(value) = arg.strip_prefix("--backend=") {
            named = Some(value.to_string());
        } else if arg == "--backend" {
            // A trailing `--backend` with no value is a mistake; surface it
            // as an unknown-name error instead of silently using the default.
            named = Some(args.next().unwrap_or_default());
        }
    }
    let source = named.or_else(|| std::env::var("SX_BACKEND").ok());
    match source {
        None => BackendKind::default(),
        Some(name) => name.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
    }
}

/// The problem sizes swept by the Fig. 9(a) model line (the paper uses
/// n = 1..100).
pub fn fig9a_model_sizes() -> Vec<usize> {
    (1..=100).collect()
}

/// The problem sizes for which the measured CMR line is produced.  The
/// paper's reference data covers n = 1..30; our reimplementation of the CMR
/// heuristic reliably embeds complete graphs only up to K6-K12 on the
/// 1152-qubit lattice (see EXPERIMENTS.md), so the sweep stops at 16 and
/// failed attempts are reported with `success = false`.
pub fn fig9a_measured_sizes() -> Vec<usize> {
    (2..=16).step_by(2).collect()
}

/// The accuracy grid of Fig. 9(b).
pub fn fig9b_accuracies() -> Vec<f64> {
    vec![
        0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999, 0.99999, 0.999999,
    ]
}

/// The problem sizes of Fig. 9(c).
pub fn fig9c_sizes() -> Vec<usize> {
    (1..=100).step_by(3).collect()
}

/// One point of the Fig. 9(a) measured series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredEmbedding {
    /// Complete-graph size.
    pub n: usize,
    /// Wall-clock seconds of the CMR heuristic.
    pub seconds: f64,
    /// Whether an overlap-free embedding was found.
    pub success: bool,
    /// Hardware qubits used (0 on failure).
    pub qubits_used: usize,
}

/// Measure the CMR heuristic embedding `K_n` into the given machine's
/// hardware graph.  Failures are reported (with their elapsed time) rather
/// than panicking so sweeps degrade gracefully near the hardware capacity.
pub fn measure_cmr_embedding(machine: &SplitMachine, n: usize, seed: u64) -> MeasuredEmbedding {
    let input = generators::complete(n);
    let config = CmrConfig {
        seed,
        tries: 6,
        max_passes: 12,
        ..CmrConfig::default()
    };
    let start = Instant::now();
    let outcome: Result<CmrOutcome, EmbedError> =
        find_embedding(&input, &machine.hardware, &config);
    let seconds = start.elapsed().as_secs_f64();
    match outcome {
        Ok(ok) => MeasuredEmbedding {
            n,
            seconds,
            success: true,
            qubits_used: ok.embedding.qubits_used(),
        },
        Err(_) => MeasuredEmbedding {
            n,
            seconds,
            success: false,
            qubits_used: 0,
        },
    }
}

/// Build the logical input graphs used by the embedding-algorithm ablation.
pub fn ablation_inputs(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("complete-6", generators::complete(6)),
        ("cycle-24", generators::cycle(24)),
        ("grid-5x5", generators::grid(5, 5)),
        ("gnp-16-0.3", generators::gnp(16, 0.3, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grids_are_nonempty_and_sorted() {
        assert_eq!(fig9a_model_sizes().len(), 100);
        assert!(fig9a_measured_sizes().windows(2).all(|w| w[0] < w[1]));
        assert!(fig9b_accuracies().windows(2).all(|w| w[0] < w[1]));
        assert!(!fig9c_sizes().is_empty());
    }

    #[test]
    fn measured_embedding_succeeds_for_small_cliques() {
        let machine = SplitMachine::paper_default();
        let m = measure_cmr_embedding(&machine, 6, 1);
        assert!(m.success);
        assert!(m.qubits_used >= 6);
        assert!(m.seconds > 0.0);
    }

    #[test]
    fn ablation_inputs_are_connected() {
        for (name, graph) in ablation_inputs(3) {
            assert!(graph.vertex_count() > 0, "{name}");
            assert!(chimera_graph::metrics::is_connected(&graph), "{name}");
        }
    }
}
