//! Batch-submission throughput: the amortization argument, measured.
//!
//! The paper's Sec. 3.3 proposes off-line embedding as the remedy for the
//! stage-1 bottleneck.  This binary quantifies it end to end: a batch of
//! MAX-CUT jobs over a shared topology family is pushed through
//! `Pipeline::execute_batch`, and the per-job wall time is compared against
//! submitting each job alone (cold embedding every time).
//!
//! ```text
//! cargo run --release -p sx-bench --bin batch_throughput [--backend=sa|pt|exact]
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use qubo_ising::Qubo;
use split_exec::prelude::*;
use std::time::Instant;
use sx_bench::backend_from_env_args;

fn weighted_cycle(n: usize, weight: f64) -> Qubo {
    let graph = generators::cycle(n);
    let weights: Vec<((usize, usize), f64)> =
        graph.edges().map(|(u, v)| ((u, v), weight)).collect();
    MaxCut::weighted(graph.clone(), &weights).to_qubo()
}

fn main() {
    let backend = backend_from_env_args();
    let config = SplitExecConfig::with_seed(29).with_backend(backend);
    let pipeline = Pipeline::new(SplitMachine::paper_default(), config);

    // 24 jobs over 3 distinct topologies: the shape of a production queue
    // re-solving problem families with fresh coefficients.
    let jobs: Vec<Qubo> = (0..24)
        .map(|i| weighted_cycle(8 + 2 * (i % 3), 1.0 + i as f64))
        .collect();

    println!("# batch throughput, stage-2 backend: {backend}");

    let start = Instant::now();
    let solo_ok = jobs
        .iter()
        .filter(|qubo| pipeline.execute(qubo).is_ok())
        .count();
    let solo_seconds = start.elapsed().as_secs_f64();

    let report = pipeline.execute_batch_report(&jobs);

    println!(
        "serial cold submission: {solo_ok}/{} jobs in {solo_seconds:.3}s ({:.1} jobs/s)",
        jobs.len(),
        solo_ok as f64 / solo_seconds
    );
    println!(
        "batch submission:       {}/{} jobs in {:.3}s ({:.1} jobs/s)",
        report.succeeded,
        report.jobs,
        report.wall_seconds,
        report.succeeded as f64 / report.wall_seconds
    );
    println!(
        "embedding cache: {} misses, {} hits ({:.0}% of stage-1 embeddings amortized)",
        report.embedding_cache.misses,
        report.embedding_cache.hits,
        100.0 * report.embedding_cache.hit_rate()
    );
    println!(
        "modeled stage split: stage1 {:.2e}s, stage2 {:.2e}s, stage3 {:.2e}s (stage-1 share {:.1}%)",
        report.stage1_seconds,
        report.stage2_seconds,
        report.stage3_seconds,
        100.0 * report.stage1_fraction()
    );
    println!(
        "speedup: {:.1}x wall-clock over serial cold submission",
        solo_seconds / report.wall_seconds
    );
}
