//! Print the paper's Fig. 6 (Stage-1 ASPEN model) and evaluate it at a few
//! representative problem sizes.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig6_stage1_model
//! ```

use split_exec::prelude::*;

fn main() {
    println!("# Fig. 6: Stage-1 application model listing");
    println!("{}", aspen_model::listings::STAGE1_LISTING.trim());

    let machine = SplitMachine::paper_default();
    println!("\n# evaluation on the SimpleNode machine");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>16}",
        "LPS", "init data [s]", "embed [s]", "proc init [s]", "total [s]"
    );
    for lps in [1usize, 10, 30, 50, 100] {
        let p = predict_stage1(&machine, lps).expect("prediction");
        println!(
            "{:>6} {:>16.6e} {:>16.6e} {:>16.6e} {:>16.6e}",
            lps,
            p.initialize_data_seconds,
            p.embed_seconds,
            p.processor_initialize_seconds,
            p.total_seconds
        );
    }
}
