//! `sx_lint` — CLI for the determinism-contract static analyzer.
//!
//! Walks the workspace, applies the rule catalog of [`sx_lint::RuleId`]
//! (including the flow-aware hot-path A-rules), honors inline allow
//! comments (see [`sx_lint::Suppression`]) and the `lint.allow`
//! grandfather file at the workspace root, and exits nonzero on any
//! unsuppressed finding.  CI runs it on every build:
//!
//! ```text
//! cargo run --release -p sx-bench --bin sx_lint -- --format human
//! ```
//!
//! Flags:
//!
//! * `--format human|json` — report format (default `human`);
//! * `--root <dir>` — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`);
//! * `--allowlist <file>` — grandfather file (default `<root>/lint.allow`);
//! * `--baseline <file>` — compare against a finding baseline and fail
//!   only on *regressions* (cells whose unsuppressed count grew);
//! * `--write-baseline <file>` — snapshot the current unsuppressed
//!   findings to `<file>` and exit 0.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "human" || f == "json" => format = f.clone(),
                _ => return usage("--format takes `human` or `json`"),
            },
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage("--root takes a directory"),
            },
            "--allowlist" => match it.next() {
                Some(a) => allowlist = Some(PathBuf::from(a)),
                None => return usage("--allowlist takes a file"),
            },
            "--baseline" => match it.next() {
                Some(b) => baseline = Some(PathBuf::from(b)),
                None => return usage("--baseline takes a file"),
            },
            "--write-baseline" => match it.next() {
                Some(b) => write_baseline = Some(PathBuf::from(b)),
                None => return usage("--write-baseline takes a file"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if baseline.is_some() && write_baseline.is_some() {
        return usage("--baseline and --write-baseline are mutually exclusive");
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("sx_lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let allow_entries = {
        let path = allowlist.unwrap_or_else(|| root.join(sx_lint::ALLOWLIST_FILE));
        match std::fs::read_to_string(&path) {
            Ok(text) => match sx_lint::parse_allowlist(&text) {
                Ok(entries) => entries,
                Err(err) => {
                    eprintln!("sx_lint: {err}");
                    return ExitCode::from(2);
                }
            },
            Err(_) => Vec::new(),
        }
    };

    let report = match sx_lint::lint_workspace(&root, &allow_entries) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sx_lint: {err}");
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!("{}", report.json()),
        _ => print!("{}", report.human()),
    }

    if let Some(path) = write_baseline {
        let snapshot = sx_lint::Baseline::from_report(&report);
        if let Err(err) = std::fs::write(&path, snapshot.to_json()) {
            eprintln!("sx_lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "sx_lint: wrote baseline ({} cell(s)) to {}",
            snapshot.entries.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("sx_lint: reading {}: {err}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match sx_lint::Baseline::parse(&text) {
            Ok(base) => base,
            Err(err) => {
                eprintln!("sx_lint: {}: {err}", path.display());
                return ExitCode::from(2);
            }
        };
        let regs = sx_lint::regressions(&report, &base);
        if regs.is_empty() {
            eprintln!("sx_lint: no new findings vs baseline {}", path.display());
            return ExitCode::SUCCESS;
        }
        for r in &regs {
            eprintln!(
                "sx_lint: new findings: {} in {} ({} now, {} baselined)",
                r.rule, r.file, r.current, r.baselined
            );
        }
        return ExitCode::FAILURE;
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("sx_lint: {err}");
    }
    eprintln!(
        "usage: sx_lint [--format human|json] [--root <dir>] [--allowlist <file>] \
         [--baseline <file> | --write-baseline <file>]"
    );
    ExitCode::from(if err.is_empty() { 0 } else { 2 })
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|text| text.contains("[workspace]"))
        .unwrap_or(false)
}
