//! Regenerate Fig. 1: the three architectural models for integrating a QPU
//! into a host HPC system, with the simple capacity/contention argument that
//! motivates the paper's focus on the asymmetric design.
//!
//! ```text
//! cargo run --release -p sx-bench --bin architectures
//! ```

use split_exec::prelude::*;

fn main() {
    println!("# Fig. 1: QPU integration architectures");
    let total_nodes = 64;
    println!(
        "{:<32} {:>14} {:>20}",
        "architecture", "nodes per QPU", "QPU contention factor"
    );
    for arch in Architecture::all() {
        let nodes_per_qpu = arch.nodes_per_qpu(total_nodes);
        println!(
            "{:<32} {:>14} {:>20}",
            arch.label(),
            nodes_per_qpu,
            nodes_per_qpu
        );
    }

    println!(
        "\nThe paper analyzes (a), the asymmetric multi-processor: current D-Wave\n\
         infrastructure (dilution refrigerator, shielding, client-server access over a LAN)\n\
         prevents tighter integration, so a single loosely coupled QPU serves the host system."
    );

    // Show the default machine built for that architecture.
    let machine = SplitMachine::paper_default();
    println!(
        "\ndefault machine: {} / {:?} QPU with {} qubits on a {}x{} Chimera lattice",
        machine.architecture.label(),
        machine.qpu,
        machine.usable_qubits(),
        machine.lattice_dims().0,
        machine.lattice_dims().1
    );
}
