//! Regenerate Fig. 5: the ASPEN machine model for the CPU+GPU+QPU node.
//!
//! Parses the paper's machine-model listing, resolves it against the built-in
//! hardware component library (standing in for the `include` tree), and
//! prints the resolved resource rates of the `SimpleNode` machine.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig5_machine_model
//! ```

use aspen_model::machine::MachineModel;
use aspen_model::prelude::*;

fn main() {
    println!("# Fig. 5: ASPEN machine model listing");
    println!("{}", aspen_model::listings::MACHINE_LISTING.trim());

    let doc = parse_document(aspen_model::listings::MACHINE_LISTING)
        .expect("the published listing parses");
    let machine = MachineModel::from_document(&doc, "SimpleNode", &BuiltinLibrary)
        .expect("the listing resolves against the built-in component library");

    println!("\n# resolved machine `{}`", machine.name);
    println!(
        "{:<16} {:<22} {:>18}",
        "resource", "provider", "units per second"
    );
    for rate in machine.rates() {
        println!(
            "{:<16} {:<22} {:>18.4e}",
            rate.name,
            rate.provider,
            rate.nominal_units_per_second()
        );
    }

    println!("\n# machine properties");
    for (name, value) in &machine.properties {
        println!("{name:<24} {value:.4e}");
    }

    // The headline number of the figure: one quantum operation (anneal)
    // costs 20 microseconds.
    let quop = machine.seconds_for("QuOps", 1.0, &[]).unwrap();
    println!("\none QuOp (anneal) = {} microseconds", quop * 1e6);
}
