//! Print the paper's Fig. 7 (Stage-2 ASPEN model) and evaluate it over the
//! accuracy input.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig7_stage2_model
//! ```

use split_exec::prelude::*;

fn main() {
    println!("# Fig. 7: Stage-2 application model listing");
    println!("{}", aspen_model::listings::STAGE2_LISTING.trim());

    let machine = SplitMachine::paper_default();
    println!("\n# evaluation on the SimpleNode machine (p_s = 0.7)");
    println!("{:>12} {:>8} {:>16}", "accuracy", "reads", "total [s]");
    for accuracy in [0.5, 0.9, 0.99, 0.999, 0.9999, 0.999999] {
        let p = predict_stage2(&machine, accuracy, 0.7).expect("prediction");
        println!(
            "{:>12.6} {:>8} {:>16.6e}",
            accuracy, p.reads, p.total_seconds
        );
    }
}
