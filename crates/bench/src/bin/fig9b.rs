//! Regenerate Fig. 9(b): stage-2 timing versus desired solution accuracy.
//!
//! Prints the predicted stage-2 time as a function of the accuracy `p_a` for
//! `p_s = 0.7` (the paper's plotted value) and for a band of other success
//! probabilities demonstrating the insensitivity for `p_s > 0.6`.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig9b
//! ```

use split_exec::prelude::*;
use sx_bench::fig9b_accuracies;

fn main() {
    let machine = SplitMachine::paper_default();
    let success_probabilities = [0.6, 0.7, 0.8, 0.9, 0.99];

    println!("# Fig. 9(b): stage-2 time vs desired accuracy");
    let header: Vec<String> = std::iter::once("accuracy".to_string())
        .chain(
            success_probabilities
                .iter()
                .map(|ps| format!("seconds_ps_{ps}")),
        )
        .chain(std::iter::once("reads_ps_0.7".to_string()))
        .collect();
    println!("{}", header.join(","));

    for accuracy in fig9b_accuracies() {
        let mut row = vec![format!("{accuracy}")];
        let mut reads_at_07 = 0;
        for &ps in &success_probabilities {
            let p = predict_stage2(&machine, accuracy, ps).expect("stage-2 prediction");
            if (ps - 0.7).abs() < 1e-9 {
                reads_at_07 = p.reads;
            }
            row.push(format!("{:.9e}", p.total_seconds));
        }
        row.push(reads_at_07.to_string());
        println!("{}", row.join(","));
    }

    let spread_low = predict_stage2(&machine, 0.99, 0.6).unwrap().total_seconds;
    let spread_high = predict_stage2(&machine, 0.99, 0.99).unwrap().total_seconds;
    eprintln!(
        "at accuracy 0.99 the stage-2 time varies only {:.0}% across p_s in [0.6, 0.99]; \
         every point stays below a millisecond, far beneath the stage-1 cost.",
        100.0 * (spread_low - spread_high).abs() / spread_high
    );
}
