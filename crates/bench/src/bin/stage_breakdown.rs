//! Regenerate the paper's stage-dominance conclusion (Sec. 3.3 / Sec. 4):
//! the full three-stage breakdown, predicted for a sweep of problem sizes and
//! measured for executable sizes, showing that stage 1 dominates and that its
//! share grows with the input.
//!
//! ```text
//! cargo run --release -p sx-bench --bin stage_breakdown
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use split_exec::prelude::*;
use sx_bench::backend_from_env_args;

fn main() {
    let backend = backend_from_env_args();
    let config = SplitExecConfig::with_seed(17).with_backend(backend);
    let pipeline = Pipeline::new(SplitMachine::paper_default(), config);
    println!("# stage-2 backend: {backend} (select with --backend=<sa|pt|exact> or SX_BACKEND)");

    println!("# predicted three-stage breakdown (ASPEN walk), n = 10..100");
    let mut rows = Vec::new();
    for n in (10..=100).step_by(10) {
        let p = pipeline.predict(n).expect("prediction");
        rows.push(BreakdownRow::from_prediction(&p));
    }
    println!("{}", breakdown_table(&rows));

    println!("# measured breakdown for executable MAX-CUT workloads");
    let mut rows = Vec::new();
    for n in [8usize, 12, 16, 20, 24] {
        let qubo = MaxCut::unweighted(generators::cycle(n)).to_qubo();
        match pipeline.execute(&qubo) {
            Ok(report) => rows.push(BreakdownRow::from_execution(n, &report)),
            Err(e) => eprintln!("n={n}: {e}"),
        }
    }
    println!("{}", breakdown_table(&rows));

    println!(
        "conclusion: in both the analytic and the executed paths the classical stage-1\n\
         pre-processing (embedding + programming) exceeds the quantum stage-2 execution by\n\
         orders of magnitude — the bottleneck lies at the quantum-classical interface, and the\n\
         primary time cost is independent of quantum processor behaviour."
    );
}
