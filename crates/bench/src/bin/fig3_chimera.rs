//! Regenerate Fig. 3: the Chimera hardware connectivity graph.
//!
//! The paper's figure shows the 512-qubit (8×8 cell) Vesuvius lattice and
//! notes the 1152-qubit (12×12) successor.  This binary prints the structural
//! statistics of both lattices — qubit and coupler counts, degree
//! distribution, diameter — and an adjacency dump of a single unit cell so
//! the bipartite K4,4 structure is visible.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig3_chimera
//! ```

use chimera_graph::{metrics, Chimera};

fn describe(name: &str, chimera: &Chimera) {
    let g = chimera.graph();
    let stats = metrics::stats(g);
    println!(
        "{name}: C({}, {}, {}) -> {} qubits, {} couplers",
        chimera.rows(),
        chimera.cols(),
        chimera.shore_size(),
        chimera.qubit_count(),
        chimera.coupler_count()
    );
    println!(
        "  degree: min {} / avg {:.2} / max {} (interior qubits have L+2 = {} neighbors)",
        stats.min_degree,
        stats.average_degree,
        stats.max_degree,
        chimera.shore_size() + 2
    );
    println!(
        "  connected: {}, diameter {} hops, density {:.4}",
        stats.components == 1,
        metrics::diameter(g),
        stats.density
    );
}

fn main() {
    println!("# Fig. 3: D-Wave Chimera hardware connectivity");
    let vesuvius = Chimera::dw2_vesuvius();
    let dw2x = Chimera::dw2x();
    describe("D-Wave Two (Vesuvius)", &vesuvius);
    describe("D-Wave 2X", &dw2x);

    println!("\nunit cell (0,0) of the Vesuvius lattice — complete bipartite K4,4:");
    let cell = vesuvius.cell(0, 0);
    for &q in &cell {
        let neighbors: Vec<usize> = vesuvius
            .graph()
            .neighbors(q)
            .filter(|n| cell.contains(n))
            .collect();
        let coord = vesuvius.coord(q);
        println!(
            "  qubit {q:>3} ({:?} k={}) <-> {:?}",
            coord.side, coord.k, neighbors
        );
    }

    println!("\ninter-cell couplers from cell (0,0): vertical to (1,0), horizontal to (0,1)");
    for &q in &cell {
        let external: Vec<usize> = vesuvius
            .graph()
            .neighbors(q)
            .filter(|n| !cell.contains(n))
            .collect();
        if !external.is_empty() {
            println!("  qubit {q:>3} -> {external:?}");
        }
    }
}
