//! Print the paper's Fig. 8 (Stage-3 ASPEN model) and evaluate it over the
//! input size.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig8_stage3_model
//! ```

use split_exec::prelude::*;

fn main() {
    println!("# Fig. 8: Stage-3 application model listing");
    println!("{}", aspen_model::listings::STAGE3_LISTING.trim());

    let machine = SplitMachine::paper_default();
    println!("\n# evaluation on the SimpleNode machine (p_s = 0.75, p_a = 0.99)");
    println!("{:>6} {:>8} {:>16}", "LPS", "results", "total [s]");
    for lps in [1usize, 10, 25, 50, 75, 100] {
        let p = predict_stage3(&machine, lps, 0.99, 0.75).expect("prediction");
        println!("{:>6} {:>8} {:>16.6e}", lps, p.results, p.total_seconds);
    }
}
