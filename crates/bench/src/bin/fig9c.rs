//! Regenerate Fig. 9(c): stage-3 timing versus input problem size.
//!
//! Prints the predicted stage-3 (post-processing/sort) time as a function of
//! the logical problem size, plus a measured series obtained by actually
//! un-embedding and ranking a sampled ensemble at each size.
//!
//! ```text
//! cargo run --release -p sx-bench --bin fig9c
//! ```

use chimera_graph::generators;
use qubo_ising::prelude::MaxCut;
use split_exec::prelude::*;
use sx_bench::{backend_from_env_args, fig9c_sizes};

fn main() {
    let machine = SplitMachine::paper_default();

    println!("# Fig. 9(c): stage-3 time vs input problem size");
    println!("# series 1: ASPEN model (heapsort of readout results)");
    println!("n,model_seconds");
    for n in fig9c_sizes() {
        let p = predict_stage3(&machine, n, 0.99, 0.75).expect("stage-3 prediction");
        println!("{n},{:.9e}", p.total_seconds);
    }

    println!();
    let backend = backend_from_env_args();
    println!("# series 2: measured un-embed + sort of a sampled ensemble (cycle graphs)");
    println!("# stage-2 backend: {backend}");
    println!("n,measured_seconds,chain_breaks");
    let config = SplitExecConfig::with_seed(5).with_backend(backend);
    let pipeline = Pipeline::new(machine, config);
    for n in [4usize, 8, 12, 16, 20, 24] {
        let qubo = MaxCut::unweighted(generators::cycle(n)).to_qubo();
        match pipeline.execute(&qubo) {
            Ok(report) => println!(
                "{n},{:.9e},{}",
                report.stage3.measured_seconds, report.stage3.chain_breaks
            ),
            Err(e) => eprintln!("n={n}: {e}"),
        }
    }

    eprintln!(
        "both series stay in the sub-millisecond range and grow roughly linearly with n, \
         making stage 3 a negligible contribution to the time-to-solution."
    );
}
