//! Datacenter simulation: scheduling policies and cache-eviction sweeps.
//!
//! Two modes:
//!
//! * `--mode compare` (default) — replays a stream of QUBO jobs against a
//!   fleet of simulated QPUs (each with its own fault map) under each
//!   scheduling policy, on the same seeds, and prints a comparison table —
//!   the fleet-scale version of the paper's performance model.  The run
//!   demonstrates the two acceptance claims of the `sx_cluster` subsystem:
//!   embedding-cache-affinity scheduling beats FIFO on mean latency for a
//!   repeated-topology mix, and the aggregate per-stage breakdown stays
//!   stage-1 dominated at fleet scale.
//! * `--mode cache-cliff` — sweeps per-device warm-cache capacity ×
//!   workload topology diversity × eviction policy (LRU vs cost-aware) and
//!   maps the hit-rate cliff: once capacity falls below the number of
//!   distinct topologies in circulation, hit rate collapses and mean
//!   latency climbs.  Cost-aware eviction (protect the topologies that are
//!   expensive to re-embed) must match or beat LRU on mean latency at the
//!   cliff; the run exits non-zero if it does not, so CI catches
//!   eviction-policy regressions.
//!
//! ```text
//! cargo run --release -p sx-bench --bin cluster_sim -- \
//!     [--mode compare|cache-cliff] [--jobs N] [--qpus N] [--seed S] [--rate R] \
//!     [--closed CLIENTS] [--workload repeated|mixed|bursty] \
//!     [--policy fifo|spjf|affinity|all] [--fleet uniform|hetero] \
//!     [--capacity N] [--eviction lru|cost-aware] [--virtual]
//! ```
//!
//! `--virtual` skips the (slow) calibration step that executes a real job
//! through `split_exec::Pipeline` to sanity-check the analytic service
//! model; CI runs both modes with `--virtual` as smoke tests.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

#[derive(Debug)]
struct Args {
    mode: String,
    jobs: usize,
    qpus: usize,
    seed: u64,
    rate_hz: f64,
    closed: Option<usize>,
    workload: String,
    policy: String,
    fleet: String,
    capacity: Option<usize>,
    eviction: Option<EvictionPolicyKind>,
    virtual_only: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            mode: "compare".into(),
            jobs: 200,
            qpus: 4,
            seed: 7,
            rate_hz: 1.0,
            closed: None,
            workload: "repeated".into(),
            policy: "all".into(),
            fleet: "uniform".into(),
            capacity: None,
            eviction: None,
            virtual_only: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--mode" => args.mode = value("--mode"),
                "--jobs" => args.jobs = parse_or_die(&value("--jobs"), "--jobs"),
                "--qpus" => args.qpus = parse_or_die(&value("--qpus"), "--qpus"),
                "--seed" => args.seed = parse_or_die(&value("--seed"), "--seed"),
                "--rate" => args.rate_hz = parse_or_die(&value("--rate"), "--rate"),
                "--closed" => args.closed = Some(parse_or_die(&value("--closed"), "--closed")),
                "--workload" => args.workload = value("--workload"),
                "--policy" => args.policy = value("--policy"),
                "--fleet" => args.fleet = value("--fleet"),
                "--capacity" => {
                    args.capacity = Some(parse_or_die(&value("--capacity"), "--capacity"))
                }
                "--eviction" => {
                    args.eviction = Some(parse_or_die(&value("--eviction"), "--eviction"))
                }
                "--virtual" => args.virtual_only = true,
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// The fleet configuration shared by every run of this invocation
    /// (before any per-sweep cache bound is applied).
    fn fleet_config(&self) -> FleetConfig {
        let base = match self.fleet.as_str() {
            "uniform" => FleetConfig {
                qpus: self.qpus,
                seed: self.seed,
                ..FleetConfig::default()
            },
            "hetero" | "heterogeneous" | "mixed" => {
                FleetConfig::heterogeneous(self.qpus, self.seed)
            }
            other => {
                eprintln!("unknown fleet '{other}' (expected uniform or hetero)");
                std::process::exit(2);
            }
        };
        match self.capacity {
            Some(cap) => base.with_cache(cap, self.eviction.unwrap_or_default()),
            None => base,
        }
    }
}

fn parse_or_die<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {flag} value '{raw}'");
        std::process::exit(2);
    })
}

fn main() {
    let args = Args::parse();

    if !args.virtual_only {
        calibrate(args.seed);
    }

    let ok = match args.mode.as_str() {
        "compare" => compare(&args),
        "cache-cliff" | "cache_cliff" | "cliff" => cache_cliff(&args),
        other => {
            eprintln!("unknown mode '{other}' (expected compare or cache-cliff)");
            std::process::exit(2);
        }
    };
    if !ok {
        std::process::exit(1);
    }
}

/// The policy-comparison mode (the original `cluster_sim` behavior, now
/// heterogeneity- and bounded-cache-aware).
fn compare(args: &Args) -> bool {
    let spec = match args.workload.as_str() {
        "repeated" => WorkloadSpec::repeated_topologies(args.jobs, args.rate_hz, args.seed),
        "mixed" => WorkloadSpec::mixed(args.jobs, args.rate_hz, args.seed),
        "bursty" => WorkloadSpec::bursty(args.jobs, args.rate_hz, 8, args.seed),
        other => {
            eprintln!("unknown workload '{other}' (expected repeated, mixed or bursty)");
            std::process::exit(2);
        }
    };
    let workload = match spec.try_generate() {
        Ok(workload) => workload,
        Err(err) => {
            eprintln!("invalid workload spec: {err}");
            std::process::exit(2);
        }
    };

    let policies: Vec<PolicyKind> = if args.policy == "all" {
        PolicyKind::all().to_vec()
    } else {
        vec![args.policy.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2);
        })]
    };

    let mode = match args.closed {
        Some(clients) => WorkloadMode::Closed { clients },
        None => WorkloadMode::Open,
    };

    let cache_label = match args.capacity {
        Some(cap) => format!("cache {cap}/{}", args.eviction.unwrap_or_default()),
        None => "unbounded cache".into(),
    };
    println!(
        "# cluster_sim compare: {} jobs ({} distinct topologies, max lps {}), {} {} QPUs, {}, seed {}, {:?}",
        workload.len(),
        workload.distinct_topologies(),
        workload.max_lps(),
        args.qpus,
        args.fleet,
        cache_label,
        args.seed,
        mode,
    );

    println!(
        "\n{:>9} {:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>5} {:>5} {:>9} {:>10}",
        "policy",
        "done",
        "rej",
        "mean [s]",
        "p50 [s]",
        "p95 [s]",
        "p99 [s]",
        "util%",
        "warm%",
        "cold",
        "evict",
        "stage1%",
        "makespan"
    );

    let mut by_policy: Vec<(PolicyKind, SimReport)> = Vec::new();
    for policy in policies {
        let fleet = Fleet::new(args.fleet_config(), SplitExecConfig::with_seed(args.seed));
        let mut scheduler = policy.build();
        let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig { mode });
        println!(
            "{:>9} {:>6} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.1} {:>6.1} {:>5} {:>5} {:>9.2} {:>9.1}s",
            report.policy,
            report.completed,
            report.rejected,
            report.latency.mean,
            report.latency.p50,
            report.latency.p95,
            report.latency.p99,
            100.0 * report.mean_utilization(),
            100.0 * report.hit_rate(),
            report.cold_misses(),
            report.evictions(),
            100.0 * report.stage1_fraction(),
            report.makespan_seconds,
        );
        by_policy.push((policy, report));
    }

    // The shared batch/cluster report format, for the last policy run.
    if let Some((policy, report)) = by_policy.last() {
        println!("\n# shared BatchSummary format ({policy}):");
        println!("{}", report.batch_summary());
    }

    // Acceptance checks: stage-1 dominance at fleet scale, and (on the
    // repeated mix with both policies present) affinity beating FIFO.
    let mut ok = true;
    for (policy, report) in &by_policy {
        if report.completed > 0 && report.stage1_fraction() <= 0.5 {
            println!("FAIL: {policy} breakdown is not stage-1 dominated");
            ok = false;
        }
    }
    let fifo = by_policy.iter().find(|(p, _)| *p == PolicyKind::Fifo);
    let affinity = by_policy
        .iter()
        .find(|(p, _)| *p == PolicyKind::CacheAffinity);
    if let (Some((_, fifo)), Some((_, affinity))) = (fifo, affinity) {
        let speedup = fifo.latency.mean / affinity.latency.mean;
        println!(
            "\naffinity vs fifo: {speedup:.2}x mean latency ({} vs {} cold embeds)",
            affinity.cold_misses(),
            fifo.cold_misses()
        );
        if args.workload == "repeated" && args.capacity.is_none() && speedup <= 1.0 {
            println!("FAIL: cache-affinity did not beat FIFO on the repeated-topology mix");
            ok = false;
        }
    }
    ok
}

/// `--mode cache-cliff`: hit rate and mean latency over capacity ×
/// topology diversity × eviction policy.
fn cache_cliff(args: &Args) -> bool {
    // The sweep owns the capacity/eviction grid; a pinned value would be
    // silently overridden, so refuse it instead.
    if args.capacity.is_some() || args.eviction.is_some() {
        eprintln!("--capacity/--eviction select the compare-mode cache; cache-cliff sweeps both");
        std::process::exit(2);
    }
    // Each diversity level is a MAX-CUT-over-cycles family whose sizes span
    // 8..=36 logical spins: D distinct topologies with genuinely different
    // re-embed costs (∝ LPS³), which is where cost-aware eviction and LRU
    // part ways.
    let diversities = [4usize, 8];
    // FIFO routes without looking at caches, so every device sees every
    // topology and the per-device capacity is compared directly against the
    // full diversity; an explicit --policy overrides it.
    let policy: PolicyKind = if args.policy == "all" {
        PolicyKind::Fifo
    } else {
        args.policy.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };

    println!(
        "# cluster_sim cache-cliff: {} jobs per run, {} {} QPUs, policy {}, rate {} Hz, seed {}",
        args.jobs, args.qpus, args.fleet, policy, args.rate_hz, args.seed
    );

    let mut ok = true;
    for diversity in diversities {
        let sizes: Vec<usize> = (0..diversity)
            .map(|i| 8 + (36 - 8) * i / (diversity - 1))
            .collect();
        let spec = WorkloadSpec {
            jobs: args.jobs,
            seed: args.seed,
            arrivals: ArrivalProcess::Poisson {
                rate_hz: args.rate_hz,
            },
            mix: vec![(1.0, FamilySpec::MaxCutCycle { sizes })],
        };
        let workload = match spec.try_generate() {
            Ok(workload) => workload,
            Err(err) => {
                eprintln!("invalid workload spec: {err}");
                std::process::exit(2);
            }
        };
        let mut series = CacheCliffSeries {
            distinct_topologies: workload.distinct_topologies(),
            ..CacheCliffSeries::default()
        };

        let mut capacities: Vec<usize> = vec![
            1,
            diversity / 4,
            diversity / 2,
            3 * diversity / 4,
            diversity,
            diversity + 2,
        ];
        capacities.retain(|&c| c >= 1);
        capacities.sort_unstable();
        capacities.dedup();

        for eviction in EvictionPolicyKind::all() {
            for &capacity in &capacities {
                let fleet = Fleet::new(
                    args.fleet_config().with_cache(capacity, eviction),
                    SplitExecConfig::with_seed(args.seed),
                );
                let mut scheduler = policy.build();
                let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig::default());
                series
                    .points
                    .push(CachePoint::from_report(capacity, eviction.name(), &report));
            }
        }

        println!("\n## diversity {diversity} (sizes span 8..=36)");
        println!("{series}");

        // The cliff itself: hit rate must fall monotonically (small
        // tolerance for scheduling feedback) as capacity drops, and the
        // drop from full capacity to capacity 1 must be real.
        for eviction in EvictionPolicyKind::all() {
            let name = eviction.name();
            if !series.hit_rate_monotone(name, 0.02) {
                println!(
                    "FAIL: {name} hit rate is not monotone in capacity at diversity {diversity}"
                );
                ok = false;
            }
            let points = series.policy_points(name);
            let (lo, hi) = (points.first().unwrap(), points.last().unwrap());
            if hi.hit_rate - lo.hit_rate < 0.1 {
                println!(
                    "FAIL: {name} shows no hit-rate cliff at diversity {diversity} \
                     ({:.3} at capacity {} vs {:.3} at capacity {})",
                    lo.hit_rate, lo.capacity, hi.hit_rate, hi.capacity
                );
                ok = false;
            }
        }

        // At the cliff (capacity below diversity), cost-aware eviction must
        // match or beat LRU on mean latency: it protects the embeds that
        // are expensive to recompute.
        let cliff_mean = |name: &str| {
            let points: Vec<f64> = series
                .policy_points(name)
                .iter()
                .filter(|p| p.capacity < diversity)
                .map(|p| p.mean_latency_seconds)
                .collect();
            points.iter().sum::<f64>() / points.len().max(1) as f64
        };
        let lru = cliff_mean("lru");
        let cost_aware = cliff_mean("cost-aware");
        println!(
            "cliff (capacity < {diversity}): mean latency lru {lru:.3}s vs cost-aware {cost_aware:.3}s"
        );
        if cost_aware > lru * 1.001 {
            println!("FAIL: cost-aware eviction lost to LRU at the cliff (diversity {diversity})");
            ok = false;
        }
    }
    ok
}

/// Execute one real job through the pipeline and compare its stage shape
/// with the analytic model the simulator charges — the tie between the
/// simulator and the measured system.
fn calibrate(seed: u64) {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{Pipeline, SplitMachine};

    let pipeline = Pipeline::new(
        SplitMachine::paper_default(),
        SplitExecConfig::with_seed(seed),
    );
    let qubo = MaxCut::unweighted(generators::cycle(12)).to_qubo();
    match pipeline.execute(&qubo) {
        Ok(report) => println!(
            "calibration (real lps-12 job): stage-1 share measured {:.1}% — the simulator's \
             analytic service model charges the same shape",
            100.0 * report.stage1_fraction()
        ),
        Err(err) => println!("calibration job failed: {err}"),
    }
}
