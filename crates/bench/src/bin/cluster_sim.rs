//! Datacenter simulation: scheduling policies compared on one seeded
//! workload.
//!
//! Replays a stream of QUBO jobs against a fleet of simulated QPUs (each
//! with its own fault map) under each scheduling policy, on the same seeds,
//! and prints a comparison table — the fleet-scale version of the paper's
//! performance model.  The run demonstrates the two acceptance claims of
//! the `sx_cluster` subsystem: embedding-cache-affinity scheduling beats
//! FIFO on mean latency for a repeated-topology mix, and the aggregate
//! per-stage breakdown stays stage-1 dominated at fleet scale.
//!
//! ```text
//! cargo run --release -p sx-bench --bin cluster_sim -- \
//!     [--jobs N] [--qpus N] [--seed S] [--rate R] [--closed CLIENTS] \
//!     [--workload repeated|mixed|bursty] [--policy fifo|spjf|affinity|all] \
//!     [--virtual]
//! ```
//!
//! `--virtual` skips the (slow) calibration step that executes a real job
//! through `split_exec::Pipeline` to sanity-check the analytic service
//! model; CI runs `--jobs 50 --virtual` as a smoke test.

use split_exec::SplitExecConfig;
use sx_cluster::prelude::*;

#[derive(Debug)]
struct Args {
    jobs: usize,
    qpus: usize,
    seed: u64,
    rate_hz: f64,
    closed: Option<usize>,
    workload: String,
    policy: String,
    virtual_only: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            jobs: 200,
            qpus: 4,
            seed: 7,
            rate_hz: 1.0,
            closed: None,
            workload: "repeated".into(),
            policy: "all".into(),
            virtual_only: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--jobs" => args.jobs = parse_or_die(&value("--jobs"), "--jobs"),
                "--qpus" => args.qpus = parse_or_die(&value("--qpus"), "--qpus"),
                "--seed" => args.seed = parse_or_die(&value("--seed"), "--seed"),
                "--rate" => args.rate_hz = parse_or_die(&value("--rate"), "--rate"),
                "--closed" => args.closed = Some(parse_or_die(&value("--closed"), "--closed")),
                "--workload" => args.workload = value("--workload"),
                "--policy" => args.policy = value("--policy"),
                "--virtual" => args.virtual_only = true,
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn parse_or_die<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {flag} value '{raw}'");
        std::process::exit(2);
    })
}

fn main() {
    let args = Args::parse();

    let spec = match args.workload.as_str() {
        "repeated" => WorkloadSpec::repeated_topologies(args.jobs, args.rate_hz, args.seed),
        "mixed" => WorkloadSpec::mixed(args.jobs, args.rate_hz, args.seed),
        "bursty" => WorkloadSpec::bursty(args.jobs, args.rate_hz, 8, args.seed),
        other => {
            eprintln!("unknown workload '{other}' (expected repeated, mixed or bursty)");
            std::process::exit(2);
        }
    };
    let workload = spec.generate();

    let policies: Vec<PolicyKind> = if args.policy == "all" {
        PolicyKind::all().to_vec()
    } else {
        vec![args.policy.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2);
        })]
    };

    let mode = match args.closed {
        Some(clients) => WorkloadMode::Closed { clients },
        None => WorkloadMode::Open,
    };

    println!(
        "# cluster_sim: {} jobs ({} distinct topologies, max lps {}), {} QPUs, seed {}, {:?}",
        workload.len(),
        workload.distinct_topologies(),
        workload.max_lps(),
        args.qpus,
        args.seed,
        mode,
    );

    if !args.virtual_only {
        calibrate(args.seed);
    }

    println!(
        "\n{:>9} {:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>5} {:>9} {:>10}",
        "policy",
        "done",
        "rej",
        "mean [s]",
        "p50 [s]",
        "p95 [s]",
        "p99 [s]",
        "util%",
        "warm%",
        "cold",
        "stage1%",
        "makespan"
    );

    let mut by_policy: Vec<(PolicyKind, SimReport)> = Vec::new();
    for policy in policies {
        let fleet = Fleet::new(
            FleetConfig {
                qpus: args.qpus,
                seed: args.seed,
                ..FleetConfig::default()
            },
            SplitExecConfig::with_seed(args.seed),
        );
        let mut scheduler = policy.build();
        let report = simulate(fleet, &workload, scheduler.as_mut(), SimConfig { mode });
        let warm_rate = if report.completed > 0 {
            report.warm_hits() as f64 / report.completed as f64
        } else {
            0.0
        };
        println!(
            "{:>9} {:>6} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.1} {:>6.1} {:>5} {:>9.2} {:>9.1}s",
            report.policy,
            report.completed,
            report.rejected,
            report.latency.mean,
            report.latency.p50,
            report.latency.p95,
            report.latency.p99,
            100.0 * report.mean_utilization(),
            100.0 * warm_rate,
            report.cold_misses(),
            100.0 * report.stage1_fraction(),
            report.makespan_seconds,
        );
        by_policy.push((policy, report));
    }

    // The shared batch/cluster report format, for the last policy run.
    if let Some((policy, report)) = by_policy.last() {
        println!("\n# shared BatchSummary format ({policy}):");
        println!("{}", report.batch_summary());
    }

    // Acceptance checks: stage-1 dominance at fleet scale, and (on the
    // repeated mix with both policies present) affinity beating FIFO.
    let mut ok = true;
    for (policy, report) in &by_policy {
        if report.completed > 0 && report.stage1_fraction() <= 0.5 {
            println!("FAIL: {policy} breakdown is not stage-1 dominated");
            ok = false;
        }
    }
    let fifo = by_policy.iter().find(|(p, _)| *p == PolicyKind::Fifo);
    let affinity = by_policy
        .iter()
        .find(|(p, _)| *p == PolicyKind::CacheAffinity);
    if let (Some((_, fifo)), Some((_, affinity))) = (fifo, affinity) {
        let speedup = fifo.latency.mean / affinity.latency.mean;
        println!(
            "\naffinity vs fifo: {speedup:.2}x mean latency ({} vs {} cold embeds)",
            affinity.cold_misses(),
            fifo.cold_misses()
        );
        if args.workload == "repeated" && speedup <= 1.0 {
            println!("FAIL: cache-affinity did not beat FIFO on the repeated-topology mix");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}

/// Execute one real job through the pipeline and compare its stage shape
/// with the analytic model the simulator charges — the tie between the
/// simulator and the measured system.
fn calibrate(seed: u64) {
    use chimera_graph::generators;
    use qubo_ising::prelude::MaxCut;
    use split_exec::{Pipeline, SplitMachine};

    let pipeline = Pipeline::new(
        SplitMachine::paper_default(),
        SplitExecConfig::with_seed(seed),
    );
    let qubo = MaxCut::unweighted(generators::cycle(12)).to_qubo();
    match pipeline.execute(&qubo) {
        Ok(report) => println!(
            "calibration (real lps-12 job): stage-1 share measured {:.1}% — the simulator's \
             analytic service model charges the same shape",
            100.0 * report.stage1_fraction()
        ),
        Err(err) => println!("calibration job failed: {err}"),
    }
}
